//! Bit-exact label serialization.
//!
//! Every labeling scheme in this workspace reports sizes in *bits*, not
//! estimated from struct layouts: labels serialize into [`BitString`]s via
//! self-delimiting codes, and the experiments measure the maximum encoded
//! length — the exact quantity the paper's bounds speak about.

use std::fmt;

/// The largest payload a `u32`-length-prefixed byte frame can carry,
/// as a bit count.
///
/// Every framed byte format in this workspace (the `mstv-net` wire
/// frames, the `mstv-store` query protocol) stores payload lengths in a
/// `u32` field; this constant is the shared guard that keeps an
/// oversized payload a typed error instead of a silently truncated
/// length. `MAX_FRAME_BYTES` is the same bound for byte-counted frames.
pub const MAX_FRAME_BITS: usize = u32::MAX as usize;

/// [`MAX_FRAME_BITS`] for frames whose length field counts whole bytes.
pub const MAX_FRAME_BYTES: usize = MAX_FRAME_BITS / 8;

/// A growable bit string (MSB-first within the logical stream).
/// # Example
///
/// ```
/// use mstv_labels::BitString;
///
/// let mut bits = BitString::new();
/// bits.push_bits(0b101, 3);
/// bits.push_elias_gamma(9);
/// let mut r = bits.reader();
/// assert_eq!(r.read_bits(3), 0b101);
/// assert_eq!(r.read_elias_gamma(), 9);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct BitString {
    words: Vec<u64>,
    len: usize,
}

impl BitString {
    /// An empty bit string.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bits have been written.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a single bit.
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        let offset = self.len % 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << offset;
        }
        self.len += 1;
    }

    /// Reads the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn get(&self, index: usize) -> bool {
        assert!(index < self.len, "bit index out of range");
        self.words[index / 64] >> (index % 64) & 1 == 1
    }

    /// Appends the lowest `width` bits of `value`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or `value` does not fit in `width` bits.
    pub fn push_bits(&mut self, value: u64, width: u32) {
        assert!(width <= 64, "width exceeds 64");
        assert!(
            width == 64 || value < 1u64 << width,
            "value {value} does not fit in {width} bits"
        );
        for i in (0..width).rev() {
            self.push(value >> i & 1 == 1);
        }
    }

    /// Appends the Elias gamma code of `value` (requires `value >= 1`):
    /// `⌊log₂ v⌋` zeros, then the binary expansion of `v`. Costs
    /// `2⌊log₂ v⌋ + 1` bits.
    ///
    /// # Panics
    ///
    /// Panics if `value == 0`.
    pub fn push_elias_gamma(&mut self, value: u64) {
        assert!(value >= 1, "Elias gamma encodes positive integers");
        let bits = 64 - value.leading_zeros();
        for _ in 0..bits - 1 {
            self.push(false);
        }
        self.push_bits(value, bits);
    }

    /// Appends the Elias delta code of `value >= 1`: the gamma code of the
    /// bit length, then the value without its leading 1. Costs
    /// `⌊log₂ v⌋ + 2⌊log₂(⌊log₂ v⌋ + 1)⌋ + 1` bits.
    ///
    /// # Panics
    ///
    /// Panics if `value == 0`.
    pub fn push_elias_delta(&mut self, value: u64) {
        assert!(value >= 1, "Elias delta encodes positive integers");
        let bits = 64 - value.leading_zeros();
        self.push_elias_gamma(u64::from(bits));
        if bits > 1 {
            self.push_bits(value & ((1u64 << (bits - 1)) - 1), bits - 1);
        }
    }

    /// Appends all bits of another bit string.
    pub fn extend_from(&mut self, other: &BitString) {
        for i in 0..other.len() {
            self.push(other.get(i));
        }
    }

    /// A cursor for reading this bit string from the start.
    pub fn reader(&self) -> BitReader<'_> {
        BitReader { bits: self, pos: 0 }
    }

    /// Packs the bits into bytes (LSB-first within each byte; the last
    /// byte is zero-padded). Pair with [`BitString::len`] and
    /// [`BitString::from_bytes`] to ship labels over a byte-oriented
    /// wire without losing the exact bit count.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.len.div_ceil(8)];
        for i in 0..self.len {
            if self.get(i) {
                out[i / 8] |= 1 << (i % 8);
            }
        }
        out
    }

    /// Rebuilds a bit string of exactly `len` bits from
    /// [`BitString::to_bytes`] output. Returns `None` if `bytes` is too
    /// short for `len` bits or padding bits are non-zero (a framing
    /// error on the wire).
    pub fn from_bytes(bytes: &[u8], len: usize) -> Option<Self> {
        if bytes.len() != len.div_ceil(8) {
            return None;
        }
        let mut out = BitString::new();
        for i in 0..len {
            out.push(bytes[i / 8] >> (i % 8) & 1 == 1);
        }
        if !len.is_multiple_of(8) && bytes[len / 8] >> (len % 8) != 0 {
            return None;
        }
        Some(out)
    }
}

impl fmt::Display for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        if self.len == 0 {
            write!(f, "ε")?;
        }
        Ok(())
    }
}

/// A sequential reader over a [`BitString`].
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bits: &'a BitString,
    pos: usize,
}

impl BitReader<'_> {
    /// Current read position in bits.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bits remaining.
    pub fn remaining(&self) -> usize {
        self.bits.len() - self.pos
    }

    /// Reads one bit.
    ///
    /// # Panics
    ///
    /// Panics at end of stream.
    pub fn read_bit(&mut self) -> bool {
        let b = self.bits.get(self.pos);
        self.pos += 1;
        b
    }

    /// Reads `width` bits, MSB first.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `width` bits remain or `width > 64`.
    pub fn read_bits(&mut self, width: u32) -> u64 {
        assert!(width <= 64, "width exceeds 64");
        let mut v = 0u64;
        for _ in 0..width {
            v = (v << 1) | u64::from(self.read_bit());
        }
        v
    }

    /// Reads an Elias gamma code.
    ///
    /// # Panics
    ///
    /// Panics on a truncated stream.
    pub fn read_elias_gamma(&mut self) -> u64 {
        let mut zeros = 0u32;
        while !self.read_bit() {
            zeros += 1;
        }
        let mut v = 1u64;
        for _ in 0..zeros {
            v = (v << 1) | u64::from(self.read_bit());
        }
        v
    }

    /// Reads one bit, or `None` at end of stream.
    pub fn try_read_bit(&mut self) -> Option<bool> {
        (self.remaining() >= 1).then(|| self.read_bit())
    }

    /// Reads `width` bits MSB first, or `None` if fewer remain.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    pub fn try_read_bits(&mut self, width: u32) -> Option<u64> {
        (self.remaining() >= width as usize).then(|| self.read_bits(width))
    }

    /// Reads an Elias gamma code, or `None` on a truncated stream.
    pub fn try_read_elias_gamma(&mut self) -> Option<u64> {
        let mut zeros = 0u32;
        while !self.try_read_bit()? {
            zeros += 1;
        }
        let mut v = 1u64;
        for _ in 0..zeros {
            v = (v << 1) | u64::from(self.try_read_bit()?);
        }
        Some(v)
    }

    /// Reads an Elias delta code.
    ///
    /// # Panics
    ///
    /// Panics on a truncated stream.
    pub fn read_elias_delta(&mut self) -> u64 {
        let bits = self.read_elias_gamma() as u32;
        let mut v = 1u64;
        for _ in 0..bits - 1 {
            v = (v << 1) | u64::from(self.read_bit());
        }
        v
    }
}

/// Length in bits of the Elias gamma code of `value >= 1`.
pub fn elias_gamma_len(value: u64) -> usize {
    debug_assert!(value >= 1);
    let bits = (64 - value.leading_zeros()) as usize;
    2 * bits - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut b = BitString::new();
        b.push(true);
        b.push(false);
        b.push(true);
        assert_eq!(b.len(), 3);
        assert!(b.get(0));
        assert!(!b.get(1));
        assert!(b.get(2));
        assert_eq!(b.to_string(), "101");
        assert_eq!(BitString::new().to_string(), "ε");
    }

    #[test]
    fn fixed_width_roundtrip() {
        let mut b = BitString::new();
        b.push_bits(0b1011, 4);
        b.push_bits(7, 10);
        b.push_bits(u64::MAX, 64);
        let mut r = b.reader();
        assert_eq!(r.read_bits(4), 0b1011);
        assert_eq!(r.read_bits(10), 7);
        assert_eq!(r.read_bits(64), u64::MAX);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn overflow_rejected() {
        let mut b = BitString::new();
        b.push_bits(16, 4);
    }

    #[test]
    fn elias_gamma_roundtrip() {
        let mut b = BitString::new();
        let values = [1u64, 2, 3, 4, 5, 17, 100, 1_000_000, u64::MAX];
        for &v in &values {
            b.push_elias_gamma(v);
        }
        let mut r = b.reader();
        for &v in &values {
            assert_eq!(r.read_elias_gamma(), v);
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn elias_gamma_known_codes() {
        let mut b = BitString::new();
        b.push_elias_gamma(1);
        assert_eq!(b.to_string(), "1");
        let mut b = BitString::new();
        b.push_elias_gamma(5);
        assert_eq!(b.to_string(), "00101");
        assert_eq!(elias_gamma_len(1), 1);
        assert_eq!(elias_gamma_len(5), 5);
        assert_eq!(elias_gamma_len(8), 7);
    }

    #[test]
    fn elias_delta_roundtrip() {
        let mut b = BitString::new();
        let values = [1u64, 2, 3, 10, 31, 32, 12345, u64::MAX];
        for &v in &values {
            b.push_elias_delta(v);
        }
        let mut r = b.reader();
        for &v in &values {
            assert_eq!(r.read_elias_delta(), v);
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn delta_shorter_than_gamma_for_large_values() {
        let mut g = BitString::new();
        g.push_elias_gamma(1_000_000);
        let mut d = BitString::new();
        d.push_elias_delta(1_000_000);
        assert!(d.len() < g.len());
    }

    #[test]
    fn extend_and_cross_word_boundaries() {
        let mut a = BitString::new();
        for i in 0..130 {
            a.push(i % 3 == 0);
        }
        let mut b = BitString::new();
        b.push(true);
        b.extend_from(&a);
        assert_eq!(b.len(), 131);
        assert!(b.get(0));
        for i in 0..130 {
            assert_eq!(b.get(i + 1), i % 3 == 0, "bit {i}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range() {
        let b = BitString::new();
        let _ = b.get(0);
    }

    #[test]
    fn byte_roundtrip() {
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65, 130] {
            let mut a = BitString::new();
            for i in 0..len {
                a.push(i % 3 == 0 || i % 7 == 2);
            }
            let bytes = a.to_bytes();
            assert_eq!(bytes.len(), len.div_ceil(8));
            let back = BitString::from_bytes(&bytes, len).expect("roundtrip");
            assert_eq!(back, a, "len={len}");
        }
    }

    #[test]
    fn from_bytes_rejects_framing_errors() {
        let mut a = BitString::new();
        a.push_bits(0b1011, 4);
        let bytes = a.to_bytes();
        // Wrong byte count for the claimed bit length.
        assert!(BitString::from_bytes(&bytes, 20).is_none());
        // Dirty padding bits beyond the bit length.
        assert!(BitString::from_bytes(&[0xF0], 4).is_none());
    }
}
