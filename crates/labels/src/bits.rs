//! Bit-exact label serialization.
//!
//! Every labeling scheme in this workspace reports sizes in *bits*, not
//! estimated from struct layouts: labels serialize into [`BitString`]s via
//! self-delimiting codes, and the experiments measure the maximum encoded
//! length — the exact quantity the paper's bounds speak about.
//!
//! The stream layout is fixed and shared by every reader in the
//! workspace: bit `i` of the stream lives in byte `i / 8` at bit
//! position `i % 8` (LSB-first within each byte). [`BitString`] owns
//! such a byte buffer; [`BitSlice`] borrows a window of one — any byte
//! buffer, including a memory-mapped snapshot section — at an arbitrary
//! bit offset, which is what makes zero-copy label serving possible.
//! Both hand out the same [`BitReader`], whose word-batched accessors
//! move whole 64-bit chunks per call instead of one bit per call.
//!
//! The one-bit-per-call implementation this module replaced is pinned in
//! [`crate::reference`] and differential tests assert the two produce
//! identical bits, bytes, and decoded values on random op sequences.

use std::fmt;

/// The largest payload a `u32`-length-prefixed byte frame can carry,
/// as a bit count.
///
/// Every framed byte format in this workspace (the `mstv-net` wire
/// frames, the `mstv-store` query protocol) stores payload lengths in a
/// `u32` field; this constant is the shared guard that keeps an
/// oversized payload a typed error instead of a silently truncated
/// length. `MAX_FRAME_BYTES` is the same bound for byte-counted frames.
pub const MAX_FRAME_BITS: usize = u32::MAX as usize;

/// [`MAX_FRAME_BITS`] for frames whose length field counts whole bytes.
pub const MAX_FRAME_BYTES: usize = MAX_FRAME_BITS / 8;

/// Reorders the low `width` bits of `value` into stream order: stream
/// bit `j` (written first) is `value`'s bit `width - 1 - j`, so a
/// MSB-first push lands MSB at the lowest in-buffer bit position.
/// Involutive within a width, so the same permutation decodes.
#[inline]
fn stream_chunk(value: u64, width: u32) -> u64 {
    if width == 0 {
        0
    } else {
        value.reverse_bits() >> (64 - width)
    }
}

/// Loads up to 64 stream-order bits starting at absolute bit `pos` of
/// `bytes`. Bits past the end of `bytes` read as zero; callers bound
/// `width` by the stream length themselves.
///
/// One unaligned little-endian load (≤ 9 bytes into a `u128`), one
/// shift, one mask — the batched core every reader shares.
#[inline]
fn load_chunk(bytes: &[u8], pos: usize, width: u32) -> u64 {
    debug_assert!(width <= 64);
    if width == 0 {
        return 0;
    }
    let base = pos / 8;
    let off = pos % 8;
    // Fast path: the whole window fits in one unaligned 8-byte load
    // (fixed-size copy, compiled to a single load — no memcpy call).
    // Covers every width ≤ 56 and aligned wider reads; label fields are
    // far below that.
    if off + width as usize <= 64 {
        if let Some(window) = bytes.get(base..base + 8) {
            let chunk = u64::from_le_bytes(window.try_into().expect("8-byte window")) >> off;
            return if width == 64 {
                chunk
            } else {
                chunk & ((1u64 << width) - 1)
            };
        }
    }
    let span = (off + width as usize).div_ceil(8);
    let mut buf = [0u8; 16];
    let end = (base + span).min(bytes.len());
    if base < end {
        buf[..end - base].copy_from_slice(&bytes[base..end]);
    }
    let chunk = (u128::from_le_bytes(buf) >> off) as u64;
    if width == 64 {
        chunk
    } else {
        chunk & ((1u64 << width) - 1)
    }
}

/// A growable bit string (MSB-first within the logical stream).
/// # Example
///
/// ```
/// use mstv_labels::BitString;
///
/// let mut bits = BitString::new();
/// bits.push_bits(0b101, 3);
/// bits.push_elias_gamma(9);
/// let mut r = bits.reader();
/// assert_eq!(r.read_bits(3), 0b101);
/// assert_eq!(r.read_elias_gamma(), 9);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct BitString {
    /// Invariant: `bytes.len() == len.div_ceil(8)` and every bit at
    /// position `>= len` in the final byte is zero, so the derived
    /// `Eq`/`Hash` see canonical buffers and `to_bytes` is a plain copy.
    bytes: Vec<u8>,
    len: usize,
}

impl BitString {
    /// An empty bit string.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty bit string with room for `bits` bits before reallocating.
    pub fn with_capacity(bits: usize) -> Self {
        BitString {
            bytes: Vec::with_capacity(bits.div_ceil(8)),
            len: 0,
        }
    }

    /// Empties the string, keeping its allocation — the scratch-buffer
    /// reset for encode-into loops that re-encode many labels through
    /// one buffer.
    #[inline]
    pub fn clear(&mut self) {
        self.bytes.clear();
        self.len = 0;
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bits have been written.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a single bit.
    #[inline]
    pub fn push(&mut self, bit: bool) {
        if self.len.is_multiple_of(8) {
            self.bytes.push(0);
        }
        if bit {
            self.bytes[self.len / 8] |= 1 << (self.len % 8);
        }
        self.len += 1;
    }

    /// Reads the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn get(&self, index: usize) -> bool {
        assert!(index < self.len, "bit index out of range");
        self.bytes[index / 8] >> (index % 8) & 1 == 1
    }

    /// Appends `width` bits already in stream order (bit `j` of `chunk`
    /// is written `j`-th): one buffer extension and at most nine byte
    /// ORs, the batched primitive behind every multi-bit push.
    #[inline]
    fn push_chunk(&mut self, chunk: u64, width: u32) {
        debug_assert!(width <= 64);
        debug_assert!(width == 64 || chunk & !((1u64 << width) - 1) == 0);
        if width == 0 {
            return;
        }
        let off = self.len % 8;
        let base = self.len / 8;
        self.bytes
            .resize((self.len + width as usize).div_ceil(8), 0);
        let spread = (u128::from(chunk) << off).to_le_bytes();
        let span = (off + width as usize).div_ceil(8);
        for (dst, src) in self.bytes[base..base + span].iter_mut().zip(spread) {
            *dst |= src;
        }
        self.len += width as usize;
    }

    /// Appends the lowest `width` bits of `value`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or `value` does not fit in `width` bits.
    pub fn push_bits(&mut self, value: u64, width: u32) {
        assert!(width <= 64, "width exceeds 64");
        assert!(
            width == 64 || value < 1u64 << width,
            "value {value} does not fit in {width} bits"
        );
        self.push_chunk(stream_chunk(value, width), width);
    }

    /// Appends the Elias gamma code of `value` (requires `value >= 1`):
    /// `⌊log₂ v⌋` zeros, then the binary expansion of `v`. Costs
    /// `2⌊log₂ v⌋ + 1` bits.
    ///
    /// # Panics
    ///
    /// Panics if `value == 0`.
    pub fn push_elias_gamma(&mut self, value: u64) {
        assert!(value >= 1, "Elias gamma encodes positive integers");
        let bits = 64 - value.leading_zeros();
        self.push_chunk(0, bits - 1);
        self.push_bits(value, bits);
    }

    /// Appends the Elias delta code of `value >= 1`: the gamma code of the
    /// bit length, then the value without its leading 1. Costs
    /// `⌊log₂ v⌋ + 2⌊log₂(⌊log₂ v⌋ + 1)⌋ + 1` bits.
    ///
    /// # Panics
    ///
    /// Panics if `value == 0`.
    pub fn push_elias_delta(&mut self, value: u64) {
        assert!(value >= 1, "Elias delta encodes positive integers");
        let bits = 64 - value.leading_zeros();
        self.push_elias_gamma(u64::from(bits));
        if bits > 1 {
            self.push_bits(value & ((1u64 << (bits - 1)) - 1), bits - 1);
        }
    }

    /// Appends all bits of another bit string.
    pub fn extend_from(&mut self, other: &BitString) {
        self.extend_from_bits(other.as_slice());
    }

    /// Appends all bits of a borrowed slice, 64 at a time.
    pub fn extend_from_bits(&mut self, other: BitSlice<'_>) {
        let mut pos = 0;
        while pos < other.len {
            let width = (other.len - pos).min(64) as u32;
            let chunk = load_chunk(other.bytes, other.start + pos, width);
            self.push_chunk(chunk, width);
            pos += width as usize;
        }
    }

    /// A borrowed view of the whole bit string.
    pub fn as_slice(&self) -> BitSlice<'_> {
        BitSlice {
            bytes: &self.bytes,
            start: 0,
            len: self.len,
        }
    }

    /// A cursor for reading this bit string from the start.
    pub fn reader(&self) -> BitReader<'_> {
        self.as_slice().reader()
    }

    /// Packs the bits into bytes (LSB-first within each byte; the last
    /// byte is zero-padded). Pair with [`BitString::len`] and
    /// [`BitString::from_bytes`] to ship labels over a byte-oriented
    /// wire without losing the exact bit count.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.bytes.clone()
    }

    /// The packed byte buffer backing this bit string — the same bytes
    /// [`BitString::to_bytes`] copies out, without the copy. The final
    /// byte's padding bits (positions `len()..`) are always zero.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Rebuilds a bit string of exactly `len` bits from
    /// [`BitString::to_bytes`] output. Returns `None` if `bytes` is too
    /// short for `len` bits or padding bits are non-zero (a framing
    /// error on the wire).
    ///
    /// The padding check covers *every* bit of the final byte at
    /// position `len` or beyond — a frame whose tail smuggles set bits
    /// past the declared length is rejected, not silently truncated.
    pub fn from_bytes(bytes: &[u8], len: usize) -> Option<Self> {
        if bytes.len() != len.div_ceil(8) {
            return None;
        }
        if !len.is_multiple_of(8) && bytes[len / 8] >> (len % 8) != 0 {
            return None;
        }
        Some(BitString {
            bytes: bytes.to_vec(),
            len,
        })
    }
}

impl fmt::Display for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.as_slice(), f)
    }
}

/// A borrowed window of a packed bit stream: `len` bits starting at bit
/// offset `start` of a byte buffer — a label inside a columnar snapshot
/// section, a field inside a wire frame, or a whole [`BitString`].
///
/// The buffer needs no alignment (reads are byte-assembled), so a slice
/// can point straight into a memory-mapped file. A `BitSlice` is `Copy`;
/// it borrows, never owns — the zero-copy half of the label hot path.
#[derive(Debug, Clone, Copy)]
pub struct BitSlice<'a> {
    bytes: &'a [u8],
    start: usize,
    len: usize,
}

impl<'a> BitSlice<'a> {
    /// `len` bits starting at bit `start` of `bytes`.
    ///
    /// # Panics
    ///
    /// Panics if the window runs past the end of `bytes`.
    pub fn new(bytes: &'a [u8], start: usize, len: usize) -> Self {
        assert!(
            start
                .checked_add(len)
                .is_some_and(|end| end <= bytes.len() * 8),
            "bit window {start}+{len} exceeds {} bits",
            bytes.len() * 8
        );
        BitSlice { bytes, start, len }
    }

    /// Number of bits in the window.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the window is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads the bit at `index` (relative to the window).
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn get(&self, index: usize) -> bool {
        assert!(index < self.len, "bit index out of range");
        let i = self.start + index;
        self.bytes[i / 8] >> (i % 8) & 1 == 1
    }

    /// A cursor for reading this window from its start.
    pub fn reader(&self) -> BitReader<'a> {
        BitReader {
            bytes: self.bytes,
            start: self.start,
            len: self.len,
            pos: 0,
        }
    }

    /// Copies the window into an owned [`BitString`].
    pub fn to_bitstring(&self) -> BitString {
        let mut out = BitString::with_capacity(self.len);
        out.extend_from_bits(*self);
        out
    }
}

impl PartialEq for BitSlice<'_> {
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len {
            return false;
        }
        let mut pos = 0;
        while pos < self.len {
            let width = (self.len - pos).min(64) as u32;
            if load_chunk(self.bytes, self.start + pos, width)
                != load_chunk(other.bytes, other.start + pos, width)
            {
                return false;
            }
            pos += width as usize;
        }
        true
    }
}

impl Eq for BitSlice<'_> {}

impl fmt::Display for BitSlice<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        if self.len == 0 {
            write!(f, "ε")?;
        }
        Ok(())
    }
}

/// A sequential reader over a packed bit stream — the decode side of
/// [`BitString`] and [`BitSlice`]. All multi-bit accessors are
/// word-batched: `read_bits` is one unaligned load, and the Elias
/// decoders scan zeros with `trailing_zeros` on 64-bit windows instead
/// of a bit-at-a-time loop.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    start: usize,
    len: usize,
    pos: usize,
}

impl BitReader<'_> {
    /// Current read position in bits (relative to the stream start).
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bits remaining.
    pub fn remaining(&self) -> usize {
        self.len - self.pos
    }

    /// Reads one bit.
    ///
    /// # Panics
    ///
    /// Panics at end of stream.
    #[inline]
    pub fn read_bit(&mut self) -> bool {
        assert!(self.pos < self.len, "bit index out of range");
        let i = self.start + self.pos;
        self.pos += 1;
        self.bytes[i / 8] >> (i % 8) & 1 == 1
    }

    /// Reads `width` bits, MSB first.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `width` bits remain or `width > 64`.
    #[inline]
    pub fn read_bits(&mut self, width: u32) -> u64 {
        assert!(width <= 64, "width exceeds 64");
        assert!(self.remaining() >= width as usize, "bit index out of range");
        let chunk = load_chunk(self.bytes, self.start + self.pos, width);
        self.pos += width as usize;
        stream_chunk(chunk, width)
    }

    /// The number of zero bits at the cursor before the next one bit, or
    /// `None` if the rest of the stream is all zeros (for `try_` callers;
    /// panicking callers turn that into an end-of-stream panic). Scans 64
    /// bits per step via `trailing_zeros`. Does not advance the cursor.
    #[inline]
    fn peek_zero_run(&self) -> Option<usize> {
        let mut scanned = 0;
        while scanned < self.remaining() {
            let width = (self.remaining() - scanned).min(64) as u32;
            let mut chunk = load_chunk(self.bytes, self.start + self.pos + scanned, width);
            if width < 64 {
                // Pad past-the-end bits with ones so trailing_zeros
                // cannot run beyond the stream.
                chunk |= !0u64 << width;
            }
            let tz = chunk.trailing_zeros() as usize;
            if tz < width as usize {
                return Some(scanned + tz);
            }
            scanned += width as usize;
        }
        None
    }

    /// Reads an Elias gamma code.
    ///
    /// # Panics
    ///
    /// Panics on a truncated stream, or on a malformed code whose zero
    /// run claims a value wider than 64 bits (which no
    /// [`BitString::push_elias_gamma`] output contains).
    pub fn read_elias_gamma(&mut self) -> u64 {
        let zeros = self
            .peek_zero_run()
            .unwrap_or_else(|| panic!("bit index out of range"));
        assert!(
            zeros < 64,
            "Elias gamma zero run of {zeros} exceeds a u64 value"
        );
        self.pos += zeros;
        self.read_bits(zeros as u32 + 1)
    }

    /// Advances the cursor `bits` bits without decoding them, or `None`
    /// (cursor unmoved) if fewer remain. Fixed-width fields make whole
    /// blocks skippable in O(1) — how the pairwise decoders jump
    /// straight to the one value field an answer needs.
    pub fn try_skip_bits(&mut self, bits: usize) -> Option<()> {
        if self.remaining() < bits {
            return None;
        }
        self.pos += bits;
        Some(())
    }

    /// Reads one bit, or `None` at end of stream.
    pub fn try_read_bit(&mut self) -> Option<bool> {
        (self.remaining() >= 1).then(|| self.read_bit())
    }

    /// Reads `width` bits MSB first, or `None` if fewer remain.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    pub fn try_read_bits(&mut self, width: u32) -> Option<u64> {
        assert!(width <= 64, "width exceeds 64");
        (self.remaining() >= width as usize).then(|| self.read_bits(width))
    }

    /// Reads an Elias gamma codeword as an opaque *token* instead of a
    /// value: gamma is prefix-free, so two tokens are equal exactly
    /// when the encoded values are. Comparing tokens skips the bit
    /// reversal a numeric decode pays — the equality-only fast path of
    /// the pairwise label decoders, which compare separator fields but
    /// never use their values.
    ///
    /// The token is `(tag, bits)`: for codewords up to 63 bits the raw
    /// stream-order bits under their length, for wider (rarer) ones a
    /// disjoint tag derived from the zero run plus the decoded value.
    /// Which form a value takes depends only on the value itself, so
    /// the two forms never collide. Rejects the same malformed streams
    /// as [`BitReader::try_read_elias_gamma`].
    #[inline]
    pub fn try_read_elias_gamma_token(&mut self) -> Option<(u32, u64)> {
        let rem = self.remaining();
        if rem > 0 {
            let width = rem.min(64) as u32;
            let mut chunk = load_chunk(self.bytes, self.start + self.pos, width);
            if width < 64 {
                chunk |= !0u64 << width;
            }
            let tz = chunk.trailing_zeros();
            let len = 2 * tz + 1;
            if tz < width && len <= width {
                self.pos += len as usize;
                return Some((len, chunk & (!0u64 >> (64 - len))));
            }
        }
        // A codeword wider than 64 bits (zero run of 32..64): decode
        // numerically. Tag 128 + zero-run cannot equal any raw-form
        // length (those are at most 63), and the zero run is a
        // function of the value, so equal values still tokenize
        // equally through either arm.
        let v = self.try_read_elias_gamma()?;
        Some((128 + (64 - v.leading_zeros()), v))
    }

    /// Reads an Elias gamma code, or `None` on a truncated stream or a
    /// malformed code.
    ///
    /// A zero run of 64 or more is rejected: it claims a value wider
    /// than 64 bits, and the old bit-loop decoder's `(v << 1) | bit`
    /// accumulation would silently wrap such a code into a bogus small
    /// value — exactly the kind of crafted frame a wire-facing decoder
    /// must refuse, not misread.
    #[inline]
    pub fn try_read_elias_gamma(&mut self) -> Option<u64> {
        // Fast path: one window load covers the whole codeword — zero
        // run and value bits together. Label fields are tiny (the
        // size-ordered ranks of `γ_small` mostly fit a handful of
        // bits), so this is the overwhelmingly common case; anything
        // wider falls through to the general scan below.
        let rem = self.remaining();
        if rem > 0 {
            let width = rem.min(64) as u32;
            let mut chunk = load_chunk(self.bytes, self.start + self.pos, width);
            if width < 64 {
                // Pad past-the-end bits with ones so trailing_zeros
                // cannot run beyond the stream.
                chunk |= !0u64 << width;
            }
            let tz = chunk.trailing_zeros() as usize;
            if tz < width as usize && 2 * tz < width as usize {
                self.pos += 2 * tz + 1;
                return Some(stream_chunk(chunk >> tz, tz as u32 + 1));
            }
        }
        let zeros = self.peek_zero_run()?;
        if zeros >= 64 || self.remaining() - zeros < zeros + 1 {
            return None;
        }
        self.pos += zeros;
        Some(self.read_bits(zeros as u32 + 1))
    }

    /// Reads an Elias delta code.
    ///
    /// # Panics
    ///
    /// Panics on a truncated stream, or on a malformed code claiming a
    /// value wider than 64 bits (the old decoder silently wrapped the
    /// mantissa instead).
    pub fn read_elias_delta(&mut self) -> u64 {
        let bits = self.read_elias_gamma();
        assert!(
            (1..=64).contains(&bits),
            "Elias delta length {bits} exceeds a u64 value"
        );
        let bits = bits as u32;
        if bits == 1 {
            1
        } else {
            (1u64 << (bits - 1)) | self.read_bits(bits - 1)
        }
    }

    /// Reads an Elias delta code, or `None` on a truncated stream or a
    /// malformed code (length field outside `1..=64`).
    pub fn try_read_elias_delta(&mut self) -> Option<u64> {
        let bits = self.try_read_elias_gamma()?;
        if !(1..=64).contains(&bits) {
            return None;
        }
        let bits = bits as u32;
        if bits == 1 {
            Some(1)
        } else {
            Some((1u64 << (bits - 1)) | self.try_read_bits(bits - 1)?)
        }
    }
}

/// Length in bits of the Elias gamma code of `value >= 1`.
pub fn elias_gamma_len(value: u64) -> usize {
    debug_assert!(value >= 1);
    let bits = (64 - value.leading_zeros()) as usize;
    2 * bits - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut b = BitString::new();
        b.push(true);
        b.push(false);
        b.push(true);
        assert_eq!(b.len(), 3);
        assert!(b.get(0));
        assert!(!b.get(1));
        assert!(b.get(2));
        assert_eq!(b.to_string(), "101");
        assert_eq!(BitString::new().to_string(), "ε");
    }

    #[test]
    fn fixed_width_roundtrip() {
        let mut b = BitString::new();
        b.push_bits(0b1011, 4);
        b.push_bits(7, 10);
        b.push_bits(u64::MAX, 64);
        let mut r = b.reader();
        assert_eq!(r.read_bits(4), 0b1011);
        assert_eq!(r.read_bits(10), 7);
        assert_eq!(r.read_bits(64), u64::MAX);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn boundary_widths_roundtrip_at_every_offset() {
        // The shift-overflow sweep: widths 0, 1, 63, and 64 with extreme
        // values, written at every bit offset a preceding prefix can
        // produce, read back through both the panicking and the
        // fallible reader. `1u64 << 64` and `c >> 64` are the classic
        // wrap/panic sites; none of these may panic or misread.
        for prefix in 0..65usize {
            for &(value, width) in &[
                (0u64, 0u32),
                (0, 1),
                (1, 1),
                (0, 63),
                (u64::MAX >> 1, 63),
                (0, 64),
                (1, 64),
                (u64::MAX, 64),
                (u64::MAX - 1, 64),
                (1u64 << 62, 63),
                (1u64 << 63, 64),
            ] {
                let mut b = BitString::new();
                for i in 0..prefix {
                    b.push(i % 3 == 0);
                }
                b.push_bits(value, width);
                assert_eq!(b.len(), prefix + width as usize);
                let mut r = b.reader();
                for i in 0..prefix {
                    assert_eq!(r.read_bit(), i % 3 == 0);
                }
                assert_eq!(r.read_bits(width), value, "prefix={prefix} width={width}");
                assert_eq!(r.remaining(), 0);
                let mut r = b.reader();
                for _ in 0..prefix {
                    r.try_read_bit().unwrap();
                }
                assert_eq!(r.try_read_bits(width), Some(value));
                assert_eq!(r.try_read_bits(1), None);
            }
        }
    }

    #[test]
    fn width_zero_reads_nothing_and_returns_zero() {
        let mut b = BitString::new();
        b.push_bits(0, 0);
        assert!(b.is_empty());
        let mut r = b.reader();
        assert_eq!(r.read_bits(0), 0);
        assert_eq!(r.try_read_bits(0), Some(0));
        assert_eq!(r.position(), 0);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn overflow_rejected() {
        let mut b = BitString::new();
        b.push_bits(16, 4);
    }

    #[test]
    #[should_panic(expected = "width exceeds 64")]
    fn width_over_64_rejected_on_write() {
        let mut b = BitString::new();
        b.push_bits(0, 65);
    }

    #[test]
    #[should_panic(expected = "width exceeds 64")]
    fn width_over_64_rejected_on_read() {
        let mut b = BitString::new();
        b.push_bits(0, 64);
        b.push_bits(0, 64);
        let _ = b.reader().read_bits(65);
    }

    #[test]
    fn elias_gamma_roundtrip() {
        let mut b = BitString::new();
        let values = [1u64, 2, 3, 4, 5, 17, 100, 1_000_000, u64::MAX];
        for &v in &values {
            b.push_elias_gamma(v);
        }
        let mut r = b.reader();
        for &v in &values {
            assert_eq!(r.read_elias_gamma(), v);
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn elias_extremes_roundtrip() {
        // u64::MAX exercises the 63-zero gamma prefix and the 64-bit
        // delta mantissa; 1 << 63 exercises the exact power-of-two
        // boundary. Both codecs, both reader flavors.
        for &v in &[1u64, (1 << 63) - 1, 1 << 63, u64::MAX] {
            let mut g = BitString::new();
            g.push_elias_gamma(v);
            assert_eq!(g.reader().read_elias_gamma(), v);
            assert_eq!(g.reader().try_read_elias_gamma(), Some(v));
            let mut d = BitString::new();
            d.push_elias_delta(v);
            assert_eq!(d.reader().read_elias_delta(), v);
            assert_eq!(d.reader().try_read_elias_delta(), Some(v));
        }
    }

    #[test]
    fn try_gamma_rejects_overlong_zero_runs_instead_of_wrapping() {
        // 64 zeros then a one: claims a 65-bit value. The old bit-loop
        // decoder wrapped this into a small bogus value; the fallible
        // reader must refuse it, and the panicking reader must panic
        // rather than misread.
        let mut b = BitString::new();
        b.push_bits(0, 64);
        b.push(true);
        b.push_bits(u64::MAX, 64);
        assert_eq!(b.reader().try_read_elias_gamma(), None);
        let panicked = std::panic::catch_unwind(|| b.reader().read_elias_gamma());
        assert!(panicked.is_err(), "overlong gamma must not decode");
    }

    #[test]
    fn try_delta_rejects_length_over_64() {
        // Gamma header decodes to 65: a 65-bit mantissa cannot be a u64.
        let mut b = BitString::new();
        b.push_elias_gamma(65);
        b.push_bits(u64::MAX, 64);
        assert_eq!(b.reader().try_read_elias_delta(), None);
        let panicked = std::panic::catch_unwind(|| b.reader().read_elias_delta());
        assert!(panicked.is_err(), "overlong delta must not decode");
    }

    #[test]
    fn truncated_streams_are_none_never_garbage() {
        let mut b = BitString::new();
        b.push_bits(0, 5); // five zeros: a gamma prefix with no terminator
        assert_eq!(b.reader().try_read_elias_gamma(), None);
        let mut b = BitString::new();
        b.push_bits(0b001, 3); // two zeros, a one, then a truncated mantissa
        assert_eq!(b.reader().try_read_elias_gamma(), None);
        assert_eq!(BitString::new().reader().try_read_elias_delta(), None);
        let empty = BitString::new();
        let mut r = empty.reader();
        assert_eq!(r.try_read_bits(1), None);
        assert_eq!(r.try_read_bit(), None);
    }

    #[test]
    fn elias_gamma_known_codes() {
        let mut b = BitString::new();
        b.push_elias_gamma(1);
        assert_eq!(b.to_string(), "1");
        let mut b = BitString::new();
        b.push_elias_gamma(5);
        assert_eq!(b.to_string(), "00101");
        assert_eq!(elias_gamma_len(1), 1);
        assert_eq!(elias_gamma_len(5), 5);
        assert_eq!(elias_gamma_len(8), 7);
    }

    #[test]
    fn elias_delta_roundtrip() {
        let mut b = BitString::new();
        let values = [1u64, 2, 3, 10, 31, 32, 12345, u64::MAX];
        for &v in &values {
            b.push_elias_delta(v);
        }
        let mut r = b.reader();
        for &v in &values {
            assert_eq!(r.read_elias_delta(), v);
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn delta_shorter_than_gamma_for_large_values() {
        let mut g = BitString::new();
        g.push_elias_gamma(1_000_000);
        let mut d = BitString::new();
        d.push_elias_delta(1_000_000);
        assert!(d.len() < g.len());
    }

    #[test]
    fn extend_and_cross_word_boundaries() {
        let mut a = BitString::new();
        for i in 0..130 {
            a.push(i % 3 == 0);
        }
        let mut b = BitString::new();
        b.push(true);
        b.extend_from(&a);
        assert_eq!(b.len(), 131);
        assert!(b.get(0));
        for i in 0..130 {
            assert_eq!(b.get(i + 1), i % 3 == 0, "bit {i}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range() {
        let b = BitString::new();
        let _ = b.get(0);
    }

    #[test]
    fn byte_roundtrip() {
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65, 130] {
            let mut a = BitString::new();
            for i in 0..len {
                a.push(i % 3 == 0 || i % 7 == 2);
            }
            let bytes = a.to_bytes();
            assert_eq!(bytes.len(), len.div_ceil(8));
            assert_eq!(bytes, a.as_bytes());
            let back = BitString::from_bytes(&bytes, len).expect("roundtrip");
            assert_eq!(back, a, "len={len}");
        }
    }

    #[test]
    fn from_bytes_rejects_framing_errors() {
        let mut a = BitString::new();
        a.push_bits(0b1011, 4);
        let bytes = a.to_bytes();
        // Wrong byte count for the claimed bit length.
        assert!(BitString::from_bytes(&bytes, 20).is_none());
        // Dirty padding bits beyond the bit length.
        assert!(BitString::from_bytes(&[0xF0], 4).is_none());
    }

    #[test]
    fn from_bytes_rejects_every_dirty_padding_position() {
        // For every non-byte-aligned length, each individual padding bit
        // of the final byte must cause rejection — the documented
        // contract, now verified bit by bit.
        for len in [1usize, 3, 4, 7, 9, 12, 15, 17] {
            let mut a = BitString::new();
            for i in 0..len {
                a.push(i % 2 == 0);
            }
            let clean = a.to_bytes();
            assert!(BitString::from_bytes(&clean, len).is_some());
            for pad_bit in (len % 8)..8 {
                if len % 8 == 0 {
                    continue;
                }
                let mut dirty = clean.clone();
                *dirty.last_mut().unwrap() |= 1 << pad_bit;
                assert!(
                    BitString::from_bytes(&dirty, len).is_none(),
                    "len={len}: set padding bit {pad_bit} must be rejected"
                );
            }
        }
        // Byte-aligned lengths have no padding to dirty; the exact
        // buffer must still round-trip.
        let mut a = BitString::new();
        a.push_bits(0xAB, 8);
        assert!(BitString::from_bytes(&a.to_bytes(), 8).is_some());
    }

    #[test]
    fn slices_window_into_arbitrary_offsets() {
        let mut a = BitString::new();
        for i in 0..200 {
            a.push(i % 5 < 2);
        }
        let bytes = a.to_bytes();
        for start in [0usize, 1, 7, 8, 63, 64, 65, 100] {
            for len in [0usize, 1, 13, 64, 99] {
                if start + len > 200 {
                    continue;
                }
                let s = BitSlice::new(&bytes, start, len);
                assert_eq!(s.len(), len);
                for i in 0..len {
                    assert_eq!(s.get(i), a.get(start + i), "start={start} i={i}");
                }
                let owned = s.to_bitstring();
                assert_eq!(owned.len(), len);
                assert_eq!(owned.as_slice(), s);
            }
        }
    }

    #[test]
    fn slice_reader_equals_bitstring_reader() {
        let mut a = BitString::new();
        a.push_bits(0b110, 3);
        a.push_elias_gamma(1_000_000);
        a.push_elias_delta(u64::MAX);
        a.push_bits(u64::MAX, 64);
        // Re-window the same stream at a nonzero offset inside a larger
        // buffer and read the identical values back.
        let mut host = BitString::new();
        host.push_bits(0b10101, 5);
        host.extend_from(&a);
        let bytes = host.to_bytes();
        let s = BitSlice::new(&bytes, 5, a.len());
        let mut r = s.reader();
        assert_eq!(r.read_bits(3), 0b110);
        assert_eq!(r.read_elias_gamma(), 1_000_000);
        assert_eq!(r.read_elias_delta(), u64::MAX);
        assert_eq!(r.read_bits(64), u64::MAX);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn slice_window_out_of_range_panics() {
        let bytes = [0u8; 2];
        let _ = BitSlice::new(&bytes, 10, 7);
    }
}
