//! Bit-level encodings of the implicit labels, with exact size accounting.
//!
//! Two separator-field codecs realize the paper's size distinction:
//!
//! * [`SepFieldCodec::EliasGamma`] — `γ_small` (Section 3.1.2): ranks are
//!   ordered by decreasing subtree size, so the rank written at level `k`
//!   costs `O(1 + log(size_{k-1} / size_k))` bits and the whole separator
//!   path telescopes to `O(log n)` bits (the technique borrowed from the
//!   approximate-distance labels of Gavoille–Peleg–Pérennes–Raz).
//! * [`SepFieldCodec::FixedWidth`] — the unoptimized member of `Γ`:
//!   `⌈log₂ n⌉` bits per field, `O(log² n)` total, which is exactly the
//!   separator-path cost of the earlier `O(log² n + log n log W)` schemes
//!   (\[KKP05\] for MST, \[KKKP04\] for FLOW). Keeping it around gives the
//!   baseline for experiments E2/E8 and the ablation of DESIGN.md.
//!
//! `ω` fields are fixed-width at `⌈log₂(W+1)⌉` bits. All encodings are
//! self-delimiting and round-trip exactly, so reported bit counts are
//! honest.

use mstv_graph::{NodeId, Weight};
use mstv_trees::{centroid_decomposition, RootedTree, SeparatorDecomposition};

use crate::{
    decode_flow, decode_max, flow_labels, max_labels, BitSlice, BitString, DistLabel, DistView,
    FlowLabel, FlowView, MaxLabel, MaxView, FLOW_INFINITY,
};

/// How separator-path fields are written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SepFieldCodec {
    /// Elias gamma of `rank + 1`; sizes telescope for size-ordered ranks.
    EliasGamma,
    /// A fixed number of bits per field.
    FixedWidth {
        /// Bits per separator field.
        bits: u32,
    },
}

/// Scheme-level encoding parameters, shared by all labels of one instance
/// (they are "known to the algorithm", not carried per label).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabelCodec {
    /// Separator-field codec.
    pub sep_codec: SepFieldCodec,
    /// Width of each `ω` field: `⌈log₂(W+1)⌉` for maximum weight `W`.
    pub omega_bits: u32,
}

impl LabelCodec {
    /// Derives a codec for `tree`: `ω` fields sized for the tree's largest
    /// weight.
    pub fn for_tree(tree: &RootedTree, sep_codec: SepFieldCodec) -> Self {
        let max_w = tree.edges().map(|(_, _, w)| w).max().unwrap_or(Weight(1));
        LabelCodec {
            sep_codec,
            omega_bits: max_w.bit_width(),
        }
    }

    fn push_sep_field(&self, out: &mut BitString, value: u64) {
        match self.sep_codec {
            SepFieldCodec::EliasGamma => out.push_elias_gamma(value + 1),
            SepFieldCodec::FixedWidth { bits } => out.push_bits(value, bits),
        }
    }

    fn read_sep_field(&self, r: &mut crate::BitReader<'_>) -> u64 {
        match self.sep_codec {
            SepFieldCodec::EliasGamma => r.read_elias_gamma() - 1,
            SepFieldCodec::FixedWidth { bits } => r.read_bits(bits),
        }
    }

    fn try_read_sep_field(&self, r: &mut crate::BitReader<'_>) -> Option<u64> {
        match self.sep_codec {
            SepFieldCodec::EliasGamma => Some(r.try_read_elias_gamma()? - 1),
            SepFieldCodec::FixedWidth { bits } => r.try_read_bits(bits),
        }
    }

    /// Reads one separator field as an equality-comparable token (see
    /// [`crate::BitReader::try_read_elias_gamma_token`]) — the pairwise
    /// decoders compare fields but never use their numeric values.
    #[inline]
    fn try_read_sep_token(&self, r: &mut crate::BitReader<'_>) -> Option<(u32, u64)> {
        match self.sep_codec {
            SepFieldCodec::EliasGamma => r.try_read_elias_gamma_token(),
            SepFieldCodec::FixedWidth { bits } => Some((bits, r.try_read_bits(bits)?)),
        }
    }

    /// Serializes a `MAX` label: `gamma(l)`, then the `l - 1` non-constant
    /// separator fields, then `l` fixed-width `ω` fields.
    ///
    /// # Panics
    ///
    /// Panics if an `ω` value does not fit in `omega_bits` or a separator
    /// field overflows a fixed-width codec.
    pub fn encode_max(&self, label: &MaxLabel) -> BitString {
        let mut out = BitString::new();
        self.encode_max_into(label, &mut out);
        out
    }

    /// [`LabelCodec::encode_max`] appending to an existing buffer — the
    /// arena path: encode a whole tree's labels into one
    /// [`crate::PackedLabels`] with zero per-node allocations.
    ///
    /// # Panics
    ///
    /// As [`LabelCodec::encode_max`].
    pub fn encode_max_into(&self, label: &MaxLabel, out: &mut BitString) {
        out.push_elias_gamma(label.level() as u64);
        for &f in &label.sep[1..] {
            self.push_sep_field(out, f);
        }
        for &w in &label.omega {
            out.push_bits(w.0, self.omega_bits);
        }
    }

    /// Deserializes a `MAX` label.
    ///
    /// # Panics
    ///
    /// Panics on a truncated bit string.
    pub fn decode_max_label(&self, bits: &BitString) -> MaxLabel {
        self.decode_max_from(&mut bits.reader())
    }

    /// Deserializes a `MAX` label from an open reader, leaving the
    /// cursor just past the label — for composite encodings (such as
    /// `π_mst` wire messages) that append further sublabels.
    ///
    /// # Panics
    ///
    /// Panics on a truncated bit string.
    pub fn decode_max_from(&self, r: &mut crate::BitReader<'_>) -> MaxLabel {
        let l = r.read_elias_gamma() as usize;
        let mut sep = Vec::with_capacity(l);
        sep.push(0);
        for _ in 1..l {
            sep.push(self.read_sep_field(r));
        }
        let omega = (0..l)
            .map(|_| Weight(r.read_bits(self.omega_bits)))
            .collect();
        MaxLabel { sep, omega }
    }

    /// Non-panicking [`LabelCodec::decode_max_from`]: returns `None` on a
    /// truncated or implausible stream (a claimed level that cannot fit
    /// in the remaining bits), for wire-level validation of untrusted
    /// frames.
    pub fn try_decode_max_from(&self, r: &mut crate::BitReader<'_>) -> Option<MaxLabel> {
        let l = r.try_read_elias_gamma()? as usize;
        if l == 0 || l > r.remaining() + 1 {
            return None;
        }
        let mut sep = Vec::with_capacity(l);
        sep.push(0);
        for _ in 1..l {
            sep.push(self.try_read_sep_field(r)?);
        }
        let mut omega = Vec::with_capacity(l);
        for _ in 0..l {
            omega.push(Weight(r.try_read_bits(self.omega_bits)?));
        }
        Some(MaxLabel { sep, omega })
    }

    /// Non-panicking [`LabelCodec::decode_max_label`]: decodes a whole
    /// bit string as one `MAX` label, rejecting truncated streams and
    /// trailing garbage — the shape snapshot loaders want, where every
    /// record claims to be exactly one label.
    pub fn try_decode_max_label(&self, bits: &BitString) -> Option<MaxLabel> {
        let mut r = bits.reader();
        let label = self.try_decode_max_from(&mut r)?;
        (r.remaining() == 0).then_some(label)
    }

    /// Non-panicking `FLOW` twin of [`LabelCodec::try_decode_max_from`]:
    /// returns `None` on a truncated or implausible stream, for
    /// validating untrusted frames and snapshot records.
    pub fn try_decode_flow_from(&self, r: &mut crate::BitReader<'_>) -> Option<FlowLabel> {
        let l = r.try_read_elias_gamma()? as usize;
        if l == 0 || l > r.remaining() + 1 {
            return None;
        }
        let mut sep = Vec::with_capacity(l);
        sep.push(0);
        for _ in 1..l {
            sep.push(self.try_read_sep_field(r)?);
        }
        let mut phi = Vec::with_capacity(l);
        for _ in 0..l {
            let raw = r.try_read_bits(self.omega_bits)?;
            phi.push(if raw == 0 { FLOW_INFINITY } else { Weight(raw) });
        }
        Some(FlowLabel { sep, phi })
    }

    /// Non-panicking [`LabelCodec::decode_flow_label`]: one whole bit
    /// string, no trailing garbage.
    pub fn try_decode_flow_label(&self, bits: &BitString) -> Option<FlowLabel> {
        let mut r = bits.reader();
        let label = self.try_decode_flow_from(&mut r)?;
        (r.remaining() == 0).then_some(label)
    }

    /// Non-panicking decoder for the distance labels written by
    /// [`ImplicitDistScheme`]: the separator fields follow this codec's
    /// `sep_codec`, the `δ` fields are `delta_bits` wide (the scheme's
    /// own width, carried separately because distances are bounded by
    /// `n·W`, not `W`). Rejects truncated streams and trailing garbage.
    pub fn try_decode_dist_label(&self, bits: &BitString, delta_bits: u32) -> Option<DistLabel> {
        let mut r = bits.reader();
        let l = r.try_read_elias_gamma()? as usize;
        if l == 0 || l > r.remaining() + 1 {
            return None;
        }
        let mut sep = Vec::with_capacity(l);
        sep.push(0);
        for _ in 1..l {
            sep.push(self.try_read_sep_field(&mut r)?);
        }
        let mut delta = Vec::with_capacity(l);
        for _ in 0..l {
            delta.push(r.try_read_bits(delta_bits)?);
        }
        (r.remaining() == 0).then_some(DistLabel { sep, delta })
    }

    /// Decodes a whole borrowed window — a columnar snapshot record, a
    /// frame field — straight into the flattened [`MaxView`] the query
    /// engine caches, with no intermediate [`MaxLabel`]. Same
    /// validation as [`LabelCodec::try_decode_max_label`]: truncated
    /// streams, implausible levels, and trailing garbage all return
    /// `None`.
    pub fn try_decode_max_view(&self, bits: BitSlice<'_>) -> Option<MaxView> {
        let (level, fields) = self.decode_packed_fields(bits, self.omega_bits)?;
        Some(MaxView::from_packed(level, fields))
    }

    /// [`LabelCodec::try_decode_max_view`] for `FLOW` labels: the raw
    /// `0` pattern maps to [`FLOW_INFINITY`]'s `u64::MAX` so the view
    /// decoder's `min` is the `FLOW` decoder.
    pub fn try_decode_flow_view(&self, bits: BitSlice<'_>) -> Option<FlowView> {
        let (level, mut fields) = self.decode_packed_fields(bits, self.omega_bits)?;
        for v in &mut fields[level as usize - 1..] {
            if *v == 0 {
                *v = FLOW_INFINITY.0;
            }
        }
        Some(FlowView::from_packed(level, fields))
    }

    /// [`LabelCodec::try_decode_max_view`] for distance labels, whose
    /// `δ` fields carry their own scheme-wide width.
    pub fn try_decode_dist_view(&self, bits: BitSlice<'_>, delta_bits: u32) -> Option<DistView> {
        let (level, fields) = self.decode_packed_fields(bits, delta_bits)?;
        Some(DistView::from_packed(level, fields))
    }

    /// The shared whole-window field decoder behind the view decoders:
    /// level, then the flattened field block in the views' own layout
    /// (`level - 1` separator fields followed by `level` raw value
    /// fields of width `value_bits`) — a single allocation, filled in
    /// one pass over the bits.
    fn decode_packed_fields(&self, bits: BitSlice<'_>, value_bits: u32) -> Option<(u32, Vec<u64>)> {
        let mut r = bits.reader();
        let l = r.try_read_elias_gamma()? as usize;
        if l == 0 || l > r.remaining() + 1 {
            return None;
        }
        let mut fields = Vec::with_capacity(2 * l - 1);
        for _ in 1..l {
            fields.push(self.try_read_sep_field(&mut r)?);
        }
        for _ in 0..l {
            fields.push(r.try_read_bits(value_bits)?);
        }
        (r.remaining() == 0).then_some((l as u32, fields))
    }

    /// Answers `MAX(u, v)` straight from two encoded label windows —
    /// no intermediate label, no view, no heap allocation. An answer
    /// only needs the `ω` field at the shared-prefix index, so the
    /// decoder streams both separator paths in lockstep to find that
    /// index and then jumps straight to the one value field per label
    /// (value blocks are fixed-width). This is the cache-disabled cold
    /// path of the query engine; validation matches
    /// [`LabelCodec::try_decode_max_view`] — truncation, implausible
    /// levels, and trailing garbage all return `None`.
    pub fn try_decode_max_pair(&self, a: BitSlice<'_>, b: BitSlice<'_>) -> Option<Weight> {
        let (x, y) = self.pair_values(a, b, self.omega_bits)?;
        Some(Weight(x.max(y)))
    }

    /// [`LabelCodec::try_decode_max_pair`] for `FLOW` labels: the raw
    /// `0` pattern means [`FLOW_INFINITY`], and the combine is `min`.
    pub fn try_decode_flow_pair(&self, a: BitSlice<'_>, b: BitSlice<'_>) -> Option<Weight> {
        let (x, y) = self.pair_values(a, b, self.omega_bits)?;
        let x = if x == 0 { FLOW_INFINITY } else { Weight(x) };
        let y = if y == 0 { FLOW_INFINITY } else { Weight(y) };
        Some(x.min(y))
    }

    /// [`LabelCodec::try_decode_max_pair`] for distance labels: the
    /// outer `Option` is window validity, the inner one is the
    /// [`crate::decode_dist_views`] overflow guard — `Some(None)` when
    /// `δ_u + δ_v` overflows `u64`.
    pub fn try_decode_dist_pair(
        &self,
        a: BitSlice<'_>,
        b: BitSlice<'_>,
        delta_bits: u32,
    ) -> Option<Option<u64>> {
        let (x, y) = self.pair_values(a, b, delta_bits)?;
        Some(x.checked_add(y))
    }

    /// The lockstep walk behind the pairwise decoders: read both
    /// levels, compare separator fields as they stream past to find
    /// the shared-prefix length `cp` (at least 1 — `sep[0] = 0` is
    /// implicit in both), drain the longer path, then skip directly to
    /// value field `cp - 1` of each window and read only that.
    fn pair_values(&self, a: BitSlice<'_>, b: BitSlice<'_>, value_bits: u32) -> Option<(u64, u64)> {
        let mut ra = a.reader();
        let mut rb = b.reader();
        let la = ra.try_read_elias_gamma()? as usize;
        let lb = rb.try_read_elias_gamma()? as usize;
        if la == 0 || la > ra.remaining() + 1 || lb == 0 || lb > rb.remaining() + 1 {
            return None;
        }
        let m = la.min(lb) - 1;
        let mut cp = 1usize;
        let mut diverged = false;
        for _ in 0..m {
            // Equality is all the walk needs, so compare raw prefix-free
            // tokens — no bit reversal into numeric field values.
            let fa = self.try_read_sep_token(&mut ra)?;
            let fb = self.try_read_sep_token(&mut rb)?;
            if !diverged && fa == fb {
                cp += 1;
            } else {
                diverged = true;
            }
        }
        for _ in m..la - 1 {
            self.try_read_sep_token(&mut ra)?;
        }
        for _ in m..lb - 1 {
            self.try_read_sep_token(&mut rb)?;
        }
        // Exact framing: what remains must be precisely the two value
        // blocks — the pairwise twin of the trailing-garbage check.
        if ra.remaining() != la * value_bits as usize || rb.remaining() != lb * value_bits as usize
        {
            return None;
        }
        ra.try_skip_bits((cp - 1) * value_bits as usize)?;
        rb.try_skip_bits((cp - 1) * value_bits as usize)?;
        Some((ra.try_read_bits(value_bits)?, rb.try_read_bits(value_bits)?))
    }

    /// Serializes a `FLOW` label; the neutral `+∞` is written as the
    /// reserved pattern `0` (weights are positive, so `0` is free).
    ///
    /// # Panics
    ///
    /// Panics if a finite `φ` value does not fit in `omega_bits`.
    pub fn encode_flow(&self, label: &FlowLabel) -> BitString {
        let mut out = BitString::new();
        self.encode_flow_into(label, &mut out);
        out
    }

    /// [`LabelCodec::encode_flow`] appending to an existing buffer —
    /// the arena path, mirroring [`LabelCodec::encode_max_into`].
    ///
    /// # Panics
    ///
    /// As [`LabelCodec::encode_flow`].
    pub fn encode_flow_into(&self, label: &FlowLabel, out: &mut BitString) {
        out.push_elias_gamma(label.level() as u64);
        for &f in &label.sep[1..] {
            self.push_sep_field(out, f);
        }
        for &w in &label.phi {
            let raw = if w == FLOW_INFINITY { 0 } else { w.0 };
            out.push_bits(raw, self.omega_bits);
        }
    }

    /// Deserializes a `FLOW` label.
    ///
    /// # Panics
    ///
    /// Panics on a truncated bit string.
    pub fn decode_flow_label(&self, bits: &BitString) -> FlowLabel {
        let mut r = bits.reader();
        let l = r.read_elias_gamma() as usize;
        let mut sep = Vec::with_capacity(l);
        sep.push(0);
        for _ in 1..l {
            sep.push(self.read_sep_field(&mut r));
        }
        let phi = (0..l)
            .map(|_| {
                let raw = r.read_bits(self.omega_bits);
                if raw == 0 {
                    FLOW_INFINITY
                } else {
                    Weight(raw)
                }
            })
            .collect();
        FlowLabel { sep, phi }
    }
}

/// A fully materialized implicit `MAX` labeling scheme over one tree:
/// structured labels, their exact bit encodings, and the decoder.
#[derive(Debug, Clone)]
pub struct ImplicitMaxScheme {
    codec: LabelCodec,
    labels: Vec<MaxLabel>,
    encoded: Vec<BitString>,
}

impl ImplicitMaxScheme {
    /// `γ_small` (Lemma 3.2): perfect (centroid) separator decomposition
    /// with size-ordered Elias-gamma ranks — `O(log n log W)` bits.
    pub fn gamma_small(tree: &RootedTree) -> Self {
        let sep = centroid_decomposition(tree);
        Self::with_decomposition(tree, &sep, SepFieldCodec::EliasGamma)
    }

    /// The unoptimized baseline: centroid decomposition with fixed-width
    /// `⌈log₂ n⌉`-bit separator fields — `O(log² n + log n log W)` bits,
    /// the size of the previously known schemes.
    pub fn fixed_width_baseline(tree: &RootedTree) -> Self {
        let sep = centroid_decomposition(tree);
        let bits = (usize::BITS - tree.num_nodes().leading_zeros()).max(1);
        Self::with_decomposition(tree, &sep, SepFieldCodec::FixedWidth { bits })
    }

    /// An arbitrary member of `Γ`: any decomposition, any codec.
    ///
    /// # Panics
    ///
    /// Panics if `sep` does not match `tree`, or if a rank overflows a
    /// fixed-width codec.
    pub fn with_decomposition(
        tree: &RootedTree,
        sep: &SeparatorDecomposition,
        sep_codec: SepFieldCodec,
    ) -> Self {
        let codec = LabelCodec::for_tree(tree, sep_codec);
        let labels = max_labels(tree, sep);
        let encoded = labels.iter().map(|l| codec.encode_max(l)).collect();
        ImplicitMaxScheme {
            codec,
            labels,
            encoded,
        }
    }

    /// [`ImplicitMaxScheme::with_decomposition`] with label assembly and
    /// encoding fanned across a scoped thread pool. Byte-identical to
    /// the sequential builder for every thread count.
    ///
    /// # Panics
    ///
    /// As [`ImplicitMaxScheme::with_decomposition`].
    pub fn with_decomposition_parallel(
        tree: &RootedTree,
        sep: &SeparatorDecomposition,
        sep_codec: SepFieldCodec,
        config: mstv_trees::ParallelConfig,
    ) -> Self {
        let codec = LabelCodec::for_tree(tree, sep_codec);
        let labels = crate::max_labels_parallel(tree, sep, config);
        let encoded =
            mstv_trees::par_map_chunks(labels.len(), config.resolved_threads(), |lo, hi| {
                labels[lo..hi].iter().map(|l| codec.encode_max(l)).collect()
            });
        ImplicitMaxScheme {
            codec,
            labels,
            encoded,
        }
    }

    /// The codec shared by all labels.
    pub fn codec(&self) -> LabelCodec {
        self.codec
    }

    /// The structured label of `v`.
    pub fn label(&self, v: NodeId) -> &MaxLabel {
        &self.labels[v.index()]
    }

    /// All structured labels.
    pub fn labels(&self) -> &[MaxLabel] {
        &self.labels
    }

    /// The bit encoding of `v`'s label.
    pub fn encoded(&self, v: NodeId) -> &BitString {
        &self.encoded[v.index()]
    }

    /// The scheme's size: the maximum label length in bits.
    pub fn max_label_bits(&self) -> usize {
        self.encoded.iter().map(BitString::len).max().unwrap_or(0)
    }

    /// Total bits over all labels.
    pub fn total_bits(&self) -> usize {
        self.encoded.iter().map(BitString::len).sum()
    }

    /// `MAX(u, v)` through the decoder.
    pub fn query(&self, u: NodeId, v: NodeId) -> Weight {
        decode_max(self.label(u), self.label(v))
    }
}

/// A fully materialized implicit `FLOW` labeling scheme; mirrors
/// [`ImplicitMaxScheme`].
#[derive(Debug, Clone)]
pub struct ImplicitFlowScheme {
    codec: LabelCodec,
    labels: Vec<FlowLabel>,
    encoded: Vec<BitString>,
}

impl ImplicitFlowScheme {
    /// The `O(log n log W)` `FLOW` scheme derived from `γ_small`.
    pub fn gamma_small(tree: &RootedTree) -> Self {
        let sep = centroid_decomposition(tree);
        Self::with_decomposition(tree, &sep, SepFieldCodec::EliasGamma)
    }

    /// The `O(log² n + log n log W)` baseline shape of \[KKKP04\].
    pub fn fixed_width_baseline(tree: &RootedTree) -> Self {
        let sep = centroid_decomposition(tree);
        let bits = (usize::BITS - tree.num_nodes().leading_zeros()).max(1);
        Self::with_decomposition(tree, &sep, SepFieldCodec::FixedWidth { bits })
    }

    /// An arbitrary member of the family.
    ///
    /// # Panics
    ///
    /// Panics if `sep` does not match `tree`.
    pub fn with_decomposition(
        tree: &RootedTree,
        sep: &SeparatorDecomposition,
        sep_codec: SepFieldCodec,
    ) -> Self {
        let codec = LabelCodec::for_tree(tree, sep_codec);
        let labels = flow_labels(tree, sep);
        let encoded = labels.iter().map(|l| codec.encode_flow(l)).collect();
        ImplicitFlowScheme {
            codec,
            labels,
            encoded,
        }
    }

    /// [`ImplicitFlowScheme::with_decomposition`] with label assembly
    /// and encoding fanned across a scoped thread pool. Byte-identical
    /// to the sequential builder for every thread count.
    ///
    /// # Panics
    ///
    /// As [`ImplicitFlowScheme::with_decomposition`].
    pub fn with_decomposition_parallel(
        tree: &RootedTree,
        sep: &SeparatorDecomposition,
        sep_codec: SepFieldCodec,
        config: mstv_trees::ParallelConfig,
    ) -> Self {
        let codec = LabelCodec::for_tree(tree, sep_codec);
        let labels = crate::flow_labels_parallel(tree, sep, config);
        let encoded =
            mstv_trees::par_map_chunks(labels.len(), config.resolved_threads(), |lo, hi| {
                labels[lo..hi]
                    .iter()
                    .map(|l| codec.encode_flow(l))
                    .collect()
            });
        ImplicitFlowScheme {
            codec,
            labels,
            encoded,
        }
    }

    /// The codec shared by all labels.
    pub fn codec(&self) -> LabelCodec {
        self.codec
    }

    /// The structured label of `v`.
    pub fn label(&self, v: NodeId) -> &FlowLabel {
        &self.labels[v.index()]
    }

    /// The bit encoding of `v`'s label.
    pub fn encoded(&self, v: NodeId) -> &BitString {
        &self.encoded[v.index()]
    }

    /// The scheme's size: the maximum label length in bits.
    pub fn max_label_bits(&self) -> usize {
        self.encoded.iter().map(BitString::len).max().unwrap_or(0)
    }

    /// `FLOW(u, v)` through the decoder.
    pub fn query(&self, u: NodeId, v: NodeId) -> Weight {
        decode_flow(self.label(u), self.label(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstv_graph::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tree_of(n: usize, max_w: u64, seed: u64) -> RootedTree {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gen::random_tree(n, gen::WeightDist::Uniform { max: max_w }, &mut rng);
        RootedTree::from_graph(&g, NodeId(0)).unwrap()
    }

    #[test]
    fn max_label_roundtrip() {
        let t = tree_of(80, 1000, 1);
        for scheme in [
            ImplicitMaxScheme::gamma_small(&t),
            ImplicitMaxScheme::fixed_width_baseline(&t),
        ] {
            for v in t.nodes() {
                let decoded = scheme.codec().decode_max_label(scheme.encoded(v));
                assert_eq!(&decoded, scheme.label(v), "v={v}");
            }
        }
    }

    #[test]
    fn flow_label_roundtrip() {
        let t = tree_of(80, 1000, 2);
        for scheme in [
            ImplicitFlowScheme::gamma_small(&t),
            ImplicitFlowScheme::fixed_width_baseline(&t),
        ] {
            for v in t.nodes() {
                let decoded = scheme.codec().decode_flow_label(scheme.encoded(v));
                assert_eq!(&decoded, scheme.label(v), "v={v}");
            }
        }
    }

    #[test]
    fn queries_through_encoded_labels() {
        // Decode from bits, then run the decoder: end-to-end correctness.
        let t = tree_of(50, 300, 3);
        let scheme = ImplicitMaxScheme::gamma_small(&t);
        let codec = scheme.codec();
        for u in t.nodes() {
            for v in t.nodes() {
                if u == v {
                    continue;
                }
                let a = codec.decode_max_label(scheme.encoded(u));
                let b = codec.decode_max_label(scheme.encoded(v));
                assert_eq!(decode_max(&a, &b), t.max_on_path_naive(u, v));
            }
        }
    }

    #[test]
    fn try_decoders_roundtrip_and_reject_garbage() {
        let t = tree_of(60, 700, 12);
        let max_scheme = ImplicitMaxScheme::gamma_small(&t);
        let flow_scheme = ImplicitFlowScheme::gamma_small(&t);
        let dist_scheme = crate::ImplicitDistScheme::gamma_small(&t);
        let codec = max_scheme.codec();
        for v in t.nodes() {
            assert_eq!(
                codec.try_decode_max_label(max_scheme.encoded(v)).as_ref(),
                Some(max_scheme.label(v))
            );
            assert_eq!(
                codec.try_decode_flow_label(flow_scheme.encoded(v)).as_ref(),
                Some(flow_scheme.label(v))
            );
            assert_eq!(
                codec
                    .try_decode_dist_label(dist_scheme.encoded(v), dist_scheme.delta_bits())
                    .as_ref(),
                Some(dist_scheme.label(v))
            );
        }
        // Trailing garbage after a well-formed label is rejected.
        let mut padded = max_scheme.encoded(NodeId(3)).clone();
        padded.push(true);
        assert_eq!(codec.try_decode_max_label(&padded), None);
        let mut padded = flow_scheme.encoded(NodeId(3)).clone();
        padded.push(true);
        assert_eq!(codec.try_decode_flow_label(&padded), None);
        // Truncated streams are rejected, never panic.
        let enc = flow_scheme.encoded(NodeId(5));
        let mut cut = BitString::new();
        for i in 0..enc.len() / 2 {
            cut.push(enc.get(i));
        }
        assert_eq!(codec.try_decode_flow_label(&cut), None);
        assert_eq!(codec.try_decode_max_label(&BitString::new()), None);
    }

    #[test]
    fn pair_decoders_agree_with_structured_decoders() {
        use crate::{dist_labels, try_decode_dist};
        use mstv_trees::centroid_decomposition;
        let t = tree_of(90, 800, 13);
        let sep = centroid_decomposition(&t);
        for codec in [
            LabelCodec::for_tree(&t, SepFieldCodec::EliasGamma),
            LabelCodec::for_tree(&t, SepFieldCodec::FixedWidth { bits: 7 }),
        ] {
            let max = max_labels(&t, &sep);
            let flow = flow_labels(&t, &sep);
            let dist = dist_labels(&t, &sep);
            let delta_bits = dist
                .iter()
                .flat_map(|l| l.delta.iter())
                .map(|&d| 64 - d.leading_zeros())
                .max()
                .unwrap()
                .max(1);
            let enc_max: Vec<_> = max.iter().map(|l| codec.encode_max(l)).collect();
            let enc_flow: Vec<_> = flow.iter().map(|l| codec.encode_flow(l)).collect();
            let enc_dist: Vec<_> = dist
                .iter()
                .map(|l| {
                    let mut out = BitString::new();
                    crate::encode_dist_label_into(l, codec.sep_codec, delta_bits, &mut out);
                    out
                })
                .collect();
            for u in (0..90).step_by(7) {
                for v in (0..90).step_by(13) {
                    assert_eq!(
                        codec.try_decode_max_pair(enc_max[u].as_slice(), enc_max[v].as_slice()),
                        Some(decode_max(&max[u], &max[v])),
                        "max {u},{v}"
                    );
                    assert_eq!(
                        codec.try_decode_flow_pair(enc_flow[u].as_slice(), enc_flow[v].as_slice()),
                        Some(decode_flow(&flow[u], &flow[v])),
                        "flow {u},{v}"
                    );
                    assert_eq!(
                        codec.try_decode_dist_pair(
                            enc_dist[u].as_slice(),
                            enc_dist[v].as_slice(),
                            delta_bits
                        ),
                        Some(try_decode_dist(&dist[u], &dist[v])),
                        "dist {u},{v}"
                    );
                }
            }
        }
    }

    #[test]
    fn pair_decoders_reject_malformed_windows() {
        let t = tree_of(40, 300, 14);
        let scheme = ImplicitMaxScheme::gamma_small(&t);
        let codec = scheme.codec();
        let good = scheme.encoded(NodeId(2));
        // Trailing garbage on either side is rejected.
        let mut padded = good.clone();
        padded.push(true);
        assert_eq!(
            codec.try_decode_max_pair(padded.as_slice(), good.as_slice()),
            None
        );
        assert_eq!(
            codec.try_decode_max_pair(good.as_slice(), padded.as_slice()),
            None
        );
        // Truncated windows are rejected, never panic.
        let enc = scheme.encoded(NodeId(5));
        let mut cut = BitString::new();
        for i in 0..enc.len() / 2 {
            cut.push(enc.get(i));
        }
        assert_eq!(
            codec.try_decode_max_pair(cut.as_slice(), good.as_slice()),
            None
        );
        assert_eq!(
            codec.try_decode_max_pair(BitString::new().as_slice(), good.as_slice()),
            None
        );
    }

    #[test]
    fn gamma_small_never_larger_than_fixed_width() {
        for (n, w, seed) in [(20usize, 10u64, 4u64), (200, 1000, 5), (999, 7, 6)] {
            let t = tree_of(n, w, seed);
            let small = ImplicitMaxScheme::gamma_small(&t);
            let wide = ImplicitMaxScheme::fixed_width_baseline(&t);
            assert!(
                small.max_label_bits() <= wide.max_label_bits(),
                "n={n} w={w}: {} > {}",
                small.max_label_bits(),
                wide.max_label_bits()
            );
        }
    }

    #[test]
    fn gamma_small_size_is_log_n_log_w() {
        // Generous constant-factor check of Lemma 3.2 on random trees.
        for (n, w, seed) in [(64usize, 255u64, 7u64), (512, 65_535, 8), (2048, 3, 9)] {
            let t = tree_of(n, w, seed);
            let scheme = ImplicitMaxScheme::gamma_small(&t);
            let log_n = (usize::BITS - n.leading_zeros()) as usize;
            let log_w = Weight(w).bit_width() as usize;
            let bound = 6 * log_n * log_w + 8 * log_n + 32;
            assert!(
                scheme.max_label_bits() <= bound,
                "n={n} W={w}: {} bits > bound {bound}",
                scheme.max_label_bits()
            );
        }
    }

    #[test]
    fn flow_scheme_correct_through_bits() {
        let t = tree_of(40, 500, 10);
        let scheme = ImplicitFlowScheme::gamma_small(&t);
        for u in t.nodes() {
            for v in t.nodes() {
                if u != v {
                    assert_eq!(scheme.query(u, v), t.min_on_path_naive(u, v));
                }
            }
        }
        assert_eq!(scheme.query(NodeId(0), NodeId(0)), FLOW_INFINITY);
    }

    #[test]
    fn sizes_reported_consistently() {
        let t = tree_of(30, 50, 11);
        let scheme = ImplicitMaxScheme::gamma_small(&t);
        let max = scheme.max_label_bits();
        let total = scheme.total_bits();
        assert!(max > 0);
        assert!(total >= max);
        assert!(total <= max * t.num_nodes());
        assert_eq!(scheme.labels().len(), 30);
    }
}
