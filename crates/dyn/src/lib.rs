//! `mstv-dyn`: the incremental relabeling engine.
//!
//! The batch pipeline (`kruskal` → `Snapshot::build`) prices every
//! mutation at a full rebuild: re-sort all edges, re-decompose the tree,
//! re-assemble and re-encode `n` labels. This crate keeps an *accepted*
//! labeling live under a mutation stream by exploiting two locality
//! facts of the `Γ` construction:
//!
//! 1. **Separator locality.** A node's label mentions only its own
//!    centroid-ancestor chain — the `O(log n)` separators above it —
//!    and per-chain values (`ω` path maxima, `φ` path minima, `δ`
//!    distances). A mutation therefore dirties exactly the nodes whose
//!    chain changed or whose path to some chain separator crossed a
//!    touched edge; everything else is bit-identical by construction.
//! 2. **One-swap repair.** A single weight change moves the MST by at
//!    most one edge swap ([`mstv_mst::repair_after_weight_change`]), so
//!    the set of touched edges per mutation is at most two.
//!
//! [`DynMarker::apply`] classifies each mutation into the cheapest
//! sufficient reaction — [`DeltaOutcome::NoOp`] (non-tree weight moves
//! that do not flip the sensitivity threshold, detected in `O(1)` by
//! decoding the stored `MAX` labels of the edge's endpoints),
//! [`DeltaOutcome::WeightsOnly`], [`DeltaOutcome::TreeSwap`], or
//! [`DeltaOutcome::Reencode`] when a scheme-wide field width moved —
//! and emits the [`DeltaRecord`] for the MSTVJRNL journal. The
//! maintained state is asserted (in this crate's tests and in the
//! dynamic-serving experiment) to be **bit-identical** to a
//! from-scratch `kruskal` + `Snapshot::build` after every mutation.

use mstv_graph::{EdgeId, Graph, NodeId, Weight};
use mstv_labels::{
    decode_max, dist_label_of, dist_label_of_walk, encode_dist_label, encode_dist_label_into,
    flow_label_of, flow_label_of_walk, max_label_of, max_label_of_walk, BitString, DistLabel,
    DistOracle, FlowLabel, LabelCodec, MaxLabel, SepFieldCodec,
};
use mstv_mst::{kruskal, repair_after_weight_change_in, Repair};
use mstv_store::{
    DeltaOutcome, DeltaRecord, DistSection, JournalMutation, LabelDelta, Snapshot, TreeDelta,
};
use mstv_trees::{
    centroid_decomposition, KruskalTree, PathMaxIndex, RootedTree, SeparatorDecomposition,
};

/// Errors surfaced by [`DynMarker`]; everything else (internal
/// inconsistency) is a panic, because the marker owns its state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DynError {
    /// The input graph is not connected (no spanning tree exists).
    Disconnected,
    /// A mutation named a node outside the graph.
    NodeOutOfRange {
        /// The offending node id.
        node: u32,
        /// Number of nodes in the graph.
        nodes: u32,
    },
    /// A mutation named a vertex pair with no edge between them.
    UnknownEdge {
        /// First endpoint.
        u: u32,
        /// Second endpoint.
        v: u32,
    },
}

impl std::fmt::Display for DynError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DynError::Disconnected => write!(f, "graph is not connected"),
            DynError::NodeOutOfRange { node, nodes } => {
                write!(f, "node {node} out of range for {nodes} nodes")
            }
            DynError::UnknownEdge { u, v } => write!(f, "no edge between {u} and {v}"),
        }
    }
}

impl std::error::Error for DynError {}

/// The live marker: a graph, its canonical MST, and the full label
/// stack of the `Γ` schemes over it, maintained under mutations.
///
/// "Canonical" means the tree Kruskal's algorithm produces under the
/// EdgeKey order `(weight, edge id)` — the same tie-break every batch
/// tool in this workspace uses — so the maintained snapshot can be
/// compared byte-for-byte against `Snapshot::build` on a fresh
/// `kruskal` run at any point.
pub struct DynMarker {
    graph: Graph,
    sep_codec: SepFieldCodec,
    tree_edges: Vec<EdgeId>,
    in_tree: Vec<bool>,
    tree: RootedTree,
    sep: SeparatorDecomposition,
    parents: Vec<Option<(NodeId, Weight)>>,
    max_s: Vec<MaxLabel>,
    flow_s: Vec<FlowLabel>,
    dist_s: Vec<DistLabel>,
    /// `dist_max[v] == max(dist_s[v].delta)` — kept current so the
    /// global `δ` width check is a flat `u64` scan per mutation.
    dist_max: Vec<u64>,
    enc_max: Vec<BitString>,
    enc_flow: Vec<BitString>,
    enc_dist: Vec<BitString>,
    max_weight: Weight,
    omega_bits: u32,
    delta_bits: u32,
    seq: u64,
}

impl DynMarker {
    /// Builds the marker over `graph`: canonical Kruskal MST, centroid
    /// decomposition, and the full structured + encoded label stack —
    /// the same pipeline `Snapshot::build` runs, held open for
    /// incremental maintenance.
    ///
    /// # Errors
    ///
    /// [`DynError::Disconnected`] when the graph has no spanning tree.
    pub fn new(graph: Graph, sep_codec: SepFieldCodec) -> Result<DynMarker, DynError> {
        if graph.num_nodes() == 0 || !graph.is_connected() {
            return Err(DynError::Disconnected);
        }
        let tree_edges = kruskal(&graph);
        let mut in_tree = vec![false; graph.num_edges()];
        for &e in &tree_edges {
            in_tree[e.index()] = true;
        }
        let tree = RootedTree::from_graph_edges(&graph, &tree_edges, NodeId(0))
            .expect("kruskal returns a spanning tree");
        let sep = centroid_decomposition(&tree);
        let mut marker = DynMarker {
            graph,
            sep_codec,
            tree_edges,
            in_tree,
            parents: parent_entries(&tree),
            tree,
            sep,
            max_s: Vec::new(),
            flow_s: Vec::new(),
            dist_s: Vec::new(),
            dist_max: Vec::new(),
            enc_max: Vec::new(),
            enc_flow: Vec::new(),
            enc_dist: Vec::new(),
            max_weight: Weight(1),
            omega_bits: 1,
            delta_bits: 1,
            seq: 0,
        };
        marker.rebuild_all_labels();
        Ok(marker)
    }

    /// The graph under mutation.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The canonical MST edge set (unordered).
    pub fn tree_edges(&self) -> &[EdgeId] {
        &self.tree_edges
    }

    /// The maintained rooted tree.
    pub fn tree(&self) -> &RootedTree {
        &self.tree
    }

    /// The maintained centroid decomposition.
    pub fn decomposition(&self) -> &SeparatorDecomposition {
        &self.sep
    }

    /// The structured `MAX` label of `v` (what `π_mst` carries as `γ`).
    pub fn max_label(&self, v: NodeId) -> &MaxLabel {
        &self.max_s[v.index()]
    }

    /// Mutations applied so far (the next record's `seq`, minus one).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Snapshot of the current state, built from the maintained parts —
    /// byte-identical to `Snapshot::build` on a fresh canonical rebuild
    /// of the mutated graph.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::from_parts(
            self.tree.root(),
            self.max_weight,
            LabelCodec {
                sep_codec: self.sep_codec,
                omega_bits: self.omega_bits,
            },
            self.parents.clone(),
            self.enc_max.clone(),
            self.enc_flow.clone(),
            Some(DistSection {
                delta_bits: self.delta_bits,
                labels: self.enc_dist.clone(),
            }),
        )
    }

    /// Applies one mutation: updates the graph, repairs the MST if the
    /// sensitivity threshold flipped, relabels exactly the dirty
    /// centroid subtrees, and returns the journal record describing
    /// everything that changed.
    ///
    /// # Errors
    ///
    /// [`DynError::NodeOutOfRange`] / [`DynError::UnknownEdge`] for
    /// mutations naming nonexistent endpoints; the state is unmodified
    /// on error.
    pub fn apply(&mut self, mutation: JournalMutation) -> Result<DeltaRecord, DynError> {
        let steps = match mutation {
            JournalMutation::SetWeight { u, v, w } => {
                vec![(self.resolve_edge(u, v)?, Weight(w))]
            }
            JournalMutation::SwapWeights { u1, v1, u2, v2 } => {
                let e1 = self.resolve_edge(u1, v1)?;
                let e2 = self.resolve_edge(u2, v2)?;
                vec![(e1, self.graph.weight(e2)), (e2, self.graph.weight(e1))]
            }
        };
        Ok(self.apply_steps(mutation, &steps))
    }

    fn resolve_edge(&self, u: u32, v: u32) -> Result<EdgeId, DynError> {
        let nodes = self.graph.num_nodes() as u32;
        for node in [u, v] {
            if node >= nodes {
                return Err(DynError::NodeOutOfRange { node, nodes });
            }
        }
        self.graph
            .edge_between(NodeId(u), NodeId(v))
            .ok_or(DynError::UnknownEdge { u, v })
    }

    fn apply_steps(
        &mut self,
        mutation: JournalMutation,
        steps: &[(EdgeId, Weight)],
    ) -> DeltaRecord {
        let n = self.graph.num_nodes();
        if steps.iter().all(|&(e, w)| self.graph.weight(e) == w) {
            return self.finish_record(
                mutation,
                DeltaOutcome::NoOp,
                vec![],
                vec![],
                vec![],
                vec![],
            );
        }
        // Old-side context, needed for crossing tests after a swap. The
        // old tree itself stays untouched in `self.tree` until commit;
        // only the membership vector is mutated in place by the repair.
        let old_in_tree = self.in_tree.clone();

        // Phase 1: mutate weights and repair the tree, one step at a
        // time. `touched` collects tree edges whose weight changed
        // without evicting them; removed/added are the repair swaps.
        let single = steps.len() == 1;
        let mut touched: Vec<EdgeId> = Vec::new();
        let mut removed_edges: Vec<EdgeId> = Vec::new();
        let mut added_edges: Vec<EdgeId> = Vec::new();
        // Repairs run against the maintained tree; after a swap within
        // a multi-step mutation, later steps need the intermediate
        // topology, so it is rebuilt here (cheap membership BFS) while
        // `self.tree` keeps the pre-mutation view for phase 3. The
        // repair reads weights from the graph, never from the tree, so
        // stale cached weights in either tree are harmless — but phase 2
        // reuses `mid_tree` as the final tree only while `mid_valid`
        // says no later step re-priced a tree edge behind its back.
        let mut mid_tree: Option<RootedTree> = None;
        let mut mid_valid = false;
        for &(e, w) in steps {
            if self.graph.weight(e) == w {
                continue;
            }
            if single && !self.in_tree[e.index()] {
                // O(1) sensitivity test straight off the maintained MAX
                // labels: a non-tree edge strictly heavier than the path
                // maximum between its endpoints cannot enter the tree
                // under the (weight, id) EdgeKey order, so nothing — not
                // even a width — depends on its weight. (A tie needs the
                // full repair: the incumbent's edge id decides.)
                // Only valid while no earlier step dirtied the labels,
                // hence the `single` guard.
                let ed = self.graph.edge(e);
                let path_max = decode_max(&self.max_s[ed.u.index()], &self.max_s[ed.v.index()]);
                if w > path_max {
                    self.graph.set_weight(e, w);
                    continue;
                }
            }
            self.graph.set_weight(e, w);
            let was_tree = self.in_tree[e.index()];
            let cur_tree = mid_tree.as_ref().unwrap_or(&self.tree);
            match repair_after_weight_change_in(
                &self.graph,
                cur_tree,
                &self.in_tree,
                &mut self.tree_edges,
                e,
            ) {
                Repair::Unchanged => {
                    if was_tree {
                        touched.push(e);
                        mid_valid = false;
                    }
                }
                Repair::Swapped { removed, added } => {
                    self.in_tree[removed.index()] = false;
                    self.in_tree[added.index()] = true;
                    removed_edges.push(removed);
                    added_edges.push(added);
                    mid_tree = Some(
                        RootedTree::from_tree_membership(&self.graph, &self.in_tree, NodeId(0))
                            .expect("repair preserves the spanning tree"),
                    );
                    mid_valid = true;
                }
            }
        }
        let topo_changed = !removed_edges.is_empty();
        if !topo_changed && touched.is_empty() {
            // Only harmless non-tree weights moved: labels and widths
            // depend on tree edges alone.
            return self.finish_record(
                mutation,
                DeltaOutcome::NoOp,
                vec![],
                vec![],
                vec![],
                vec![],
            );
        }

        // Phase 2: rebuild the structural state that actually moved. A
        // swap takes the tree phase 1 already rebuilt (or rebuilds it if
        // a later step re-priced a tree edge) and re-decomposes — the
        // decomposition reads structure only, so weights-only mutations
        // keep `self.sep` untouched and just re-price the cached parent
        // weights in place (membership, depths, and order are all
        // unchanged).
        let new_tree_owned: Option<RootedTree> = if topo_changed {
            if mid_valid {
                mid_tree
            } else {
                Some(
                    RootedTree::from_tree_membership(&self.graph, &self.in_tree, NodeId(0))
                        .expect("repair preserves the spanning tree"),
                )
            }
        } else {
            for &e in &touched {
                let ed = self.graph.edge(e);
                let child = if self.tree.parent(ed.u) == Some(ed.v) {
                    ed.u
                } else {
                    ed.v
                };
                self.tree.set_parent_weight(child, ed.w);
            }
            None
        };
        let new_tree: &RootedTree = new_tree_owned.as_ref().unwrap_or(&self.tree);
        let new_sep_owned = if topo_changed {
            Some(centroid_decomposition(new_tree))
        } else {
            None
        };
        let new_sep: &SeparatorDecomposition = new_sep_owned.as_ref().unwrap_or(&self.sep);

        // Phase 3: the dirty set. A node's label changes only if its
        // separator chain changed, or the tree path from it to some
        // chain separator gained/lost/re-weighted an edge. Paths are
        // unique, so a path differs between the old and new tree only
        // if it crossed a removed edge (old side) or an added edge (new
        // side); same-path value changes need a touched edge on the
        // path. Each test is a subtree-membership parity check against
        // the chain.
        let mut dirty = vec![false; n];
        if topo_changed {
            mark_changed_chains(&self.sep, new_sep, &mut dirty);
            for &e in removed_edges.iter().chain(&touched) {
                if old_in_tree[e.index()] {
                    let memb = subtree_membership(&self.tree, &self.graph, e);
                    mark_crossing(&mut dirty, &self.sep, &memb);
                }
            }
        }
        for &e in added_edges.iter().chain(&touched) {
            if self.in_tree[e.index()] {
                let memb = subtree_membership(new_tree, &self.graph, e);
                mark_crossing(&mut dirty, new_sep, &memb);
            }
        }

        // Phase 4: re-assemble structured labels for dirty nodes only,
        // through the same per-node assemblers the batch builder maps
        // over every node — bit-identity by construction. Small dirty
        // sets use the zero-preprocessing path-walk assemblers (exact
        // same outputs, O(depth) per chain entry); only a dirty set big
        // enough to amortize them pays the O(n log n) oracle builds.
        let ndirty = dirty.iter().filter(|d| **d).count();
        if ndirty.saturating_mul(16) <= n.max(16_384) {
            for (v, _) in dirty.iter().enumerate().filter(|(_, d)| **d) {
                let vv = NodeId(v as u32);
                self.max_s[v] = max_label_of_walk(new_tree, new_sep, vv);
                self.flow_s[v] = flow_label_of_walk(new_tree, new_sep, vv);
                self.dist_s[v] = dist_label_of_walk(new_tree, new_sep, vv);
            }
        } else {
            let kt = KruskalTree::new(new_tree);
            let pmi = PathMaxIndex::new(new_tree);
            let oracle = DistOracle::new(new_tree, new_sep);
            for (v, _) in dirty.iter().enumerate().filter(|(_, d)| **d) {
                let vv = NodeId(v as u32);
                self.max_s[v] = max_label_of(&kt, new_sep, vv);
                self.flow_s[v] = flow_label_of(&pmi, new_sep, vv);
                self.dist_s[v] = dist_label_of(&oracle, new_sep, vv);
            }
        }
        for (v, _) in dirty.iter().enumerate().filter(|(_, d)| **d) {
            self.dist_max[v] = self.dist_s[v].delta.iter().copied().max().unwrap_or(0);
        }

        // Phase 5: scheme widths. `ω` width follows the max tree-edge
        // weight, `δ` width the global max distance field; if either
        // moved, every encoded label is re-encoded (assembly above was
        // still incremental).
        let new_max_weight = new_tree
            .edges()
            .map(|(_, _, w)| w)
            .max()
            .unwrap_or(Weight(1));
        let new_omega_bits = new_max_weight.bit_width();
        // `dist_max` mirrors `max(dist_s[v].delta)` per node (updated in
        // phase 4), so the global maximum is a flat scan, not a walk
        // through every label's field vector.
        let max_delta = self.dist_max.iter().copied().max().unwrap_or(0);
        let new_delta_bits = Weight(max_delta).bit_width();
        let widths_changed = new_omega_bits != self.omega_bits || new_delta_bits != self.delta_bits;
        let outcome = if widths_changed {
            DeltaOutcome::Reencode
        } else if topo_changed {
            DeltaOutcome::TreeSwap
        } else {
            DeltaOutcome::WeightsOnly
        };

        // Phase 6: re-encode and emit only the rows whose bits moved.
        let codec = LabelCodec {
            sep_codec: self.sep_codec,
            omega_bits: new_omega_bits,
        };
        let mut max_d = Vec::new();
        let mut flow_d = Vec::new();
        let mut dist_d = Vec::new();
        // One scratch buffer for all three families: a node whose bits
        // did not move costs a re-encode into reused capacity, never a
        // fresh allocation. Only actually-changed rows own new bytes.
        let mut scratch = BitString::new();
        for (v, &is_dirty) in dirty.iter().enumerate() {
            if !widths_changed && !is_dirty {
                continue;
            }
            let node = v as u32;
            scratch.clear();
            codec.encode_max_into(&self.max_s[v], &mut scratch);
            push_if_changed(&mut self.enc_max, v, &scratch, node, &mut max_d);
            scratch.clear();
            codec.encode_flow_into(&self.flow_s[v], &mut scratch);
            push_if_changed(&mut self.enc_flow, v, &scratch, node, &mut flow_d);
            scratch.clear();
            encode_dist_label_into(
                &self.dist_s[v],
                self.sep_codec,
                new_delta_bits,
                &mut scratch,
            );
            push_if_changed(&mut self.enc_dist, v, &scratch, node, &mut dist_d);
        }

        // Phase 7: tree-row deltas, then commit the new state. A swap
        // can move any parent pointer in the re-hung subtree, so it
        // diffs the full parent table; weights-only mutations can only
        // have re-priced the touched edges' child rows, visited in
        // ascending node order (and deduplicated) so the emitted deltas
        // match the full diff row for row.
        let tree_d: Vec<TreeDelta> = if topo_changed {
            let new_parents = parent_entries(new_tree);
            let d = self
                .parents
                .iter()
                .zip(&new_parents)
                .enumerate()
                .filter(|(_, (a, b))| a != b)
                .map(|(v, (_, b))| TreeDelta {
                    node: v as u32,
                    parent: b.map(|(p, w)| (p.0, w.0)),
                })
                .collect();
            self.parents = new_parents;
            d
        } else {
            let mut children: Vec<NodeId> = touched
                .iter()
                .map(|&e| {
                    let ed = self.graph.edge(e);
                    if new_tree.parent(ed.u) == Some(ed.v) {
                        ed.u
                    } else {
                        ed.v
                    }
                })
                .collect();
            children.sort_unstable();
            children.dedup();
            let mut d = Vec::new();
            for c in children {
                let entry = Some((
                    new_tree.parent(c).expect("touched edges are parent links"),
                    new_tree.parent_weight(c),
                ));
                if self.parents[c.index()] != entry {
                    self.parents[c.index()] = entry;
                    d.push(TreeDelta {
                        node: c.0,
                        parent: entry.map(|(p, w)| (p.0, w.0)),
                    });
                }
            }
            d
        };
        if let Some(t) = new_tree_owned {
            self.tree = t;
        }
        if let Some(s) = new_sep_owned {
            self.sep = s;
        }
        self.max_weight = new_max_weight;
        self.omega_bits = new_omega_bits;
        self.delta_bits = new_delta_bits;
        self.finish_record(mutation, outcome, tree_d, max_d, flow_d, dist_d)
    }

    fn finish_record(
        &mut self,
        mutation: JournalMutation,
        outcome: DeltaOutcome,
        tree: Vec<TreeDelta>,
        max: Vec<LabelDelta>,
        flow: Vec<LabelDelta>,
        dist: Vec<LabelDelta>,
    ) -> DeltaRecord {
        self.seq += 1;
        DeltaRecord {
            seq: self.seq,
            mutation,
            outcome,
            new_max_weight: self.max_weight,
            new_omega_bits: self.omega_bits,
            new_delta_bits: self.delta_bits,
            tree,
            max,
            flow,
            dist,
        }
    }

    /// Full batch (re)build of structured and encoded labels — the
    /// constructor's path, also reusable as a hard reset.
    fn rebuild_all_labels(&mut self) {
        let kt = KruskalTree::new(&self.tree);
        let pmi = PathMaxIndex::new(&self.tree);
        let oracle = DistOracle::new(&self.tree, &self.sep);
        self.max_s = self
            .tree
            .nodes()
            .map(|v| max_label_of(&kt, &self.sep, v))
            .collect();
        self.flow_s = self
            .tree
            .nodes()
            .map(|v| flow_label_of(&pmi, &self.sep, v))
            .collect();
        self.dist_s = self
            .tree
            .nodes()
            .map(|v| dist_label_of(&oracle, &self.sep, v))
            .collect();
        self.dist_max = self
            .dist_s
            .iter()
            .map(|l| l.delta.iter().copied().max().unwrap_or(0))
            .collect();
        self.max_weight = self
            .tree
            .edges()
            .map(|(_, _, w)| w)
            .max()
            .unwrap_or(Weight(1));
        self.omega_bits = self.max_weight.bit_width();
        let max_delta = self
            .dist_s
            .iter()
            .flat_map(|l| l.delta.iter().copied())
            .max()
            .unwrap_or(0);
        self.delta_bits = Weight(max_delta).bit_width();
        let codec = LabelCodec {
            sep_codec: self.sep_codec,
            omega_bits: self.omega_bits,
        };
        self.enc_max = self.max_s.iter().map(|l| codec.encode_max(l)).collect();
        self.enc_flow = self.flow_s.iter().map(|l| codec.encode_flow(l)).collect();
        self.enc_dist = self
            .dist_s
            .iter()
            .map(|l| encode_dist_label(l, self.sep_codec, self.delta_bits))
            .collect();
    }
}

fn parent_entries(tree: &RootedTree) -> Vec<Option<(NodeId, Weight)>> {
    tree.nodes()
        .map(|v| tree.parent(v).map(|p| (p, tree.parent_weight(v))))
        .collect()
}

/// Marks dirty every node whose separator-ancestor chain (including the
/// child ranks its label fields encode) differs between the two
/// decompositions. A node's chain is its own `(sep_parent, child_rank)`
/// step followed by its separator parent's chain, so verdicts are shared
/// along chains: each node is classified once and every climb stops at
/// the first already-classified ancestor — `O(n)` amortized instead of
/// `O(n log n)` independent walks.
fn mark_changed_chains(a: &SeparatorDecomposition, b: &SeparatorDecomposition, dirty: &mut [bool]) {
    const UNKNOWN: u8 = 0;
    const EQUAL: u8 = 1;
    const CHANGED: u8 = 2;
    let mut state = vec![UNKNOWN; dirty.len()];
    let mut chain: Vec<NodeId> = Vec::new();
    for v0 in 0..dirty.len() {
        let mut cur = NodeId(v0 as u32);
        let verdict = loop {
            if state[cur.index()] != UNKNOWN {
                break state[cur.index()];
            }
            chain.push(cur);
            match (a.sep_parent(cur), b.sep_parent(cur)) {
                (None, None) => break EQUAL,
                (Some(pa), Some(pb)) if pa == pb && a.child_rank(cur) == b.child_rank(cur) => {
                    cur = pb;
                }
                _ => break CHANGED,
            }
        };
        for c in chain.drain(..) {
            state[c.index()] = verdict;
        }
        if state[v0] == CHANGED {
            dirty[v0] = true;
        }
    }
}

/// `true` for nodes in the subtree hanging below tree edge `e` (on the
/// child endpoint's side).
fn subtree_membership(tree: &RootedTree, graph: &Graph, e: EdgeId) -> Vec<bool> {
    let ed = graph.edge(e);
    let child = if tree.parent(ed.u) == Some(ed.v) {
        ed.u
    } else {
        debug_assert_eq!(tree.parent(ed.v), Some(ed.u), "edge not in tree");
        ed.v
    };
    let mut inside = vec![false; tree.num_nodes()];
    let mut stack = vec![child];
    inside[child.index()] = true;
    while let Some(v) = stack.pop() {
        for &c in tree.children(v) {
            inside[c.index()] = true;
            stack.push(c);
        }
    }
    inside
}

/// Marks dirty every node whose path to some separator ancestor crosses
/// the membership boundary (`memb[v] != memb[s]` for some chain node
/// `s`) — exactly the nodes with a `ω`/`φ`/`δ` field over that edge.
fn mark_crossing(dirty: &mut [bool], sep: &SeparatorDecomposition, memb: &[bool]) {
    for (v, d) in dirty.iter_mut().enumerate() {
        if *d {
            continue;
        }
        let mv = memb[v];
        let mut cur = sep.sep_parent(NodeId(v as u32));
        while let Some(s) = cur {
            if memb[s.index()] != mv {
                *d = true;
                break;
            }
            cur = sep.sep_parent(s);
        }
    }
}

fn push_if_changed(
    enc: &mut [BitString],
    v: usize,
    new_bits: &BitString,
    node: u32,
    out: &mut Vec<LabelDelta>,
) {
    if enc[v] != *new_bits {
        enc[v] = new_bits.clone();
        out.push(LabelDelta {
            node,
            bits: new_bits.clone(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstv_graph::gen;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The from-scratch pipeline every incremental state must match
    /// byte-for-byte: canonical Kruskal, root 0, batch snapshot build.
    fn reference_snapshot(g: &Graph, sep_codec: SepFieldCodec) -> Snapshot {
        let mst = kruskal(g);
        let tree = RootedTree::from_graph_edges(g, &mst, NodeId(0)).unwrap();
        Snapshot::build(&tree, sep_codec)
    }

    fn canon(mut edges: Vec<EdgeId>) -> Vec<EdgeId> {
        edges.sort_unstable();
        edges
    }

    fn assert_in_sync(marker: &DynMarker, context: &str) {
        assert_eq!(
            canon(marker.tree_edges().to_vec()),
            canon(kruskal(marker.graph())),
            "{context}: maintained tree drifted from canonical Kruskal"
        );
        let incremental = marker.snapshot().to_bytes();
        let rebuilt = reference_snapshot(marker.graph(), SepFieldCodec::EliasGamma).to_bytes();
        assert_eq!(
            incremental, rebuilt,
            "{context}: incremental snapshot not bit-identical to full rebuild"
        );
    }

    fn random_marker(n: usize, extra: usize, max_w: u64, seed: u64) -> (DynMarker, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gen::random_connected(n, extra, gen::WeightDist::Uniform { max: max_w }, &mut rng);
        let marker = DynMarker::new(g, SepFieldCodec::EliasGamma).unwrap();
        (marker, rng)
    }

    fn random_mutation(g: &Graph, max_w: u64, rng: &mut StdRng) -> JournalMutation {
        if rng.gen_range(0..4) == 0 {
            let a = g.edge(EdgeId(rng.gen_range(0..g.num_edges() as u32)));
            let b = g.edge(EdgeId(rng.gen_range(0..g.num_edges() as u32)));
            JournalMutation::SwapWeights {
                u1: a.u.0,
                v1: a.v.0,
                u2: b.u.0,
                v2: b.v.0,
            }
        } else {
            let e = g.edge(EdgeId(rng.gen_range(0..g.num_edges() as u32)));
            JournalMutation::SetWeight {
                u: e.u.0,
                v: e.v.0,
                w: rng.gen_range(1..=max_w),
            }
        }
    }

    #[test]
    fn fresh_marker_matches_batch_build() {
        for seed in 0..4 {
            let (marker, _) = random_marker(48, 70, 900, seed);
            assert_in_sync(&marker, "fresh");
        }
    }

    #[test]
    fn every_mutation_stays_bit_identical_to_rebuild() {
        for seed in 0..6 {
            let max_w = if seed % 2 == 0 { 500 } else { 6 }; // odd seeds: dense ties
            let (mut marker, mut rng) = random_marker(40, 60, max_w, 100 + seed);
            for step in 0..60 {
                let m = random_mutation(marker.graph(), max_w, &mut rng);
                let record = marker.apply(m).unwrap();
                assert_eq!(record.seq, step + 1);
                assert_in_sync(&marker, &format!("seed {seed} step {step} ({m:?})"));
            }
        }
    }

    #[test]
    fn journal_compaction_lands_on_the_live_state() {
        let (mut marker, mut rng) = random_marker(32, 48, 300, 7);
        let base = marker.snapshot();
        let mut journal = mstv_store::Journal::new(&base);
        for _ in 0..40 {
            let m = random_mutation(marker.graph(), 300, &mut rng);
            journal.append(marker.apply(m).unwrap());
        }
        // The journal round-trips and folds back into exactly the
        // marker's current snapshot.
        let journal = mstv_store::Journal::from_bytes(&journal.to_bytes()).unwrap();
        let compacted = journal.compact(&base).unwrap();
        assert_eq!(compacted.to_bytes(), marker.snapshot().to_bytes());
    }

    #[test]
    fn non_tree_raise_is_an_o1_noop() {
        let (mut marker, _) = random_marker(30, 45, 100, 9);
        // Find a non-tree edge and push it strictly above everything.
        let e = marker
            .graph()
            .edge_ids()
            .find(|e| !marker.in_tree[e.index()])
            .expect("45 extra edges guarantee a chord");
        let ed = marker.graph().edge(e);
        let record = marker
            .apply(JournalMutation::SetWeight {
                u: ed.u.0,
                v: ed.v.0,
                w: 10_000,
            })
            .unwrap();
        assert_eq!(record.outcome, DeltaOutcome::NoOp);
        assert!(record.tree.is_empty());
        assert!(record.dirty_nodes().is_empty());
        assert_in_sync(&marker, "non-tree raise");
        // Lowering it below the path maximum must flip the tree.
        let record = marker
            .apply(JournalMutation::SetWeight {
                u: ed.u.0,
                v: ed.v.0,
                w: 1,
            })
            .unwrap();
        assert!(
            matches!(
                record.outcome,
                DeltaOutcome::TreeSwap | DeltaOutcome::Reencode
            ),
            "undercutting the tree path must swap, got {:?}",
            record.outcome
        );
        assert_in_sync(&marker, "non-tree undercut");
    }

    #[test]
    fn width_growth_forces_a_reencode_record() {
        // A tree with NO chords (extra = 0): every edge raise stays in
        // the tree. All weights in 1..=7 (omega_bits = 3); pushing a
        // tree edge to 200 widens ω to 8 bits — every label must be
        // re-encoded and the record must say so.
        let (mut marker, _) = random_marker(24, 0, 7, 11);
        let e = marker.tree_edges()[0];
        let ed = marker.graph().edge(e);
        let record = marker
            .apply(JournalMutation::SetWeight {
                u: ed.u.0,
                v: ed.v.0,
                w: 200,
            })
            .unwrap();
        assert_eq!(record.outcome, DeltaOutcome::Reencode);
        assert_eq!(record.new_omega_bits, 8);
        assert_eq!(record.max.len(), 24, "ω fields widen in every MAX label");
        assert_in_sync(&marker, "width growth");
        // And shrinking back down re-encodes again.
        let record = marker
            .apply(JournalMutation::SetWeight {
                u: ed.u.0,
                v: ed.v.0,
                w: 1,
            })
            .unwrap();
        assert_eq!(record.outcome, DeltaOutcome::Reencode);
        assert_in_sync(&marker, "width shrink");
    }

    #[test]
    fn weights_only_touches_a_strict_subset() {
        // A tree-edge reweight deep in the tree (no width move, no swap)
        // must dirty only the labels whose chain paths cross it.
        let (mut marker, mut rng) = random_marker(64, 96, 1 << 20, 13);
        let mut saw_proper_subset = false;
        for _ in 0..40 {
            let e = marker.tree_edges()[rng.gen_range(0..marker.tree_edges().len())];
            let ed = marker.graph().edge(e);
            let record = marker
                .apply(JournalMutation::SetWeight {
                    u: ed.u.0,
                    v: ed.v.0,
                    w: rng.gen_range((1 << 19)..(1 << 20)),
                })
                .unwrap();
            assert_in_sync(&marker, "weights-only stream");
            if record.outcome == DeltaOutcome::WeightsOnly
                && !record.dirty_nodes().is_empty()
                && record.dirty_nodes().len() < 64
            {
                saw_proper_subset = true;
            }
        }
        assert!(
            saw_proper_subset,
            "expected at least one weights-only mutation relabeling a proper subset"
        );
    }

    #[test]
    fn swap_weights_applies_atomically() {
        let (mut marker, _) = random_marker(20, 30, 400, 17);
        let e1 = marker.tree_edges()[0];
        let e2 = marker
            .graph()
            .edge_ids()
            .find(|e| !marker.in_tree[e.index()])
            .unwrap();
        let (a, b) = (marker.graph().edge(e1), marker.graph().edge(e2));
        let (w1, w2) = (marker.graph().weight(e1), marker.graph().weight(e2));
        marker
            .apply(JournalMutation::SwapWeights {
                u1: a.u.0,
                v1: a.v.0,
                u2: b.u.0,
                v2: b.v.0,
            })
            .unwrap();
        assert_eq!(marker.graph().weight(e1), w2);
        assert_eq!(marker.graph().weight(e2), w1);
        assert_in_sync(&marker, "swap weights");
    }

    #[test]
    fn bad_mutations_leave_state_untouched() {
        let (mut marker, _) = random_marker(16, 20, 100, 21);
        let before = marker.snapshot().to_bytes();
        assert_eq!(
            marker.apply(JournalMutation::SetWeight { u: 0, v: 99, w: 5 }),
            Err(DynError::NodeOutOfRange {
                node: 99,
                nodes: 16
            })
        );
        // A vertex pair with no edge: complete graphs are tiny, so find
        // an absent pair by scanning.
        let missing = (0..16u32)
            .flat_map(|u| (0..16u32).map(move |v| (u, v)))
            .find(|&(u, v)| u != v && marker.graph().edge_between(NodeId(u), NodeId(v)).is_none());
        if let Some((u, v)) = missing {
            assert_eq!(
                marker.apply(JournalMutation::SetWeight { u, v, w: 5 }),
                Err(DynError::UnknownEdge { u, v })
            );
        }
        assert_eq!(marker.seq(), 0);
        assert_eq!(marker.snapshot().to_bytes(), before);
    }

    #[test]
    fn disconnected_graph_is_rejected() {
        let g = Graph::new(3); // no edges at all
        assert_eq!(
            DynMarker::new(g, SepFieldCodec::EliasGamma).err(),
            Some(DynError::Disconnected)
        );
    }
}
