//! The TCP serving tier: connection slots, a bounded worker pool, and
//! the atomic hot snapshot swap.
//!
//! # Architecture
//!
//! The server is built from the workspace's existing concurrency
//! primitives rather than an async runtime:
//!
//! * **[`mstv_trees::KeyedQueue`]** — one key per connection slot. A
//!   connection's requests are posted to its slot, so the per-key FIFO
//!   lease guarantees in-order responses per connection while a bounded
//!   pool of workers serves all connections. `try_post` with the
//!   configured queue depth is the admission-control point: a request
//!   arriving at a full inbox is answered immediately with
//!   [`ErrorCode::Overloaded`] instead of buffering without bound.
//! * **Epoch-tagged serving state** — the active snapshot lives behind
//!   `RwLock<Arc<Serving>>`. A worker clones the `Arc` once per
//!   request, so every answer of a response comes from exactly one
//!   snapshot generation (no torn batches), and
//!   [`ServerHandle::swap`] replaces the `Arc` under a brief write
//!   lock without dropping a single in-flight query. For small changes
//!   a full swap is unnecessary: the admin `ApplyDelta` frame folds a
//!   `MSTVJRNL` journal record into the serving engine *in place*
//!   ([`QueryEngine::apply_delta`]), evicting only the dirty nodes from
//!   the decoded-label caches; the reported epoch advances by the
//!   engine's delta sequence so clients can still attribute every
//!   answer to one exact post-mutation state.
//! * **Interruptible blocking reads** — each connection gets a reader
//!   thread with a short read timeout, re-checking the shutdown flag
//!   between polls, so shutdown never hangs on an idle socket.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mstv_core::ServeMetrics;
use mstv_store::proto::{
    header_payload_len, AdminReply, AdminRequest, ErrorCode, Frame, ProtoError, Request, Response,
    FRAME_HEADER_LEN,
};
use mstv_store::{DeltaRecord, EngineConfig, QueryEngine, Snapshot, SnapshotStore};
use mstv_trees::KeyedQueue;

use crate::io::write_frame;
use crate::ServeError;

/// Sizing knobs for [`ServerHandle::spawn`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads answering queued requests.
    pub workers: usize,
    /// Concurrent connections the server accepts; further connections
    /// are refused (dropped at accept time) until a slot frees up.
    pub max_connections: usize,
    /// Requests one connection may have waiting (beyond the one being
    /// served) before new ones are rejected with
    /// [`ErrorCode::Overloaded`].
    pub queue_depth: usize,
    /// Sizing of the [`QueryEngine`] wrapped around each snapshot —
    /// both the initial one and every hot-swapped replacement.
    pub engine: EngineConfig,
    /// Serve label bytes straight from memory-mapped snapshot files.
    /// Applies to hot swaps by path (`AdminRequest::SwapSnapshot`):
    /// the replacement file is opened with [`Snapshot::open_mmap`]
    /// instead of being decoded into owned buffers. Mapped generations
    /// reject `ApplyDelta` as read-only.
    pub mmap: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            max_connections: 64,
            queue_depth: 64,
            engine: EngineConfig::default(),
            mmap: false,
        }
    }
}

/// One snapshot generation: the engine serving it and its epoch tag.
struct Serving {
    epoch: u64,
    engine: QueryEngine,
}

/// Write side of one connection, shared between its reader thread (for
/// inline overload/admin replies) and the workers (for responses).
struct ConnState {
    writer: Mutex<TcpStream>,
}

/// A request waiting in a connection slot's inbox. It carries its own
/// [`ConnState`] so a slot reused by a later connection can never
/// misroute a response.
struct Job {
    conn: Arc<ConnState>,
    request: Request,
    received: Instant,
}

struct Shared {
    serving: RwLock<Arc<Serving>>,
    queue: KeyedQueue<Job>,
    metrics: Mutex<ServeMetrics>,
    shutdown: AtomicBool,
    config: ServeConfig,
    free_slots: Mutex<Vec<usize>>,
    readers: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    /// The externally visible epoch: the generation's base epoch plus
    /// how many live deltas have been folded into it. Both a hot swap
    /// and an applied delta therefore advance what clients observe, and
    /// [`Shared::swap_in`]'s accounting keeps the sequence monotonic
    /// across mixed histories of swaps and deltas.
    fn epoch(&self) -> u64 {
        let serving = self.current();
        serving.epoch + serving.engine.delta_seq()
    }

    fn current(&self) -> Arc<Serving> {
        Arc::clone(&self.serving.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Builds an engine around `snap` and swaps it in as the new
    /// serving generation. The engine is constructed *outside* the
    /// write lock, so queries keep flowing off the old generation for
    /// the whole build; only the `Arc` replacement itself excludes
    /// readers. The new base epoch starts past everything the old
    /// generation reported (its base plus its applied deltas), so the
    /// epoch a client sees never goes backwards.
    fn swap_in(&self, store: SnapshotStore) -> u64 {
        let engine = QueryEngine::from_store(store, self.config.engine);
        let mut guard = self.serving.write().unwrap_or_else(|e| e.into_inner());
        let epoch = guard.epoch + guard.engine.delta_seq() + 1;
        *guard = Arc::new(Serving { epoch, engine });
        epoch
    }

    fn record_request(&self, queries: u64, errors: u64, latency: Duration) {
        let mut m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        m.queries += queries;
        m.batches += 1;
        m.errors += errors;
        m.add_elapsed(latency);
        m.latency.record_duration(latency);
    }
}

/// A running server and the means to control it.
///
/// Dropping the handle without calling [`ServerHandle::shutdown`]
/// signals the threads to stop but does not wait for them.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// Binds `127.0.0.1:port` (`0` picks an ephemeral port), wraps
    /// `snap` in a [`QueryEngine`] at epoch 1, and starts the accept
    /// loop plus `config.workers` worker threads.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the listener cannot bind.
    pub fn spawn(
        snap: Snapshot,
        config: ServeConfig,
        port: u16,
    ) -> Result<ServerHandle, ServeError> {
        Self::spawn_store(SnapshotStore::Owned(snap), config, port)
    }

    /// Like [`ServerHandle::spawn`], but over any [`SnapshotStore`] —
    /// in particular a memory-mapped one (`Snapshot::open_mmap`), whose
    /// label bytes stay in the page cache instead of owned buffers.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the listener cannot bind.
    pub fn spawn_store(
        store: SnapshotStore,
        config: ServeConfig,
        port: u16,
    ) -> Result<ServerHandle, ServeError> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let max_connections = config.max_connections.max(1);
        let engine = QueryEngine::from_store(store, config.engine);
        let shards = engine.num_shards() as u64;
        let shared = Arc::new(Shared {
            serving: RwLock::new(Arc::new(Serving { epoch: 1, engine })),
            queue: KeyedQueue::new(max_connections),
            metrics: Mutex::new(ServeMetrics {
                shards,
                ..ServeMetrics::new()
            }),
            shutdown: AtomicBool::new(false),
            config,
            free_slots: Mutex::new((0..max_connections).rev().collect()),
            readers: Mutex::new(Vec::new()),
        });
        let mut threads = Vec::with_capacity(workers + 1);
        for _ in 0..workers {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || worker_loop(&shared)));
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || accept_loop(&shared, listener)));
        }
        Ok(ServerHandle {
            shared,
            addr,
            threads,
        })
    }

    /// The bound address (the actual port when spawned with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The current snapshot epoch (1 until the first swap).
    pub fn epoch(&self) -> u64 {
        self.shared.epoch()
    }

    /// Server-level metrics: requests served, per-request latency
    /// percentiles, admission-control rejections (counted as errors).
    pub fn metrics(&self) -> ServeMetrics {
        *self
            .shared
            .metrics
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// Engine-level metrics of the *current* serving generation (a
    /// swap starts a fresh engine block).
    pub fn engine_metrics(&self) -> ServeMetrics {
        self.shared.current().engine.metrics()
    }

    /// Atomically replaces the serving snapshot, returning the new
    /// epoch. In-flight requests finish against whichever generation
    /// they started on; no query is dropped or answered from a mix.
    pub fn swap(&self, snap: Snapshot) -> u64 {
        self.shared.swap_in(SnapshotStore::Owned(snap))
    }

    /// [`ServerHandle::swap`] over any [`SnapshotStore`], e.g. a
    /// memory-mapped replacement generation.
    pub fn swap_store(&self, store: SnapshotStore) -> u64 {
        self.shared.swap_in(store)
    }

    /// Signals every thread to stop, then joins them all: workers, the
    /// accept loop, and per-connection readers.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        self.join_all();
    }

    /// Blocks until the server stops on its own — a client sending the
    /// admin `Shutdown` frame — then joins every thread. The foreground
    /// counterpart of [`ServerHandle::shutdown`]: it waits for the stop
    /// instead of initiating it.
    pub fn wait(mut self) {
        self.join_all();
    }

    fn join_all(&mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        let readers = std::mem::take(
            &mut *self
                .shared
                .readers
                .lock()
                .unwrap_or_else(|e| e.into_inner()),
        );
        for t in readers {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue.close();
    }
}

fn worker_loop(shared: &Shared) {
    while let Some((slot, job)) = shared.queue.next() {
        // One Arc clone pins this request to a single snapshot
        // generation for its whole lifetime — the no-torn-batches
        // guarantee.
        let serving = shared.current();
        let batch = serving.engine.run_batch_response(&job.request.batch);
        // The epoch a response reports is the generation's base epoch
        // plus the delta sequence its batch actually ran at (captured
        // under the engine's state lock) — so a client can map every
        // answer to the exact post-delta snapshot that produced it.
        let response = Frame::Response(Response {
            id: job.request.id,
            server_epoch: serving.epoch + batch.delta_seq,
            results: batch.results,
        });
        // Counters are recorded before the response leaves, so a client
        // that has a response in hand is guaranteed to see its request
        // in the server metrics.
        shared.record_request(
            batch.metrics.queries,
            batch.metrics.errors,
            job.received.elapsed(),
        );
        {
            let mut w = job.conn.writer.lock().unwrap_or_else(|e| e.into_inner());
            // A dead peer is not a server failure: the connection's
            // reader notices EOF and retires the slot.
            let _ = write_frame(&mut w, &response);
        }
        shared.queue.done(slot);
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let slot = shared
                    .free_slots
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .pop();
                match slot {
                    Some(slot) => {
                        let shared2 = Arc::clone(shared);
                        let handle = std::thread::spawn(move || {
                            serve_connection(&shared2, stream, slot);
                            shared2
                                .free_slots
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .push(slot);
                        });
                        shared
                            .readers
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .push(handle);
                    }
                    // Connection table full: refuse at accept time.
                    None => drop(stream),
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// The per-connection reader: parses frames, posts requests to the
/// connection's slot, answers overload and admin inline. Returns (and
/// thereby frees the slot) on EOF, shutdown, or the first unparseable
/// frame — after garbage there is no way to find the next frame
/// boundary, so the connection is dropped rather than guessed at.
fn serve_connection(shared: &Arc<Shared>, mut stream: TcpStream, slot: usize) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let conn = Arc::new(ConnState {
        writer: Mutex::new(writer),
    });
    loop {
        let frame = match read_frame_interruptible(&mut stream, &shared.shutdown) {
            Ok(Some(frame)) => frame,
            Ok(None) | Err(_) => return,
        };
        match frame {
            Frame::Request(request) => {
                let received = Instant::now();
                let job = Job {
                    conn: Arc::clone(&conn),
                    request,
                    received,
                };
                if let Err(job) = shared.queue.try_post(slot, job, shared.config.queue_depth) {
                    // Admission control: answer immediately with a
                    // typed rejection carrying the epoch and the bound
                    // the client ran into. `pending` reports the
                    // configured limit — the inbox held at least that
                    // many requests when this one was refused.
                    let limit = shared.config.queue_depth as u32;
                    let reject = Frame::Response(Response {
                        id: job.request.id,
                        server_epoch: shared.epoch(),
                        results: job
                            .request
                            .batch
                            .iter()
                            .map(|_| {
                                Err(ErrorCode::Overloaded {
                                    pending: limit,
                                    limit,
                                })
                            })
                            .collect(),
                    });
                    let queries = job.request.batch.len() as u64;
                    shared.record_request(queries, queries, received.elapsed());
                    {
                        let mut w = conn.writer.lock().unwrap_or_else(|e| e.into_inner());
                        let _ = write_frame(&mut w, &reject);
                    }
                }
            }
            Frame::Admin(req) => {
                let shutdown_after = matches!(req, AdminRequest::Shutdown);
                let reply = Frame::AdminReply(handle_admin(shared, req));
                {
                    let mut w = conn.writer.lock().unwrap_or_else(|e| e.into_inner());
                    let _ = write_frame(&mut w, &reply);
                }
                if shutdown_after {
                    shared.shutdown.store(true, Ordering::SeqCst);
                    shared.queue.close();
                    return;
                }
            }
            // A client has no business sending server-to-client frames.
            Frame::Response(_) | Frame::AdminReply(_) => return,
        }
    }
}

fn handle_admin(shared: &Shared, req: AdminRequest) -> AdminReply {
    match req {
        AdminRequest::Stats => {
            let serving = shared.current();
            let server = shared
                .metrics
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .to_json();
            AdminReply::Stats {
                json: format!(
                    "{{\"epoch\":{},\"server\":{server},\"engine\":{}}}",
                    serving.epoch,
                    serving.engine.metrics().to_json()
                ),
            }
        }
        AdminRequest::SwapSnapshot { path } => {
            // In mmap mode the replacement generation serves straight
            // from the new file's pages; otherwise it is decoded into
            // owned buffers as before. Validation (CRCs, framing,
            // structure) happens in either open path.
            let store = if shared.config.mmap {
                Snapshot::open_mmap(&path).map(SnapshotStore::Mapped)
            } else {
                Snapshot::read_file(&path).map(SnapshotStore::Owned)
            };
            match store {
                Ok(store) => AdminReply::Ok {
                    epoch: shared.swap_in(store),
                },
                Err(e) => AdminReply::Err {
                    message: format!("swap of {path} failed: {e}"),
                },
            }
        }
        AdminRequest::ApplyDelta { bytes } => {
            // Pin the serving generation for the whole apply: the read
            // lock keeps a concurrent swap from retiring the engine
            // between the parse (which needs its node count) and the
            // fold, so the delta lands on the generation whose epoch
            // the reply reports — or fails typed, changing nothing.
            let guard = shared.serving.read().unwrap_or_else(|e| e.into_inner());
            let n = guard
                .engine
                .with_store(mstv_store::SnapshotStore::num_nodes);
            match DeltaRecord::from_bytes(&bytes, n)
                .and_then(|record| guard.engine.apply_delta(&record))
            {
                Ok(seq) => AdminReply::Ok {
                    epoch: guard.epoch + seq,
                },
                Err(e) => AdminReply::Err {
                    message: format!("delta apply failed: {e}"),
                },
            }
        }
        AdminRequest::Shutdown => AdminReply::Ok {
            epoch: shared.epoch(),
        },
    }
}

/// Reads one frame off a timeout-equipped socket, polling the shutdown
/// flag between timeouts. `Ok(None)` means the connection (or the
/// server) is done: clean EOF at a frame boundary, or shutdown.
fn read_frame_interruptible(
    stream: &mut TcpStream,
    shutdown: &AtomicBool,
) -> Result<Option<Frame>, ServeError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    if !read_exact_interruptible(stream, &mut header, shutdown, true)? {
        return Ok(None);
    }
    let payload_len = header_payload_len(&header)?;
    let mut buf = vec![0u8; FRAME_HEADER_LEN + payload_len];
    buf[..FRAME_HEADER_LEN].copy_from_slice(&header);
    if !read_exact_interruptible(stream, &mut buf[FRAME_HEADER_LEN..], shutdown, false)? {
        return Ok(None);
    }
    Ok(Some(Frame::decode(&buf)?))
}

/// Fills `buf` from the socket, treating timeouts as shutdown polls.
/// Returns `Ok(false)` on shutdown, or on EOF when `at_frame_start`
/// and nothing was consumed; EOF mid-frame is a truncation error.
fn read_exact_interruptible(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
    at_frame_start: bool,
) -> Result<bool, ServeError> {
    let mut filled = 0;
    while filled < buf.len() {
        if shutdown.load(Ordering::Relaxed) {
            return Ok(false);
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if at_frame_start && filled == 0 {
                    return Ok(false);
                }
                return Err(ServeError::Proto(ProtoError::Truncated {
                    context: "connection closed mid-frame",
                }));
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(true)
}
