//! `mstv-serve`: the networked label-serving tier.
//!
//! The paper's observation that two labels answer any `MAX`/`FLOW`/
//! `DIST` query makes the label store a natural network service: tiny
//! requests, tiny answers, no server-side tree walk. This crate puts a
//! TCP front end over `mstv-store`'s [`QueryEngine`] using the
//! versioned wire protocol of [`mstv_store::proto`] — the same
//! `Request`/`Response`/[`ErrorCode`](mstv_store::proto::ErrorCode)
//! vocabulary the in-process `run_batch_response` API speaks, so a
//! call site migrates between local and remote serving by changing
//! transport, not types.
//!
//! * [`ServerHandle`] — spawn, hot-swap snapshots ([`ServerHandle::swap`]),
//!   inspect metrics, shut down. Built on `mstv_trees::KeyedQueue`
//!   (per-connection FIFO over a bounded worker pool) and the
//!   `mstv-net` framing discipline (length-prefixed frames guarded by
//!   the shared `MAX_FRAME_BYTES` bound); see [`server`] for the
//!   architecture notes.
//! * [`Client`] — blocking call-and-wait or pipelined requests, plus
//!   the admin operations (stats, snapshot swap, shutdown).
//!
//! ```
//! use mstv_graph::{gen, NodeId};
//! use mstv_labels::SepFieldCodec;
//! use mstv_serve::{Client, ServeConfig, ServerHandle};
//! use mstv_store::{Query, Snapshot};
//! use mstv_trees::RootedTree;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(3);
//! let g = gen::random_tree(32, gen::WeightDist::Uniform { max: 50 }, &mut rng);
//! let tree = RootedTree::from_graph(&g, NodeId(0)).unwrap();
//! let snap = Snapshot::build(&tree, SepFieldCodec::EliasGamma);
//!
//! let server = ServerHandle::spawn(snap, ServeConfig::default(), 0)?;
//! let mut client = Client::connect(server.addr())?;
//! let resp = client.request(vec![Query::Max { u: NodeId(1), v: NodeId(20) }])?;
//! assert_eq!(resp.server_epoch, 1);
//! assert!(resp.results[0].is_ok());
//! server.shutdown();
//! # Ok::<(), mstv_serve::ServeError>(())
//! ```

mod client;
mod error;
mod io;
pub mod server;

pub use client::Client;
pub use error::ServeError;
pub use server::{ServeConfig, ServerHandle};
