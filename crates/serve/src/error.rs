//! The serving tier's error type.

use std::fmt;
use std::io;

use mstv_store::proto::ProtoError;

/// A failure in the serving tier — connecting, framing, or a
/// server-reported admin error.
#[derive(Debug)]
pub enum ServeError {
    /// A socket operation failed.
    Io(io::Error),
    /// A frame failed to encode or decode.
    Proto(ProtoError),
    /// The peer sent a frame kind that is not valid in this direction
    /// (e.g. a `Request` arriving at a client).
    UnexpectedFrame,
    /// The server reported an admin operation failure.
    Server {
        /// The server's message.
        message: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve i/o error: {e}"),
            ServeError::Proto(e) => write!(f, "serve protocol error: {e}"),
            ServeError::UnexpectedFrame => write!(f, "peer sent a frame invalid in this direction"),
            ServeError::Server { message } => write!(f, "server error: {message}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Proto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<ProtoError> for ServeError {
    fn from(e: ProtoError) -> Self {
        ServeError::Proto(e)
    }
}
