//! Blocking frame I/O shared by client and server.

use std::io::{Read, Write};
use std::net::TcpStream;

use mstv_store::proto::{header_payload_len, Frame, FRAME_HEADER_LEN};

use crate::ServeError;

/// Encodes and writes one frame.
pub(crate) fn write_frame(stream: &mut TcpStream, frame: &Frame) -> Result<(), ServeError> {
    let bytes = frame.encode()?;
    stream.write_all(&bytes)?;
    Ok(())
}

/// Reads one frame, blocking until it is complete: header first, then
/// exactly the payload length the (validated) header claims — the
/// `MAX_FRAME_BYTES` check in [`header_payload_len`] runs before any
/// payload allocation.
pub(crate) fn read_frame(stream: &mut TcpStream) -> Result<Frame, ServeError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    stream.read_exact(&mut header)?;
    let payload_len = header_payload_len(&header)?;
    let mut buf = vec![0u8; FRAME_HEADER_LEN + payload_len];
    buf[..FRAME_HEADER_LEN].copy_from_slice(&header);
    stream.read_exact(&mut buf[FRAME_HEADER_LEN..])?;
    Ok(Frame::decode(&buf)?)
}
