//! A blocking client for the query wire protocol.

use std::net::{TcpStream, ToSocketAddrs};

use mstv_store::proto::{AdminReply, AdminRequest, Frame, Request, Response};
use mstv_store::Query;

use crate::io::{read_frame, write_frame};
use crate::ServeError;

/// One connection to a serving tier.
///
/// [`Client::request`] is the simple call-and-wait path; for pipelining
/// (several requests in flight, matched up by id) use [`Client::send`]
/// and [`Client::recv`] directly.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the connection cannot be established.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream, next_id: 1 })
    }

    /// Sends one request without waiting for its response; returns the
    /// id the response will echo.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] / [`ServeError::Proto`] on a write or
    /// encoding failure.
    pub fn send(&mut self, batch: Vec<Query>) -> Result<u64, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(&mut self.stream, &Frame::Request(Request { id, batch }))?;
        Ok(id)
    }

    /// Receives the next response frame. Responses to pipelined
    /// requests arrive in an order the ids disambiguate (overload
    /// rejections are answered inline by the server's reader and can
    /// overtake queued work).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnexpectedFrame`] if the server sends anything but
    /// a response.
    pub fn recv(&mut self) -> Result<Response, ServeError> {
        match read_frame(&mut self.stream)? {
            Frame::Response(resp) => Ok(resp),
            _ => Err(ServeError::UnexpectedFrame),
        }
    }

    /// Sends `batch` and waits for its response.
    ///
    /// # Errors
    ///
    /// See [`Client::send`] and [`Client::recv`]; additionally
    /// [`ServeError::UnexpectedFrame`] if the response answers a
    /// different id (possible only after mixing `request` with
    /// unmatched [`Client::send`] calls).
    pub fn request(&mut self, batch: Vec<Query>) -> Result<Response, ServeError> {
        let id = self.send(batch)?;
        let resp = self.recv()?;
        if resp.id != id {
            return Err(ServeError::UnexpectedFrame);
        }
        Ok(resp)
    }

    fn admin(&mut self, req: AdminRequest) -> Result<AdminReply, ServeError> {
        write_frame(&mut self.stream, &Frame::Admin(req))?;
        match read_frame(&mut self.stream)? {
            Frame::AdminReply(AdminReply::Err { message }) => Err(ServeError::Server { message }),
            Frame::AdminReply(reply) => Ok(reply),
            _ => Err(ServeError::UnexpectedFrame),
        }
    }

    /// Fetches the server's stats JSON (epoch, server block, engine
    /// block).
    ///
    /// # Errors
    ///
    /// Transport errors, or [`ServeError::UnexpectedFrame`] on a
    /// non-stats reply.
    pub fn stats(&mut self) -> Result<String, ServeError> {
        match self.admin(AdminRequest::Stats)? {
            AdminReply::Stats { json } => Ok(json),
            _ => Err(ServeError::UnexpectedFrame),
        }
    }

    /// Asks the server to load the snapshot at `path` (a path on the
    /// *server's* filesystem) and hot-swap it in; returns the new
    /// epoch.
    ///
    /// # Errors
    ///
    /// [`ServeError::Server`] with the server's message if the swap
    /// fails (unreadable file, corrupt snapshot).
    pub fn swap_snapshot(&mut self, path: &str) -> Result<u64, ServeError> {
        match self.admin(AdminRequest::SwapSnapshot {
            path: path.to_owned(),
        })? {
            AdminReply::Ok { epoch } => Ok(epoch),
            _ => Err(ServeError::UnexpectedFrame),
        }
    }

    /// Sends one serialized journal delta record
    /// (`mstv_store::DeltaRecord::to_bytes`) for the server to fold
    /// into its serving snapshot in place; returns the epoch afterwards
    /// (base epoch plus the new delta sequence).
    ///
    /// # Errors
    ///
    /// [`ServeError::Server`] with the server's message if the record
    /// does not parse, is out of sequence, or does not apply.
    pub fn apply_delta(&mut self, bytes: &[u8]) -> Result<u64, ServeError> {
        match self.admin(AdminRequest::ApplyDelta {
            bytes: bytes.to_vec(),
        })? {
            AdminReply::Ok { epoch } => Ok(epoch),
            _ => Err(ServeError::UnexpectedFrame),
        }
    }

    /// Asks the server to shut down; returns once the server has
    /// acknowledged.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`ServeError::UnexpectedFrame`] on a
    /// non-ok reply.
    pub fn shutdown_server(&mut self) -> Result<(), ServeError> {
        match self.admin(AdminRequest::Shutdown)? {
            AdminReply::Ok { .. } => Ok(()),
            _ => Err(ServeError::UnexpectedFrame),
        }
    }
}
