//! End-to-end tests of the serving tier over real loopback sockets:
//! oracle-checked answers, typed overload rejection, the hot-swap
//! guarantee (no dropped or torn queries), admin operations, and
//! malformed-frame handling.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};

use mstv_graph::{gen, NodeId, Weight};
use mstv_labels::SepFieldCodec;
use mstv_serve::{Client, ServeConfig, ServerHandle};
use mstv_store::proto::{ErrorCode, PROTO_MAGIC, PROTO_VERSION};
use mstv_store::{Answer, EngineConfig, Query, Snapshot};
use mstv_trees::{PathMaxIndex, RootedTree};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A tree plus the oracles every answer is checked against.
struct Oracle {
    idx: PathMaxIndex,
    wdepth: Vec<u64>,
}

impl Oracle {
    fn max(&self, u: NodeId, v: NodeId) -> Weight {
        if u == v {
            Weight::ZERO
        } else {
            self.idx.max_on_path(u, v)
        }
    }

    fn dist(&self, u: NodeId, v: NodeId) -> u64 {
        let x = self.idx.lca(u, v);
        self.wdepth[u.index()] + self.wdepth[v.index()] - 2 * self.wdepth[x.index()]
    }
}

fn tree_of(n: usize, max_w: u64, seed: u64) -> RootedTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = gen::random_tree(n, gen::WeightDist::Uniform { max: max_w }, &mut rng);
    RootedTree::from_graph(&g, NodeId(0)).unwrap()
}

fn oracle_of(tree: &RootedTree) -> Oracle {
    let idx = PathMaxIndex::new(tree);
    let mut wdepth = vec![0u64; tree.num_nodes()];
    for &v in tree.order() {
        if let Some(p) = tree.parent(v) {
            wdepth[v.index()] = wdepth[p.index()] + tree.parent_weight(v).0;
        }
    }
    Oracle { idx, wdepth }
}

fn snapshot_of(tree: &RootedTree) -> Snapshot {
    Snapshot::build(tree, SepFieldCodec::EliasGamma)
}

fn mixed_batch(n: u32, rounds: u32) -> Vec<Query> {
    let mut batch = Vec::new();
    for i in 0..rounds {
        let u = NodeId((i * 17 + 3) % n);
        let v = NodeId((i * 29 + 11) % n);
        batch.push(Query::Max { u, v });
        batch.push(Query::Dist { u, v });
        batch.push(Query::Flow { u, v });
        batch.push(Query::VerifyEdge {
            u,
            v,
            w: Weight(u64::from(i) * 7 % 500),
        });
    }
    batch
}

#[test]
fn roundtrip_matches_in_process_oracle() {
    let tree = tree_of(200, 500, 41);
    let oracle = oracle_of(&tree);
    let server = ServerHandle::spawn(snapshot_of(&tree), ServeConfig::default(), 0).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let batch = mixed_batch(200, 50);
    let resp = client.request(batch.clone()).unwrap();
    assert_eq!(resp.server_epoch, 1);
    assert_eq!(resp.results.len(), batch.len());
    for (q, r) in batch.iter().zip(&resp.results) {
        let a = r.as_ref().expect("in-range queries succeed over the wire");
        match (*q, *a) {
            (Query::Max { u, v }, Answer::Max(w)) => assert_eq!(w, oracle.max(u, v)),
            (Query::Dist { u, v }, Answer::Dist(d)) => assert_eq!(d, oracle.dist(u, v)),
            (Query::Flow { .. }, Answer::Flow(_)) => {}
            (
                Query::VerifyEdge { u, v, w },
                Answer::VerifyEdge {
                    accept,
                    max_on_path,
                },
            ) => {
                assert_eq!(max_on_path, oracle.max(u, v));
                assert_eq!(accept, w >= max_on_path);
            }
            other => panic!("answer kind mismatch: {other:?}"),
        }
    }

    // Errors arrive as the same typed codes the in-process API reports.
    let resp = client
        .request(vec![Query::Max {
            u: NodeId(999),
            v: NodeId(0),
        }])
        .unwrap();
    assert_eq!(
        resp.results[0],
        Err(ErrorCode::UnknownNode {
            node: 999,
            nodes: 200
        })
    );

    let m = server.metrics();
    assert_eq!(m.batches, 2);
    assert_eq!(m.errors, 1);
    assert_eq!(m.latency.count(), 2);
    server.shutdown();
}

#[test]
fn overload_is_a_typed_rejection_not_a_hang() {
    let tree = tree_of(50, 100, 42);
    // queue_depth 0: every request finds a full (zero-capacity) inbox,
    // so the admission-control path answers all of them inline.
    let config = ServeConfig {
        queue_depth: 0,
        ..ServeConfig::default()
    };
    let server = ServerHandle::spawn(snapshot_of(&tree), config, 0).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let resp = client
        .request(vec![
            Query::Max {
                u: NodeId(1),
                v: NodeId(2),
            },
            Query::Dist {
                u: NodeId(3),
                v: NodeId(4),
            },
        ])
        .unwrap();
    assert_eq!(resp.server_epoch, 1);
    for r in &resp.results {
        assert_eq!(
            *r,
            Err(ErrorCode::Overloaded {
                pending: 0,
                limit: 0
            })
        );
    }
    // Rejections are visible in the server metrics as errors.
    let m = server.metrics();
    assert_eq!(m.errors, 2);
    server.shutdown();
}

/// The acceptance-criteria test: hammer the server from concurrent
/// clients while the snapshot is swapped under them. Every response
/// must carry a single epoch whose oracle its answers match exactly —
/// zero errors, zero torn batches, zero drops.
#[test]
fn hot_swap_under_hammer_drops_nothing() {
    let tree_a = tree_of(300, 400, 1);
    let tree_b = tree_of(300, 900, 2);
    let oracles = [oracle_of(&tree_a), oracle_of(&tree_b)];
    let snap_b = snapshot_of(&tree_b);

    let config = ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    };
    let server = ServerHandle::spawn(snapshot_of(&tree_a), config, 0).unwrap();
    let addr = server.addr();
    assert_eq!(server.epoch(), 1);

    let check = |resp: &mstv_store::proto::Response, batch: &[Query]| {
        assert!(
            resp.server_epoch == 1 || resp.server_epoch == 2,
            "epoch {} is neither generation",
            resp.server_epoch
        );
        let oracle = &oracles[(resp.server_epoch - 1) as usize];
        assert_eq!(resp.results.len(), batch.len());
        for (q, r) in batch.iter().zip(&resp.results) {
            let a = r.as_ref().expect("hammer queries never error");
            match (*q, *a) {
                (Query::Max { u, v }, Answer::Max(w)) => assert_eq!(
                    w,
                    oracle.max(u, v),
                    "MAX({u},{v}) wrong for epoch {} — torn or mixed snapshot",
                    resp.server_epoch
                ),
                (Query::Dist { u, v }, Answer::Dist(d)) => assert_eq!(
                    d,
                    oracle.dist(u, v),
                    "DIST({u},{v}) wrong for epoch {}",
                    resp.server_epoch
                ),
                other => panic!("answer kind mismatch: {other:?}"),
            }
        }
    };

    let stop = AtomicBool::new(false);
    let responses: usize = std::thread::scope(|s| {
        let handles: Vec<_> = (0..2u32)
            .map(|c| {
                let (stop, check) = (&stop, &check);
                s.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let mut batch = Vec::new();
                    for i in 0..40u32 {
                        let u = NodeId((i * 13 + c) % 300);
                        let v = NodeId((i * 31 + 2 * c + 1) % 300);
                        batch.push(Query::Max { u, v });
                        batch.push(Query::Dist { u, v });
                    }
                    let mut served = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        let resp = client.request(batch.clone()).unwrap();
                        check(&resp, &batch);
                        served += 1;
                    }
                    // One final request after the swap settled: it must
                    // be answered — the swap may not drop queries — and
                    // from the new generation.
                    let resp = client.request(batch.clone()).unwrap();
                    assert_eq!(resp.server_epoch, 2, "post-swap request on old epoch");
                    check(&resp, &batch);
                    served + 1
                })
            })
            .collect();

        // Let the hammer run, swap mid-flight, let it run some more.
        std::thread::sleep(std::time::Duration::from_millis(150));
        assert_eq!(server.swap(snap_b), 2);
        assert_eq!(server.epoch(), 2);
        std::thread::sleep(std::time::Duration::from_millis(150));
        stop.store(true, Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });

    // Every request that was sent came back answered: the server-side
    // request count matches what the clients got, and none errored.
    let m = server.metrics();
    assert_eq!(
        m.batches, responses as u64,
        "dropped or duplicated requests"
    );
    assert_eq!(m.errors, 0);
    assert!(responses >= 4, "hammer barely ran ({responses} responses)");
    server.shutdown();
}

/// The live-mutation counterpart of the hot-swap hammer: concurrent
/// clients query while an admin connection streams a burst of
/// `mstv-dyn` delta records into the serving engine in place. Every
/// response must carry an epoch whose oracle its answers match exactly
/// — a stale cached decode surviving a delta's invalidation, or a batch
/// torn across a delta, would answer from the wrong generation.
#[test]
fn delta_burst_under_hammer_serves_each_generation_exactly() {
    const N: usize = 200;
    const BURST: usize = 12;
    let mut rng = StdRng::seed_from_u64(0xDE17A);
    let graph = gen::random_connected(N, 320, gen::WeightDist::Uniform { max: 400 }, &mut rng);
    let mut marker = mstv_dyn::DynMarker::new(graph, SepFieldCodec::EliasGamma).unwrap();
    let base = marker.snapshot();

    // Script the burst up front: a parent-edge reweight per step (always
    // a tree edge, so MAX/DIST answers actually move), plus the oracle
    // after each step. Epoch k+1 on the wire serves oracles[k].
    let mut records = Vec::with_capacity(BURST);
    let mut oracles = Vec::with_capacity(BURST + 1);
    oracles.push(oracle_of(marker.tree()));
    use rand::Rng;
    for _ in 0..BURST {
        let v = NodeId(rng.gen_range(1..N as u32));
        let u = marker.tree().parent(v).unwrap();
        let w = rng.gen_range(1..=400u64);
        let record = marker
            .apply(mstv_store::JournalMutation::SetWeight { u: u.0, v: v.0, w })
            .unwrap();
        records.push(record.to_bytes());
        oracles.push(oracle_of(marker.tree()));
    }

    let server = ServerHandle::spawn(base, ServeConfig::default(), 0).unwrap();
    let addr = server.addr();
    assert_eq!(server.epoch(), 1);

    let check = |resp: &mstv_store::proto::Response, batch: &[Query]| {
        let epoch = resp.server_epoch;
        assert!(
            (1..=1 + BURST as u64).contains(&epoch),
            "epoch {epoch} is no generation of the burst"
        );
        let oracle = &oracles[(epoch - 1) as usize];
        assert_eq!(resp.results.len(), batch.len());
        for (q, r) in batch.iter().zip(&resp.results) {
            let a = r.as_ref().expect("hammer queries never error");
            match (*q, *a) {
                (Query::Max { u, v }, Answer::Max(w)) => assert_eq!(
                    w,
                    oracle.max(u, v),
                    "MAX({u},{v}) wrong for epoch {epoch} — stale cache or torn delta"
                ),
                (Query::Dist { u, v }, Answer::Dist(d)) => assert_eq!(
                    d,
                    oracle.dist(u, v),
                    "DIST({u},{v}) wrong for epoch {epoch}"
                ),
                other => panic!("answer kind mismatch: {other:?}"),
            }
        }
    };

    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let (stop, check) = (&stop, &check);
        let handles: Vec<_> = (0..2u32)
            .map(|c| {
                s.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    // Repeat endpoints across requests so the shard
                    // caches are hot when the deltas land.
                    let mut batch = Vec::new();
                    for i in 0..50u32 {
                        let u = NodeId((i * 11 + c) % N as u32);
                        let v = NodeId((i * 23 + 3 * c + 1) % N as u32);
                        batch.push(Query::Max { u, v });
                        batch.push(Query::Dist { u, v });
                    }
                    while !stop.load(Ordering::Relaxed) {
                        let resp = client.request(batch.clone()).unwrap();
                        check(&resp, &batch);
                    }
                    // After the burst settled, answers must come from
                    // the final generation.
                    let resp = client.request(batch.clone()).unwrap();
                    assert_eq!(
                        resp.server_epoch,
                        1 + BURST as u64,
                        "post-burst request served a stale generation"
                    );
                    check(&resp, &batch);
                })
            })
            .collect();

        // Stream the burst from an admin connection while the hammer
        // runs. Each apply must advance the epoch by exactly one.
        let mut admin = Client::connect(addr).unwrap();
        for (k, bytes) in records.iter().enumerate() {
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert_eq!(admin.apply_delta(bytes).unwrap(), 2 + k as u64);
        }
        // Replaying the last record is out of sequence: a typed server
        // error, and the epoch stays put.
        assert!(matches!(
            admin.apply_delta(records.last().unwrap()),
            Err(mstv_serve::ServeError::Server { .. })
        ));
        assert_eq!(server.epoch(), 1 + BURST as u64);

        std::thread::sleep(std::time::Duration::from_millis(50));
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
    });

    // No query errored anywhere in the burst.
    assert_eq!(server.metrics().errors, 0);

    // A hot swap after live deltas keeps the epoch monotonic: the new
    // base starts past base + deltas.
    let swapped = server.swap(marker.snapshot());
    assert_eq!(swapped, 1 + BURST as u64 + 1);
    let mut client = Client::connect(addr).unwrap();
    let resp = client
        .request(vec![Query::Max {
            u: NodeId(3),
            v: NodeId(77),
        }])
        .unwrap();
    assert_eq!(resp.server_epoch, swapped);
    assert_eq!(
        resp.results[0],
        Ok(Answer::Max(oracles[BURST].max(NodeId(3), NodeId(77))))
    );
    server.shutdown();
}

#[test]
fn admin_stats_swap_and_shutdown_over_the_wire() {
    let tree_a = tree_of(80, 200, 5);
    let tree_b = tree_of(80, 800, 6);
    let oracle_b = oracle_of(&tree_b);

    let dir = std::env::temp_dir().join(format!("mstv_serve_swap_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap_path = dir.join("b.snap");
    snapshot_of(&tree_b).write_file(&snap_path).unwrap();

    let server = ServerHandle::spawn(snapshot_of(&tree_a), ServeConfig::default(), 0).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let stats = client.stats().unwrap();
    assert!(stats.starts_with("{\"epoch\":1,"), "stats: {stats}");
    assert!(stats.contains("\"server\":{"));
    assert!(stats.contains("\"engine\":{"));

    // A bad path is a server-reported error, not a dead connection.
    let err = client.swap_snapshot("/nonexistent/path.snap");
    assert!(matches!(err, Err(mstv_serve::ServeError::Server { .. })));

    // The real swap bumps the epoch and serves the new snapshot.
    assert_eq!(
        client.swap_snapshot(snap_path.to_str().unwrap()).unwrap(),
        2
    );
    let (u, v) = (NodeId(7), NodeId(61));
    let resp = client.request(vec![Query::Max { u, v }]).unwrap();
    assert_eq!(resp.server_epoch, 2);
    assert_eq!(resp.results[0], Ok(Answer::Max(oracle_b.max(u, v))));

    client.shutdown_server().unwrap();
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn garbage_and_oversized_frames_close_the_connection() {
    let tree = tree_of(40, 100, 9);
    let server = ServerHandle::spawn(snapshot_of(&tree), ServeConfig::default(), 0).unwrap();

    // A dropped connection surfaces as clean EOF or as a reset,
    // depending on whether unread bytes were still buffered server-side
    // when it closed the socket.
    let assert_closed = |raw: &mut TcpStream| {
        let mut sink = Vec::new();
        match raw.read_to_end(&mut sink) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("server answered {n} bytes instead of dropping the connection"),
        }
    };

    // Garbage magic: the server drops the connection.
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    raw.write_all(b"NOT A PROTOCOL FRAME AT ALL").unwrap();
    assert_closed(&mut raw);

    // A valid header claiming an over-bound payload is refused before
    // any allocation; connection dropped likewise.
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    let mut header = Vec::new();
    header.extend_from_slice(&PROTO_MAGIC);
    header.extend_from_slice(&PROTO_VERSION.to_le_bytes());
    header.push(1);
    header.extend_from_slice(&u32::MAX.to_le_bytes());
    raw.write_all(&header).unwrap();
    assert_closed(&mut raw);

    // The server survives both and keeps serving fresh connections.
    let mut client = Client::connect(server.addr()).unwrap();
    let resp = client
        .request(vec![Query::Max {
            u: NodeId(1),
            v: NodeId(2),
        }])
        .unwrap();
    assert!(resp.results[0].is_ok());
    server.shutdown();
}

#[test]
fn engine_config_flows_through_serve_config() {
    let tree = tree_of(30, 60, 12);
    let config = ServeConfig {
        engine: EngineConfig::builder()
            .shards(2)
            .cache_entries(8)
            .build()
            .unwrap(),
        ..ServeConfig::default()
    };
    let server = ServerHandle::spawn(snapshot_of(&tree), config, 0).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    client
        .request(vec![Query::Max {
            u: NodeId(3),
            v: NodeId(4),
        }])
        .unwrap();
    assert_eq!(server.engine_metrics().shards, 2);
    server.shutdown();
}
