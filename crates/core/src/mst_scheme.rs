//! `π_mst` (Theorem 3.4): the `O(log n log W)`-bit proof labeling scheme
//! for distributed MST verification — the paper's headline result.
//!
//! The label of every node concatenates three sublabels:
//!
//! 1. **span** — the `O(log n)`-bit spanning-tree proof (root identity,
//!    distance, parent identity);
//! 2. **γ** — the node's label under the implicit `MAX` scheme `γ_small`
//!    (perfect separator decomposition, size-ordered subtree codes),
//!    `O(log n log W)` bits;
//! 3. **orient** — the `π_Γ` orientation fields proving that the `γ`
//!    sublabels were produced by *some* scheme in `Γ`, `O(log n)` bits.
//!
//! The verifier at `v` checks the spanning-tree conditions, the `π_Γ`
//! conditions 2–8 over the tree edges, and finally the MST cycle property
//! at every incident edge: `ω(v, u) ≥ MAX(v, u)`, with `MAX` computed by
//! the (scheme-independent) `Γ` decoder from the two `γ` sublabels. The
//! scheme accepts *any* MST, including non-unique ones, because the cycle
//! check uses `≥`.
//!
//! A note on soundness of the `ω` fields: condition 7/8 chains pin every
//! `ω` field *below* a node's own level to the true path maximum. The
//! field at the node's own level (`MAX(v, v) = 0`) is unconstrained — but
//! harmless, because the decoder takes a `max` with the other endpoint's
//! (constrained) field, so deflation cannot hide a violation and inflation
//! can only cause extra rejections of configurations that were not proper
//! MST encodings anyway.

use mstv_graph::{ConfigGraph, EdgeId, NodeId, TreeState, Weight};
use mstv_labels::{try_decode_max, BitString, LabelCodec, MaxLabel, SepFieldCodec};
use mstv_trees::{centroid_decomposition_parallel, par_map_chunks};

use crate::pi_gamma::{check_gamma_conditions, orient_fields_parallel, GammaParts, Orient};
use crate::span::{check_span, span_labels, SpanCodec, SpanLabel};
use crate::{Labeling, LocalView, MarkerError, ParallelConfig, ProofLabelingScheme};

/// The `π_mst` label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MstLabel {
    /// Spanning-tree sublabel.
    pub span: SpanLabel,
    /// `γ_small` sublabel (implicit `MAX` label).
    pub gamma: MaxLabel,
    /// `π_Γ` orientation sublabel.
    pub orient: Vec<Orient>,
}

/// The proof labeling scheme `π_mst` for the predicate *"the subgraph
/// induced by the states is a minimum spanning tree"* over `F(n, W)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct MstScheme;

impl MstScheme {
    /// Creates the scheme.
    pub fn new() -> Self {
        MstScheme
    }

    /// The candidate tree's edges as induced by the states (each non-root
    /// node's parent edge).
    ///
    /// # Panics
    ///
    /// Panics if a state points at a nonexistent port.
    pub fn candidate_edges(cfg: &ConfigGraph<TreeState>) -> Vec<EdgeId> {
        cfg.induced_edges()
    }

    /// The marker with every stage after the MST check fanned across a
    /// scoped thread pool: centroid decomposition, `γ` / orientation
    /// assembly, `MstLabel` construction, and bit encoding.
    ///
    /// The labeling (structured labels *and* encoded bits) is
    /// **byte-identical** to [`ProofLabelingScheme::marker`] for every
    /// thread count; the sequential marker is this method pinned to one
    /// worker.
    ///
    /// # Errors
    ///
    /// Returns [`MarkerError`] when the configuration does not satisfy
    /// the scheme's predicate, exactly as the sequential marker does.
    pub fn marker_parallel(
        &self,
        cfg: &ConfigGraph<TreeState>,
        config: ParallelConfig,
    ) -> Result<Labeling<MstLabel>, MarkerError> {
        let g = cfg.graph();
        let (tree, span) = span_labels(cfg)?;
        // The induced tree must be a *minimum* spanning tree; the offline
        // union-find check is the cache-friendly accept path.
        let tree_edges = cfg.induced_edges();
        match mstv_mst::check_mst_offline(g, &tree_edges) {
            mstv_mst::MstVerdict::Mst => {}
            mstv_mst::MstVerdict::NotSpanningTree => return Err(MarkerError::NotSpanning),
            mstv_mst::MstVerdict::CycleViolation { non_tree_edge, .. } => {
                return Err(MarkerError::NotMinimum {
                    witness_edge: non_tree_edge,
                })
            }
        }
        let sep = centroid_decomposition_parallel(&tree, config);
        let gammas = mstv_labels::max_labels_parallel(&tree, &sep, config);
        let orients = orient_fields_parallel(&tree, &sep, config);
        let threads = config.resolved_threads();
        // Assembly moves the sublabels into place — pure pointer traffic,
        // so it needs no fan-out and stays identical at every thread count.
        let labels: Vec<MstLabel> = span
            .iter()
            .zip(gammas)
            .zip(orients)
            .map(|((&span, gamma), orient)| MstLabel {
                span,
                gamma,
                orient,
            })
            .collect();
        let span_codec = SpanCodec::for_config(cfg);
        // ω fields must span the whole graph's weight range, not just the
        // tree's: the family is F(n, W).
        let gamma_codec = LabelCodec {
            sep_codec: SepFieldCodec::EliasGamma,
            omega_bits: g.max_weight().bit_width(),
        };
        let encoded = par_map_chunks(g.num_nodes(), threads, |lo, hi| {
            (lo..hi)
                .map(|i| encode_mst_label(&labels[i], span_codec, gamma_codec))
                .collect()
        });
        Ok(Labeling::new(labels, encoded))
    }
}

impl ProofLabelingScheme for MstScheme {
    type State = TreeState;
    type Label = MstLabel;

    fn marker(&self, cfg: &ConfigGraph<TreeState>) -> Result<Labeling<MstLabel>, MarkerError> {
        // One worker = the sequential pipeline (no pool is spawned); the
        // parallel marker is byte-identical at any thread count.
        self.marker_parallel(
            cfg,
            ParallelConfig::with_threads(std::num::NonZeroUsize::MIN),
        )
    }

    fn verify(&self, view: &LocalView<'_, TreeState, MstLabel>) -> bool {
        self.diagnose(view).is_none()
    }
}

/// Why a `π_mst` verifier rejected — diagnostics for operators debugging a
/// failing network (the boolean verdict alone says only *that* something
/// is wrong nearby).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MstRejectReason {
    /// The spanning-tree sublabel conditions failed (broken orientation,
    /// distance chain, or root agreement).
    SpanningTree,
    /// The `π_Γ` conditions failed: the `γ` sublabels are not consistent
    /// with any separator decomposition.
    GammaMembership,
    /// The cycle property failed at the given port: that edge is lighter
    /// than the decoded tree-path maximum between its endpoints.
    CycleProperty {
        /// The local port of the offending edge.
        port: mstv_graph::Port,
        /// The edge's weight.
        weight: Weight,
        /// The decoded `MAX` between the endpoints.
        max_on_path: Weight,
    },
    /// A neighbor's `γ` sublabel could not be decoded against this node's
    /// (no shared separator prefix — labels from different schemes).
    UndecodableNeighbor {
        /// The local port of the neighbor.
        port: mstv_graph::Port,
    },
}

impl MstScheme {
    /// Runs the verifier and reports *why* it rejects (`None` = accept).
    /// [`ProofLabelingScheme::verify`] is `diagnose(view).is_none()`.
    pub fn diagnose(&self, view: &LocalView<'_, TreeState, MstLabel>) -> Option<MstRejectReason> {
        // Step 1: the states induce a spanning tree.
        let spans: Vec<&SpanLabel> = view.neighbors.iter().map(|nb| &nb.label.span).collect();
        if !check_span(view.state, &view.label.span, &spans) {
            return Some(MstRejectReason::SpanningTree);
        }
        // Step 2: the γ sublabels come from some γ ∈ Γ (π_Γ conditions).
        let own = GammaParts::new(&view.label.orient, &view.label.gamma);
        let parent = view.state.parent_port.and_then(|p| {
            view.neighbor_at(p).map(|nb| {
                (
                    nb.weight,
                    GammaParts::new(&nb.label.orient, &nb.label.gamma),
                )
            })
        });
        if view.state.parent_port.is_some() && parent.is_none() {
            return Some(MstRejectReason::SpanningTree);
        }
        let children: Vec<(Weight, GammaParts<'_>)> = view
            .neighbors
            .iter()
            .filter(|nb| nb.label.span.parent_id == Some(view.state.id))
            .map(|nb| {
                (
                    nb.weight,
                    GammaParts::new(&nb.label.orient, &nb.label.gamma),
                )
            })
            .collect();
        if !check_gamma_conditions(&own, parent, &children) {
            return Some(MstRejectReason::GammaMembership);
        }
        // Step 3: the cycle property at every incident edge.
        for nb in &view.neighbors {
            match try_decode_max(&view.label.gamma, &nb.label.gamma) {
                Some(max) => {
                    if nb.weight < max {
                        return Some(MstRejectReason::CycleProperty {
                            port: nb.port,
                            weight: nb.weight,
                            max_on_path: max,
                        });
                    }
                }
                None => return Some(MstRejectReason::UndecodableNeighbor { port: nb.port }),
            }
        }
        None
    }
}

/// Serializes a `π_mst` label exactly (spanning sublabel, `γ` sublabel,
/// two bits per orientation field).
pub fn encode_mst_label(
    label: &MstLabel,
    span_codec: SpanCodec,
    gamma_codec: LabelCodec,
) -> BitString {
    let mut out = BitString::new();
    span_codec.encode_into(&mut out, &label.span);
    out.extend_from(&gamma_codec.encode_max(&label.gamma));
    for &o in &label.orient {
        out.push_bits(o.to_bits(), 2);
    }
    out
}

/// Deserializes a `π_mst` label produced by [`encode_mst_label`] with the
/// same codecs. The orientation-field count is not written on the wire —
/// it always equals the `γ` sublabel's separator level, which is how a
/// receiving node (knowing only the instance-wide codec parameters)
/// recovers the full label from bits. Returns `None` when `bits` is
/// truncated, has trailing garbage, or encodes an out-of-range
/// orientation — the wire-level rejects a malformed frame instead of
/// panicking mid-protocol.
pub fn decode_mst_label(
    bits: &BitString,
    span_codec: SpanCodec,
    gamma_codec: LabelCodec,
) -> Option<MstLabel> {
    let mut r = bits.reader();
    let span = span_codec.try_decode_from(&mut r)?;
    let gamma = gamma_codec.try_decode_max_from(&mut r)?;
    let mut orient = Vec::with_capacity(gamma.level());
    for _ in 0..gamma.level() {
        if r.remaining() < 2 {
            return None;
        }
        orient.push(Orient::try_from_bits(r.read_bits(2))?);
    }
    if r.remaining() != 0 {
        return None;
    }
    Some(MstLabel {
        span,
        gamma,
        orient,
    })
}

/// Convenience constructor: builds the MST configuration for a graph by
/// computing an MST and encoding it in the node states (rooted at node 0).
///
/// # Panics
///
/// Panics if the graph is not connected.
pub fn mst_configuration(graph: mstv_graph::Graph) -> ConfigGraph<TreeState> {
    let mst = mstv_mst::kruskal(&graph);
    let root = NodeId(0);
    let states = mstv_graph::tree_states(&graph, &mst, root).expect("kruskal returns a tree");
    ConfigGraph::new(graph, states).expect("one state per node")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstv_graph::{gen, tree_states, Graph, Port};
    use mstv_trees::centroid_decomposition;

    use crate::pi_gamma::orient_fields;
    use mstv_mst::{is_mst, kruskal, UnionFind};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn config(n: usize, extra: usize, max_w: u64, seed: u64) -> ConfigGraph<TreeState> {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gen::random_connected(n, extra, gen::WeightDist::Uniform { max: max_w }, &mut rng);
        mst_configuration(g)
    }

    #[test]
    fn completeness_random_graphs() {
        for (n, extra, w, seed) in [
            (2usize, 0usize, 5u64, 1u64),
            (3, 1, 9, 2),
            (10, 15, 100, 3),
            (60, 120, 1000, 4),
            (150, 300, 1 << 20, 5),
        ] {
            let cfg = config(n, extra, w, seed);
            let scheme = MstScheme::new();
            let labeling = scheme.marker(&cfg).unwrap();
            let verdict = scheme.verify_all(&cfg, &labeling);
            assert!(verdict.accepted(), "n={n} extra={extra}: {verdict}");
        }
    }

    #[test]
    fn completeness_structured_topologies() {
        let mut rng = StdRng::seed_from_u64(6);
        let d = gen::WeightDist::Uniform { max: 64 };
        for g in [
            gen::cycle(9, d, &mut rng),
            gen::complete(12, d, &mut rng),
            gen::grid(5, 6, d, &mut rng),
            gen::star(14, d, &mut rng),
        ] {
            let cfg = mst_configuration(g);
            let scheme = MstScheme::new();
            let labeling = scheme.marker(&cfg).unwrap();
            assert!(scheme.verify_all(&cfg, &labeling).accepted());
        }
    }

    #[test]
    fn accepts_any_mst_under_ties() {
        // The paper stresses the scheme applies to any given MST even when
        // not unique: constant weights make every spanning tree an MST.
        let mut rng = StdRng::seed_from_u64(7);
        for seed in 0..5 {
            let g = gen::random_connected(25, 40, gen::WeightDist::Constant(6), &mut rng);
            // A random (non-Kruskal) spanning tree.
            use rand::seq::SliceRandom;
            let mut ids: Vec<EdgeId> = g.edge_ids().collect();
            ids.shuffle(&mut rng);
            let mut uf = UnionFind::new(g.num_nodes());
            let mut t = Vec::new();
            for e in ids {
                let edge = g.edge(e);
                if uf.union(edge.u.index(), edge.v.index()) {
                    t.push(e);
                }
            }
            let states = tree_states(&g, &t, NodeId(0)).unwrap();
            let cfg = ConfigGraph::new(g, states).unwrap();
            let scheme = MstScheme::new();
            let labeling = scheme.marker(&cfg).unwrap();
            assert!(scheme.verify_all(&cfg, &labeling).accepted(), "seed={seed}");
        }
    }

    #[test]
    fn marker_parallel_is_byte_identical_to_sequential() {
        use std::num::NonZeroUsize;
        for seed in 0..3u64 {
            let g = gen::random_connected(
                90,
                200,
                gen::WeightDist::Uniform { max: 500 },
                &mut StdRng::seed_from_u64(seed),
            );
            let cfg = mst_configuration(g);
            let scheme = MstScheme::new();
            let seq = scheme.marker(&cfg).unwrap();
            for threads in [1usize, 2, 8] {
                let pc = ParallelConfig::with_threads(NonZeroUsize::new(threads).unwrap());
                let par = scheme.marker_parallel(&cfg, pc).unwrap();
                for v in cfg.graph().nodes() {
                    assert_eq!(par.label(v), seq.label(v), "seed={seed} threads={threads}");
                    assert_eq!(
                        par.encoded(v),
                        seq.encoded(v),
                        "encoded bits diverged: seed={seed} threads={threads} v={v}"
                    );
                }
            }
        }
    }

    #[test]
    fn marker_rejects_non_mst() {
        // Force a heavy edge into the tree.
        let mut g = Graph::new(3);
        let e0 = g.add_edge(NodeId(0), NodeId(1), Weight(1)).unwrap();
        let _mid = g.add_edge(NodeId(1), NodeId(2), Weight(2)).unwrap();
        let e2 = g.add_edge(NodeId(2), NodeId(0), Weight(9)).unwrap();
        let states = tree_states(&g, &[e0, e2], NodeId(0)).unwrap();
        let cfg = ConfigGraph::new(g, states).unwrap();
        assert!(MstScheme::new().marker(&cfg).is_err());
    }

    #[test]
    fn stale_proof_after_weight_drop_rejected() {
        // The self-stabilization scenario: a weight changes so the tree is
        // no longer minimum; the old labels must be rejected somewhere.
        let mut rng = StdRng::seed_from_u64(8);
        let mut detected = 0;
        let mut trials = 0;
        while trials < 25 {
            let g = gen::random_connected(20, 30, gen::WeightDist::Uniform { max: 100 }, &mut rng);
            let cfg = mst_configuration(g);
            let scheme = MstScheme::new();
            let labeling = scheme.marker(&cfg).unwrap();
            // Find a non-tree edge and drop its weight below the tree path
            // max so the tree stops being minimum.
            let tree_edges = cfg.induced_edges();
            let mut in_tree = vec![false; cfg.graph().num_edges()];
            for &e in &tree_edges {
                in_tree[e.index()] = true;
            }
            let tree =
                mstv_trees::RootedTree::from_graph_edges(cfg.graph(), &tree_edges, NodeId(0))
                    .unwrap();
            let Some((victim, new_w)) = cfg
                .graph()
                .edges()
                .filter(|(e, _)| !in_tree[e.index()])
                .find_map(|(e, edge)| {
                    let m = tree.max_on_path_naive(edge.u, edge.v);
                    (m > Weight(1)).then(|| (e, Weight(m.0 - 1)))
                })
            else {
                trials += 1;
                continue;
            };
            let mut bad = cfg.clone();
            bad.graph_mut().set_weight(victim, new_w);
            assert!(!is_mst(bad.graph(), &tree_edges));
            let verdict = scheme.verify_all(&bad, &labeling);
            assert!(!verdict.accepted(), "trial {trials}");
            detected += 1;
            trials += 1;
        }
        assert!(detected >= 10, "only {detected} usable trials");
    }

    #[test]
    fn swapped_tree_edge_rejected_even_with_refreshed_internal_labels() {
        // Replace a tree edge with a strictly heavier non-tree edge and let
        // the adversary RE-RUN the honest sub-markers on the new tree
        // (γ labels, orientation, spanning proof all self-consistent).
        // Only the cycle-property check can catch this — and it must.
        let mut rng = StdRng::seed_from_u64(9);
        let mut detected = 0;
        for _ in 0..20 {
            let g = gen::random_connected(18, 30, gen::WeightDist::Uniform { max: 500 }, &mut rng);
            let mst = kruskal(&g);
            let mut in_tree = vec![false; g.num_edges()];
            for &e in &mst {
                in_tree[e.index()] = true;
            }
            let tree = mstv_trees::RootedTree::from_graph_edges(&g, &mst, NodeId(0)).unwrap();
            // Pick a non-tree edge strictly heavier than its path max, and
            // the heaviest path edge to evict.
            let Some((f, evict)) =
                g.edges()
                    .filter(|(e, _)| !in_tree[e.index()])
                    .find_map(|(e, edge)| {
                        let m = tree.max_on_path_naive(edge.u, edge.v);
                        if edge.w <= m {
                            return None;
                        }
                        // Find a path edge with weight == m.
                        let evict = mst.iter().copied().find(|&te| {
                            let td = g.edge(te);
                            g.weight(te) == m && on_path(&tree, edge.u, edge.v, td.u, td.v)
                        })?;
                        Some((e, evict))
                    })
            else {
                continue;
            };
            let swapped: Vec<EdgeId> = mst
                .iter()
                .copied()
                .filter(|&e| e != evict)
                .chain([f])
                .collect();
            assert!(g.is_spanning_tree(&swapped));
            assert!(!is_mst(&g, &swapped));
            let states = tree_states(&g, &swapped, NodeId(0)).unwrap();
            let bad_cfg = ConfigGraph::new(g.clone(), states).unwrap();
            // Adversary runs the full honest marker pipeline on the bad
            // tree (bypassing the marker's own MST check).
            let (bad_tree, span) = span_labels(&bad_cfg).unwrap();
            let sep = centroid_decomposition(&bad_tree);
            let gammas = mstv_labels::max_labels(&bad_tree, &sep);
            let orients = orient_fields(&bad_tree, &sep);
            let labels: Vec<MstLabel> = (0..g.num_nodes())
                .map(|i| MstLabel {
                    span: span[i],
                    gamma: gammas[i].clone(),
                    orient: orients[i].clone(),
                })
                .collect();
            let labeling = Labeling::from_labels(labels);
            let scheme = MstScheme::new();
            let verdict = scheme.verify_all(&bad_cfg, &labeling);
            assert!(!verdict.accepted());
            detected += 1;
        }
        assert!(detected >= 5, "only {detected} usable trials");
    }

    fn on_path(tree: &mstv_trees::RootedTree, u: NodeId, v: NodeId, a: NodeId, b: NodeId) -> bool {
        let (mut x, mut y) = (u, v);
        while x != y {
            let step = if tree.depth(x) >= tree.depth(y) {
                let p = tree.parent(x).unwrap();
                let s = (x, p);
                x = p;
                s
            } else {
                let p = tree.parent(y).unwrap();
                let s = (y, p);
                y = p;
                s
            };
            if (step.0 == a && step.1 == b) || (step.0 == b && step.1 == a) {
                return true;
            }
        }
        false
    }

    #[test]
    fn random_label_corruptions_rejected() {
        let cfg = config(30, 60, 1000, 10);
        let scheme = MstScheme::new();
        let honest = scheme.marker(&cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut rejected = 0;
        let trials = 60;
        for _ in 0..trials {
            let mut labeling = Labeling::from_labels(honest.labels().to_vec());
            let v = NodeId(rng.gen_range(0..30));
            let label = labeling.label_mut(v);
            match rng.gen_range(0..4) {
                0 => label.span.dist = label.span.dist.wrapping_add(1),
                1 => label.span.root_id ^= 1,
                2 => {
                    let k = rng.gen_range(0..label.gamma.omega.len());
                    label.gamma.omega[k] = Weight(label.gamma.omega[k].0 ^ 0x55);
                }
                _ => {
                    let k = rng.gen_range(0..label.gamma.sep.len());
                    label.gamma.sep[k] ^= 1;
                }
            }
            if *labeling.label(v) == *honest.label(v) {
                continue; // corruption was a no-op
            }
            if !scheme.verify_all(&cfg, &labeling).accepted() {
                rejected += 1;
            }
        }
        // Not every corruption is harmful (e.g. inflating an unconstrained
        // ω field), but the overwhelming majority must be caught.
        assert!(
            rejected >= trials * 8 / 10,
            "only {rejected}/{trials} rejected"
        );
    }

    #[test]
    fn label_size_scales_as_log_n_log_w() {
        // Generous constant-factor check of Theorem 3.4.
        for (n, w, seed) in [(64usize, 255u64, 12u64), (256, 1 << 16, 13), (1024, 3, 14)] {
            let cfg = config(n, 2 * n, w, seed);
            let labeling = MstScheme::new().marker(&cfg).unwrap();
            let log_n = (usize::BITS - n.leading_zeros()) as usize;
            let log_w = Weight(w).bit_width() as usize;
            let bound = 8 * log_n * log_w + 16 * log_n + 64;
            assert!(
                labeling.max_label_bits() <= bound,
                "n={n} W={w}: {} > {bound}",
                labeling.max_label_bits()
            );
        }
    }

    #[test]
    fn diagnose_names_the_failing_check() {
        use crate::local_view;
        let cfg = config(25, 40, 500, 77);
        let scheme = MstScheme::new();
        let honest = scheme.marker(&cfg).unwrap();
        // Clean network: no reason anywhere.
        for v in cfg.graph().nodes() {
            let view = local_view(&cfg, honest.labels(), v);
            assert_eq!(scheme.diagnose(&view), None);
        }
        // Weight drop → some node reports a cycle-property violation.
        let mut rng = StdRng::seed_from_u64(78);
        let mut bad = cfg.clone();
        crate::faults::break_minimality(&mut bad, &mut rng).unwrap();
        let mut cycle_hits = 0;
        for v in bad.graph().nodes() {
            let view = local_view(&bad, honest.labels(), v);
            if let Some(MstRejectReason::CycleProperty {
                weight,
                max_on_path,
                ..
            }) = scheme.diagnose(&view)
            {
                assert!(weight < max_on_path);
                cycle_hits += 1;
            }
        }
        assert!(cycle_hits >= 1);
        // Distance corruption → spanning-tree reason.
        let mut labeling = Labeling::from_labels(honest.labels().to_vec());
        labeling.label_mut(NodeId(5)).span.dist += 7;
        let view = local_view(&cfg, labeling.labels(), NodeId(5));
        assert_eq!(scheme.diagnose(&view), Some(MstRejectReason::SpanningTree));
        // Orientation corruption → γ-membership reason at the victim.
        let mut labeling = Labeling::from_labels(honest.labels().to_vec());
        let victim = NodeId(9);
        let lv = labeling.label(victim).orient.len();
        labeling.label_mut(victim).orient[lv - 1] = Orient::Up;
        let view = local_view(&cfg, labeling.labels(), victim);
        assert_eq!(
            scheme.diagnose(&view),
            Some(MstRejectReason::GammaMembership)
        );
        // Foreign γ label (no shared prefix) → undecodable neighbor.
        let mut labeling = Labeling::from_labels(honest.labels().to_vec());
        labeling.label_mut(victim).gamma.sep[0] = 999;
        let neighbor = cfg.graph().neighbors(victim).next().unwrap().node;
        let view = local_view(&cfg, labeling.labels(), neighbor);
        assert!(matches!(
            scheme.diagnose(&view),
            Some(MstRejectReason::UndecodableNeighbor { .. } | MstRejectReason::GammaMembership)
        ));
    }

    #[test]
    fn wire_roundtrip_decodes_every_label() {
        let cfg = config(40, 80, 1000, 21);
        let scheme = MstScheme::new();
        let labeling = scheme.marker(&cfg).unwrap();
        let span_codec = SpanCodec::for_config(&cfg);
        let gamma_codec = LabelCodec {
            sep_codec: SepFieldCodec::EliasGamma,
            omega_bits: cfg.graph().max_weight().bit_width(),
        };
        for v in cfg.graph().nodes() {
            let decoded = decode_mst_label(labeling.encoded(v), span_codec, gamma_codec)
                .expect("honest encoding decodes");
            assert_eq!(&decoded, labeling.label(v), "v={v}");
        }
        // Truncated frames are rejected, not panicked on.
        let enc = labeling.encoded(NodeId(0));
        let mut cut = BitString::new();
        for i in 0..enc.len() - 3 {
            cut.push(enc.get(i));
        }
        assert_eq!(decode_mst_label(&cut, span_codec, gamma_codec), None);
        assert_eq!(
            decode_mst_label(&BitString::new(), span_codec, gamma_codec),
            None
        );
    }

    #[test]
    fn two_node_graph() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId(0), NodeId(1), Weight(5)).unwrap();
        let cfg = mst_configuration(g);
        let scheme = MstScheme::new();
        let labeling = scheme.marker(&cfg).unwrap();
        assert!(scheme.verify_all(&cfg, &labeling).accepted());
    }

    #[test]
    fn candidate_edges_match_induced() {
        let cfg = config(12, 8, 50, 15);
        let edges = MstScheme::candidate_edges(&cfg);
        assert_eq!(edges, cfg.induced_edges());
        assert_eq!(edges.len(), 11);
        let _ = Port(0);
    }
}
