//! `π_flow` and the **maximum** spanning tree scheme — the `FLOW`-side
//! dual of the paper's construction.
//!
//! A spanning tree is *maximum* iff every graph edge `(u, v)` weighs at
//! most `FLOW(u, v)`, the lightest tree edge on the path between its
//! endpoints — the mirror image of the MST cycle property. The whole
//! `π_mst` pipeline dualizes field by field: `γ_small`'s `ω` maxima
//! become `φ` minima (the `FLOW` labels of `mstv-labels`, which the paper
//! introduces as a byproduct), and the Lemma 3.3 conditions 7/8
//! accumulate with `min` instead of `max`. As with `MAX`, the self-level
//! field needs no pinning: the decoder's `min` means an adversary can
//! only *deflate* it, which makes verification stricter, never laxer.

use mstv_graph::{ConfigGraph, NodeId, TreeState, Weight};
use mstv_labels::{BitString, FlowLabel, LabelCodec, SepFieldCodec};
use mstv_trees::{centroid_decomposition_parallel, par_map_chunks};

use crate::pi_gamma::{orient_fields_parallel, Orient};
use crate::span::{check_span, span_labels, SpanCodec, SpanLabel};
use crate::{Labeling, LocalView, MarkerError, ParallelConfig, ProofLabelingScheme};

/// The pieces of a `π_flow` label the condition checker consumes.
#[derive(Debug, Clone, Copy)]
pub struct FlowParts<'a> {
    /// Orientation fields (length `l`).
    pub orient: &'a [Orient],
    /// Separator-path fields of the claimed `FLOW` label.
    pub sep: &'a [u64],
    /// `φ` fields of the claimed `FLOW` label.
    pub phi: &'a [Weight],
}

impl<'a> FlowParts<'a> {
    /// Assembles parts from an orientation sublabel and a `FLOW` label.
    pub fn new(orient: &'a [Orient], label: &'a FlowLabel) -> Self {
        FlowParts {
            orient,
            sep: &label.sep,
            phi: &label.phi,
        }
    }

    fn level(&self) -> usize {
        self.orient.len()
    }
}

/// The min-accumulating analogue of `π_Γ`'s conditions 2–8.
pub fn check_flow_conditions(
    own: &FlowParts<'_>,
    parent: Option<(Weight, FlowParts<'_>)>,
    children: &[(Weight, FlowParts<'_>)],
) -> bool {
    let l = own.level();
    if l == 0 || own.sep.len() != l || own.phi.len() != l {
        return false;
    }
    if own.orient[l - 1] != Orient::SelfSep {
        return false;
    }
    if own.orient[..l - 1].contains(&Orient::SelfSep) {
        return false;
    }
    let tree_neighbors = parent.iter().chain(children.iter());
    for (_, w) in tree_neighbors.clone() {
        let min = l.min(w.sep.len());
        if own.sep[..min] != w.sep[..min] {
            return false;
        }
    }
    for k in 0..l {
        match own.orient[k] {
            Orient::Up => {
                let Some((pw, p)) = parent else {
                    return false;
                };
                if p.level() <= k || p.phi.len() <= k {
                    return false;
                }
                if children
                    .iter()
                    .any(|(_, c)| c.level() > k && c.orient[k] != Orient::Up)
                {
                    return false;
                }
                let expected = if p.orient[k] == Orient::SelfSep {
                    pw
                } else {
                    p.phi[k].min(pw)
                };
                if own.phi[k] != expected {
                    return false;
                }
            }
            Orient::Down => {
                if let Some((_, p)) = parent {
                    if p.level() > k && p.orient[k] != Orient::Down {
                        return false;
                    }
                }
                let mut unique: Option<(Weight, &FlowParts<'_>)> = None;
                for (cw, c) in children {
                    if c.level() > k && matches!(c.orient[k], Orient::Down | Orient::SelfSep) {
                        if unique.is_some() {
                            return false;
                        }
                        unique = Some((*cw, c));
                    }
                }
                let Some((cw, c)) = unique else {
                    return false;
                };
                if c.phi.len() <= k {
                    return false;
                }
                let expected = if c.orient[k] == Orient::SelfSep {
                    cw
                } else {
                    c.phi[k].min(cw)
                };
                if own.phi[k] != expected {
                    return false;
                }
            }
            Orient::SelfSep => {
                if tree_neighbors.clone().any(|(_, w)| w.level() == l) {
                    return false;
                }
                if let Some((_, p)) = parent {
                    if p.level() > k && p.orient[k] != Orient::Down {
                        return false;
                    }
                }
                if children
                    .iter()
                    .any(|(_, c)| c.level() > k && c.orient[k] != Orient::Up)
                {
                    return false;
                }
                let mut seen = Vec::new();
                for (_, w) in tree_neighbors.clone() {
                    if w.sep.len() > l {
                        if seen.contains(&w.sep[l]) {
                            return false;
                        }
                        seen.push(w.sep[l]);
                    }
                }
            }
        }
    }
    true
}

/// Non-panicking `FLOW` decoder for adversarial labels.
fn try_decode_flow(a: &FlowLabel, b: &FlowLabel) -> Option<Weight> {
    let cp = a
        .sep
        .iter()
        .zip(b.sep.iter())
        .take_while(|(x, y)| x == y)
        .count();
    if cp == 0 || cp > a.phi.len() || cp > b.phi.len() {
        return None;
    }
    Some(a.phi[cp - 1].min(b.phi[cp - 1]))
}

/// The `π_maxst` label: spanning sublabel, `FLOW` sublabel, orientation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaxStLabel {
    /// Spanning-tree sublabel.
    pub span: SpanLabel,
    /// `FLOW` sublabel (implicit path-minimum label).
    pub flow: FlowLabel,
    /// `π_flow` orientation sublabel.
    pub orient: Vec<Orient>,
}

/// The proof labeling scheme for *"the induced tree is a **maximum**
/// spanning tree"* — `π_mst` with every `max` dualized to `min`.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxStScheme;

impl MaxStScheme {
    /// Creates the scheme.
    pub fn new() -> Self {
        MaxStScheme
    }

    /// The marker with every stage after the maximality check fanned
    /// across a scoped thread pool; byte-identical to the sequential
    /// [`ProofLabelingScheme::marker`] for every thread count (which is
    /// this method pinned to one worker).
    ///
    /// # Errors
    ///
    /// Returns [`MarkerError`] when the configuration does not satisfy
    /// the scheme's predicate, exactly as the sequential marker does.
    pub fn marker_parallel(
        &self,
        cfg: &ConfigGraph<TreeState>,
        config: ParallelConfig,
    ) -> Result<Labeling<MaxStLabel>, MarkerError> {
        let g = cfg.graph();
        let (tree, span) = span_labels(cfg)?;
        let tree_edges = cfg.induced_edges();
        if !mstv_mst::is_max_spanning_tree(g, &tree_edges) {
            return Err(MarkerError::bad_states(
                "candidate tree is not a maximum spanning tree",
            ));
        }
        let sep = centroid_decomposition_parallel(&tree, config);
        let flows = mstv_labels::flow_labels_parallel(&tree, &sep, config);
        let orients = orient_fields_parallel(&tree, &sep, config);
        let threads = config.resolved_threads();
        let labels: Vec<MaxStLabel> = par_map_chunks(g.num_nodes(), threads, |lo, hi| {
            (lo..hi)
                .map(|i| MaxStLabel {
                    span: span[i],
                    flow: flows[i].clone(),
                    orient: orients[i].clone(),
                })
                .collect()
        });
        let span_codec = SpanCodec::for_config(cfg);
        let codec = LabelCodec {
            sep_codec: SepFieldCodec::EliasGamma,
            omega_bits: g.max_weight().bit_width(),
        };
        let encoded = par_map_chunks(g.num_nodes(), threads, |lo, hi| {
            (lo..hi)
                .map(|i| {
                    let l = &labels[i];
                    let mut out = BitString::new();
                    span_codec.encode_into(&mut out, &l.span);
                    out.extend_from(&codec.encode_flow(&l.flow));
                    for &o in &l.orient {
                        out.push_bits(o.to_bits(), 2);
                    }
                    out
                })
                .collect()
        });
        Ok(Labeling::new(labels, encoded))
    }
}

impl ProofLabelingScheme for MaxStScheme {
    type State = TreeState;
    type Label = MaxStLabel;

    fn marker(&self, cfg: &ConfigGraph<TreeState>) -> Result<Labeling<MaxStLabel>, MarkerError> {
        // One worker = the sequential pipeline; see `marker_parallel`.
        self.marker_parallel(
            cfg,
            ParallelConfig::with_threads(std::num::NonZeroUsize::MIN),
        )
    }

    fn verify(&self, view: &LocalView<'_, TreeState, MaxStLabel>) -> bool {
        let spans: Vec<&SpanLabel> = view.neighbors.iter().map(|nb| &nb.label.span).collect();
        if !check_span(view.state, &view.label.span, &spans) {
            return false;
        }
        let own = FlowParts::new(&view.label.orient, &view.label.flow);
        let parent = view.state.parent_port.and_then(|p| {
            view.neighbor_at(p)
                .map(|nb| (nb.weight, FlowParts::new(&nb.label.orient, &nb.label.flow)))
        });
        if view.state.parent_port.is_some() && parent.is_none() {
            return false;
        }
        let children: Vec<(Weight, FlowParts<'_>)> = view
            .neighbors
            .iter()
            .filter(|nb| nb.label.span.parent_id == Some(view.state.id))
            .map(|nb| (nb.weight, FlowParts::new(&nb.label.orient, &nb.label.flow)))
            .collect();
        if !check_flow_conditions(&own, parent, &children) {
            return false;
        }
        // The dual cycle property: ω(v, u) ≤ FLOW(v, u) at every edge.
        view.neighbors.iter().all(
            |nb| match try_decode_flow(&view.label.flow, &nb.label.flow) {
                Some(flow) => nb.weight <= flow,
                None => false,
            },
        )
    }
}

/// Convenience constructor: computes a maximum spanning tree of `graph`
/// and installs it in node states (rooted at node 0).
///
/// # Panics
///
/// Panics if the graph is not connected.
pub fn max_st_configuration(graph: mstv_graph::Graph) -> ConfigGraph<TreeState> {
    let t = mstv_mst::maximum_spanning_tree(&graph);
    let states = mstv_graph::tree_states(&graph, &t, NodeId(0)).expect("spanning tree");
    ConfigGraph::new(graph, states).expect("one state per node")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstv_graph::{gen, tree_states, Graph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn completeness() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [2usize, 10, 60, 150] {
            let g =
                gen::random_connected(n, 2 * n, gen::WeightDist::Uniform { max: 500 }, &mut rng);
            let cfg = max_st_configuration(g);
            let scheme = MaxStScheme::new();
            let labeling = scheme.marker(&cfg).unwrap();
            assert!(scheme.verify_all(&cfg, &labeling).accepted(), "n={n}");
        }
    }

    #[test]
    fn marker_parallel_is_byte_identical_to_sequential() {
        use std::num::NonZeroUsize;
        let mut rng = StdRng::seed_from_u64(7);
        let g = gen::random_connected(80, 180, gen::WeightDist::Uniform { max: 400 }, &mut rng);
        let cfg = max_st_configuration(g);
        let scheme = MaxStScheme::new();
        let seq = scheme.marker(&cfg).unwrap();
        for threads in [1usize, 2, 8] {
            let pc = ParallelConfig::with_threads(NonZeroUsize::new(threads).unwrap());
            let par = scheme.marker_parallel(&cfg, pc).unwrap();
            for v in cfg.graph().nodes() {
                assert_eq!(par.label(v), seq.label(v), "threads={threads} v={v}");
                assert_eq!(par.encoded(v), seq.encoded(v), "threads={threads} v={v}");
            }
        }
    }

    #[test]
    fn marker_rejects_minimum_tree() {
        // Force the light tree: it is not maximum.
        let mut g = Graph::new(3);
        let e0 = g.add_edge(NodeId(0), NodeId(1), Weight(1)).unwrap();
        let e1 = g.add_edge(NodeId(1), NodeId(2), Weight(2)).unwrap();
        let _chord = g.add_edge(NodeId(2), NodeId(0), Weight(9)).unwrap();
        let states = tree_states(&g, &[e0, e1], NodeId(0)).unwrap();
        let cfg = ConfigGraph::new(g, states).unwrap();
        assert!(MaxStScheme::new().marker(&cfg).is_err());
    }

    #[test]
    fn stale_labels_rejected_after_weight_raise() {
        // Raising a non-tree edge above its path minimum voids maximality.
        let mut detected = 0;
        for seed in 0..15 {
            let g = gen::random_connected(
                20,
                30,
                gen::WeightDist::Uniform { max: 100 },
                &mut StdRng::seed_from_u64(seed),
            );
            let cfg = max_st_configuration(g);
            let scheme = MaxStScheme::new();
            let labeling = scheme.marker(&cfg).unwrap();
            let tree_edges = cfg.induced_edges();
            let mut in_tree = vec![false; cfg.graph().num_edges()];
            for &e in &tree_edges {
                in_tree[e.index()] = true;
            }
            let Some(victim) = cfg
                .graph()
                .edges()
                .find(|(e, _)| !in_tree[e.index()])
                .map(|(e, _)| e)
            else {
                continue;
            };
            let mut bad = cfg.clone();
            let w = bad.graph().max_weight();
            bad.graph_mut().set_weight(victim, Weight(w.0 + 10));
            assert!(!mstv_mst::is_max_spanning_tree(bad.graph(), &tree_edges));
            assert!(
                !scheme.verify_all(&bad, &labeling).accepted(),
                "seed={seed}"
            );
            detected += 1;
        }
        assert!(detected >= 10);
    }

    #[test]
    fn accepts_any_max_st_under_ties() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = gen::random_connected(20, 30, gen::WeightDist::Constant(5), &mut rng);
        // Under constant weights every spanning tree is maximum.
        let cfg = crate::mst_configuration(g);
        let scheme = MaxStScheme::new();
        let labeling = scheme.marker(&cfg).unwrap();
        assert!(scheme.verify_all(&cfg, &labeling).accepted());
    }

    #[test]
    fn min_and_max_schemes_disagree_on_nontrivial_graphs() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = gen::random_connected(15, 25, gen::WeightDist::Uniform { max: 1000 }, &mut rng);
        let min_cfg = crate::mst_configuration(g.clone());
        let max_cfg = max_st_configuration(g);
        // The minimum tree fails the maximum marker and vice versa
        // (weights are almost surely distinct at W = 1000).
        assert!(MaxStScheme::new().marker(&min_cfg).is_err());
        assert!(crate::MstScheme::new().marker(&max_cfg).is_err());
    }
}
