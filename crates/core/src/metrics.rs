//! Dependency-free instrumentation for verification sessions.
//!
//! [`SessionMetrics`] is a plain struct of counters and
//! power-of-two-bucket [`Histogram`]s — no atomics, no external crates —
//! that [`crate::session::VerifySession`] fills in as it runs. The
//! one-line [`SessionMetrics::to_json`] export is what the `mstv session`
//! subcommand prints, so experiment scripts can scrape machine-readable
//! numbers without a serde dependency.

use std::fmt;
use std::ops::AddAssign;
use std::time::Duration;

/// Communication costs of one protocol run: point-to-point messages
/// offered to the links, total payload bits carried by them, and rounds
/// (synchronous rounds, or retransmission generations on a lossy
/// runtime).
///
/// This is the single cost vocabulary shared by the synchronous simulator
/// (`mstv-distsim`), the asynchronous engines, and the concurrent runtime
/// (`mstv-net`), so experiment tables stay comparable across execution
/// models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MessageCost {
    /// Point-to-point messages sent (one per edge direction per send,
    /// retransmissions included).
    pub msgs: u64,
    /// Total payload bits carried by those messages.
    pub bits: u128,
    /// Rounds elapsed: lockstep rounds in the synchronous model,
    /// `1 + retransmission generations` on a lossy runtime.
    pub rounds: u64,
}

impl MessageCost {
    /// The zero cost.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `count` messages of `bits_each` bits within the current
    /// round structure.
    pub fn add_messages(&mut self, count: u64, bits_each: u64) {
        self.msgs += count;
        self.bits += u128::from(count) * u128::from(bits_each);
    }

    /// One-line JSON export, for scripts and the `mstv net` subcommand.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"msgs\":{},\"bits\":{},\"rounds\":{}}}",
            self.msgs, self.bits, self.rounds
        )
    }
}

impl AddAssign for MessageCost {
    fn add_assign(&mut self, rhs: MessageCost) {
        self.msgs += rhs.msgs;
        self.bits += rhs.bits;
        self.rounds += rhs.rounds;
    }
}

impl fmt::Display for MessageCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rounds, {} messages, {} bits",
            self.rounds, self.msgs, self.bits
        )
    }
}

/// A histogram over `u64` samples with power-of-two buckets.
///
/// Bucket `i` counts samples whose value has bit length `i` — bucket 0
/// holds the value 0, bucket 1 the value 1, bucket 2 values 2–3, bucket 3
/// values 4–7, and so on. Exact min/max/sum/count are tracked alongside,
/// so coarse buckets never lose the headline statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = (64 - value.leading_zeros()) as usize;
        self.buckets[bucket] += 1;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The non-empty buckets as `(bucket_lower_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| {
                let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
                (lo, c)
            })
            .collect()
    }

    /// Renders the histogram as a JSON object fragment.
    fn json_into(&self, out: &mut String) {
        use fmt::Write;
        let _ = write!(
            out,
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.2},\"buckets\":[",
            self.count,
            self.sum,
            self.min,
            self.max,
            self.mean()
        );
        for (i, (lo, c)) in self.nonzero_buckets().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{lo},{c}]");
        }
        out.push_str("]}");
    }
}

/// A log-linear histogram over `u64` nanosecond samples, sized for
/// latency tails.
///
/// Each power-of-two octave is split into 8 linear sub-buckets, so any
/// recorded value lands in a bucket whose width is at most 1/8th of the
/// value (≤ 12.5% relative error) — fine enough for honest p50/p99/p999
/// quantiles without storing raw samples. The struct is a plain `Copy`
/// array (no atomics, no allocation), matching the rest of this module:
/// shards fill private blocks and merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; Self::BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; Self::BUCKETS],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }
}

impl LatencyHistogram {
    /// 8 sub-buckets per octave; values below 8 get exact buckets, so
    /// the top octave (bit length 64) ends at index `8 + 61 * 8 - 1`.
    const BUCKETS: usize = 8 + 61 * 8;

    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// The bucket index for `value`: exact below 8, log-linear above.
    fn bucket_of(value: u64) -> usize {
        if value < 8 {
            return value as usize;
        }
        let g = 63 - value.leading_zeros() as usize; // g ≥ 3
        8 * (g - 2) + ((value >> (g - 3)) & 7) as usize
    }

    /// The inclusive value range `[lo, hi]` a bucket covers.
    fn bucket_range(bucket: usize) -> (u64, u64) {
        if bucket < 8 {
            return (bucket as u64, bucket as u64);
        }
        let g = bucket / 8 + 2;
        let sub = (bucket % 8) as u64;
        let lo = (1u64 << g) + (sub << (g - 3));
        (lo, lo + (1u64 << (g - 3)) - 1)
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Records a [`Duration`] in nanoseconds.
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_nanos() as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The quantile `q ∈ [0, 1]`: the midpoint of the bucket holding
    /// the `⌈q · count⌉`-th smallest sample, clamped to the exact
    /// min/max so the tails never overshoot reality. Returns 0 when
    /// empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (lo, hi) = Self::bucket_range(i);
                return lo.midpoint(hi).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median latency.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 99th-percentile latency.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// 99.9th-percentile latency.
    pub fn p999(&self) -> u64 {
        self.percentile(0.999)
    }

    /// Adds another histogram's samples into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Counters and gauges for a label-serving tier: cache behaviour and
/// throughput of a batch query engine answering `MAX`/`FLOW`/`VerifyEdge`
/// from stored labels (the `mstv-store` query engine, `mstv query --bench`,
/// and the `exp_serve` experiment all report through this block).
///
/// Like [`SessionMetrics`], this is a plain struct — no atomics — that the
/// engine's shards fill in privately and merge; the one-line
/// [`ServeMetrics::to_json`] export keeps experiment scripts serde-free.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeMetrics {
    /// Queries answered (errors included — every routed query counts).
    pub queries: u64,
    /// Batches executed.
    pub batches: u64,
    /// Worker shards that served the queries.
    pub shards: u64,
    /// Decoded-label cache hits across all shards.
    pub cache_hits: u64,
    /// Decoded-label cache misses (each miss decodes a label from bits).
    pub cache_misses: u64,
    /// Queries that surfaced a typed error instead of an answer.
    pub errors: u64,
    /// Wall-clock spent inside batch execution, in nanoseconds.
    pub elapsed_nanos: u64,
    /// Per-batch (engine) or per-request (server) latency samples, in
    /// nanoseconds; the source of the exported p50/p99/p999 gauges.
    pub latency: LatencyHistogram,
}

impl ServeMetrics {
    /// A zeroed metrics block.
    pub fn new() -> Self {
        ServeMetrics::default()
    }

    /// Merges another block into this one (shard counters are summed for
    /// hits/misses/queries; `shards` takes the maximum so merging per-shard
    /// blocks reports the fleet width, not the sum of ones).
    pub fn merge(&mut self, other: &ServeMetrics) {
        self.queries += other.queries;
        self.batches += other.batches;
        self.shards = self.shards.max(other.shards);
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.errors += other.errors;
        self.elapsed_nanos += other.elapsed_nanos;
        self.latency.merge(&other.latency);
    }

    /// Adds `d` to the batch-execution wall-clock.
    pub fn add_elapsed(&mut self, d: Duration) {
        self.elapsed_nanos = self.elapsed_nanos.saturating_add(d.as_nanos() as u64);
    }

    /// Cache hit ratio in `[0, 1]` (0.0 before any lookup).
    ///
    /// Always finite: a zero-lookup block (empty batch, cache disabled)
    /// reports 0.0 rather than dividing by zero, so the JSON export can
    /// never contain `NaN`.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            finite_or_zero(self.cache_hits as f64 / total as f64)
        }
    }

    /// The throughput gauge: queries per second of batch wall-clock
    /// (0.0 before any timed batch runs).
    ///
    /// Always finite: a zero-elapsed block (a batch so small the clock
    /// did not tick, or no batch at all) reports 0.0 rather than `inf`,
    /// so tiny `mstv query --bench` runs emit valid JSON.
    pub fn queries_per_sec(&self) -> f64 {
        if self.elapsed_nanos == 0 {
            0.0
        } else {
            finite_or_zero(self.queries as f64 / (self.elapsed_nanos as f64 / 1e9))
        }
    }

    /// One-line JSON export of every counter plus the derived gauges.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"queries\":{},\"batches\":{},\"shards\":{},\"cache_hits\":{},\
             \"cache_misses\":{},\"hit_ratio\":{:.4},\"errors\":{},\
             \"elapsed_nanos\":{},\"queries_per_sec\":{:.1},\
             \"lat_p50_nanos\":{},\"lat_p99_nanos\":{},\"lat_p999_nanos\":{},\
             \"lat_max_nanos\":{}}}",
            self.queries,
            self.batches,
            self.shards,
            self.cache_hits,
            self.cache_misses,
            self.hit_ratio(),
            self.errors,
            self.elapsed_nanos,
            self.queries_per_sec(),
            self.latency.p50(),
            self.latency.p99(),
            self.latency.p999(),
            self.latency.max(),
        )
    }
}

/// Clamps a derived gauge to 0.0 if a pathological counter combination
/// ever produced a non-finite value — the JSON line must stay parseable
/// no matter what the counters hold.
fn finite_or_zero(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        0.0
    }
}

impl AddAssign for ServeMetrics {
    fn add_assign(&mut self, rhs: ServeMetrics) {
        self.merge(&rhs);
    }
}

impl fmt::Display for ServeMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} queries in {} batches over {} shards: {:.0} q/s, {:.1}% cache hits, {} errors",
            self.queries,
            self.batches,
            self.shards,
            self.queries_per_sec(),
            self.hit_ratio() * 100.0,
            self.errors,
        )
    }
}

/// Counters and timings collected over the lifetime of one
/// [`crate::session::VerifySession`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SessionMetrics {
    /// Full (every-node) verification passes run.
    pub full_runs: u64,
    /// Incremental (dirty-frontier-only) verification passes run.
    pub incremental_runs: u64,
    /// Mutations applied through the session.
    pub mutations_applied: u64,
    /// Individual node verifications executed, across all passes.
    pub nodes_verified: u64,
    /// Node verifications *skipped* by incremental passes — the cache-hit
    /// count: clean nodes whose cached verdict was reused.
    pub nodes_skipped: u64,
    /// Size of the dirty frontier at each incremental pass.
    pub frontier_sizes: Histogram,
    /// Wall-clock spent inside the marker, in nanoseconds.
    pub marker_nanos: u64,
    /// Wall-clock spent inside verifiers, in nanoseconds.
    pub verify_nanos: u64,
    /// Largest encoded label, in bits (0 if the labeling carries no
    /// encodings).
    pub max_label_bits: u64,
    /// Total encoded label volume across all nodes, in bits.
    pub total_label_bits: u64,
}

impl SessionMetrics {
    /// A zeroed metrics block.
    pub fn new() -> Self {
        SessionMetrics::default()
    }

    /// Adds `d` to the marker wall-clock.
    pub fn add_marker_time(&mut self, d: Duration) {
        self.marker_nanos = self.marker_nanos.saturating_add(d.as_nanos() as u64);
    }

    /// Adds `d` to the verifier wall-clock.
    pub fn add_verify_time(&mut self, d: Duration) {
        self.verify_nanos = self.verify_nanos.saturating_add(d.as_nanos() as u64);
    }

    /// The fraction of node verifications avoided by incremental reuse,
    /// in `[0, 1]` (0.0 before any pass runs).
    pub fn skip_ratio(&self) -> f64 {
        let total = self.nodes_verified + self.nodes_skipped;
        if total == 0 {
            0.0
        } else {
            self.nodes_skipped as f64 / total as f64
        }
    }

    /// One-line JSON export of every field, for scripts and logs.
    pub fn to_json(&self) -> String {
        use fmt::Write;
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"full_runs\":{},\"incremental_runs\":{},\"mutations_applied\":{},\
             \"nodes_verified\":{},\"nodes_skipped\":{},\"skip_ratio\":{:.4},\
             \"marker_nanos\":{},\"verify_nanos\":{},\
             \"max_label_bits\":{},\"total_label_bits\":{},\"frontier_sizes\":",
            self.full_runs,
            self.incremental_runs,
            self.mutations_applied,
            self.nodes_verified,
            self.nodes_skipped,
            self.skip_ratio(),
            self.marker_nanos,
            self.verify_nanos,
            self.max_label_bits,
            self.total_label_bits,
        );
        self.frontier_sizes.json_into(&mut out);
        out.push('}');
        out
    }
}

impl fmt::Display for SessionMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} full + {} incremental runs, {} mutations, {} verified / {} skipped ({:.1}% reuse), frontier mean {:.1}",
            self.full_runs,
            self.incremental_runs,
            self.mutations_applied,
            self.nodes_verified,
            self.nodes_skipped,
            self.skip_ratio() * 100.0,
            self.frontier_sizes.mean(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_cost_accumulates_and_exports() {
        let mut c = MessageCost::new();
        c.add_messages(10, 32);
        c.rounds += 1;
        assert_eq!(c.msgs, 10);
        assert_eq!(c.bits, 320);
        let mut t = MessageCost {
            msgs: 5,
            bits: 50,
            rounds: 2,
        };
        t += c;
        assert_eq!(t.msgs, 15);
        assert_eq!(t.bits, 370);
        assert_eq!(t.rounds, 3);
        assert_eq!(t.to_string(), "3 rounds, 15 messages, 370 bits");
        assert_eq!(t.to_json(), "{\"msgs\":15,\"bits\":370,\"rounds\":3}");
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 1025);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 128.125).abs() < 1e-9);
        // 0 → bucket lo 0; 1 → lo 1; 2,3 → lo 2; 4,7 → lo 4; 8 → lo 8;
        // 1000 → lo 512.
        assert_eq!(
            h.nonzero_buckets(),
            vec![(0, 1), (1, 1), (2, 2), (4, 2), (8, 1), (512, 1)]
        );
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn json_is_one_line_and_balanced() {
        let mut m = SessionMetrics::new();
        m.full_runs = 1;
        m.incremental_runs = 3;
        m.mutations_applied = 3;
        m.nodes_verified = 10;
        m.nodes_skipped = 90;
        m.frontier_sizes.record(2);
        m.frontier_sizes.record(5);
        m.add_marker_time(Duration::from_micros(15));
        let json = m.to_json();
        assert!(!json.contains('\n'));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in {json}"
        );
        assert!(json.contains("\"full_runs\":1"));
        assert!(json.contains("\"nodes_skipped\":90"));
        assert!(json.contains("\"skip_ratio\":0.9000"));
        assert!(json.contains("\"marker_nanos\":15000"));
        assert!(json.contains("\"frontier_sizes\":{\"count\":2"));
    }

    #[test]
    fn serve_metrics_gauges_and_json() {
        let mut m = ServeMetrics::new();
        m.queries = 1000;
        m.batches = 2;
        m.shards = 4;
        m.cache_hits = 750;
        m.cache_misses = 250;
        m.add_elapsed(Duration::from_millis(500));
        assert!((m.hit_ratio() - 0.75).abs() < 1e-9);
        assert!((m.queries_per_sec() - 2000.0).abs() < 1e-6);
        let json = m.to_json();
        assert!(!json.contains('\n'));
        assert!(json.contains("\"queries\":1000"));
        assert!(json.contains("\"hit_ratio\":0.7500"));
        assert!(json.contains("\"queries_per_sec\":2000.0"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // Merging per-shard blocks: counts sum, shard width is a max.
        let mut total = ServeMetrics {
            shards: 4,
            ..ServeMetrics::new()
        };
        total += m;
        total.merge(&m);
        assert_eq!(total.queries, 2000);
        assert_eq!(total.shards, 4);
        assert_eq!(total.cache_hits, 1500);
        assert!(total.to_string().contains("q/s"));
    }

    #[test]
    fn serve_metrics_zero_safe() {
        let m = ServeMetrics::new();
        assert_eq!(m.hit_ratio(), 0.0);
        assert_eq!(m.queries_per_sec(), 0.0);
        assert!(m.to_json().contains("\"queries_per_sec\":0.0"));
    }

    #[test]
    fn serve_metrics_empty_batch_emits_finite_json() {
        // The empty-batch path: a batch was routed but carried no queries
        // and completed before the clock ticked. Zero lookups and zero
        // elapsed must not reach the gauges as divisions by zero.
        let m = ServeMetrics {
            queries: 0,
            batches: 1,
            shards: 4,
            cache_hits: 0,
            cache_misses: 0,
            errors: 0,
            elapsed_nanos: 0,
            latency: LatencyHistogram::new(),
        };
        assert_eq!(m.hit_ratio(), 0.0);
        assert_eq!(m.queries_per_sec(), 0.0);
        let json = m.to_json();
        assert!(
            !json.contains("NaN") && !json.contains("inf"),
            "non-finite gauge leaked into JSON: {json}"
        );
        assert!(json.contains("\"hit_ratio\":0.0000"));
        assert!(json.contains("\"queries_per_sec\":0.0"));
        // Queries recorded against a zero-elapsed clock (batch faster than
        // the timer resolution) must also stay finite.
        let fast = ServeMetrics {
            queries: 17,
            batches: 1,
            elapsed_nanos: 0,
            ..ServeMetrics::new()
        };
        assert_eq!(fast.queries_per_sec(), 0.0);
        assert!(!fast.to_json().contains("inf"));
    }

    #[test]
    fn latency_histogram_buckets_are_tight() {
        // Exact buckets below 8, ≤ 12.5% relative error above.
        for v in [0u64, 1, 7, 8, 9, 100, 1_000, 123_456, u64::MAX / 2] {
            let mut h = LatencyHistogram::new();
            h.record(v);
            let p = h.percentile(0.5);
            let err = p.abs_diff(v) as f64;
            assert!(
                err <= (v as f64 / 8.0).max(0.0) + 1.0,
                "p50 of a single sample {v} came back as {p}"
            );
        }
    }

    #[test]
    fn latency_histogram_percentiles_and_merge() {
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        let p50 = h.p50();
        let p99 = h.p99();
        let p999 = h.p999();
        // True quantiles are 500 / 990 / 1000; buckets are ≤ 12.5% wide.
        assert!((430..=570).contains(&p50), "p50 = {p50}");
        assert!((860..=1000).contains(&p99), "p99 = {p99}");
        assert!(p999 >= p99 && p999 <= 1000, "p999 = {p999}");
        assert!(h.percentile(1.0) <= 1000);

        let mut lo = LatencyHistogram::new();
        lo.record(10);
        let mut hi = LatencyHistogram::new();
        hi.record(1_000_000);
        lo.merge(&hi);
        assert_eq!(lo.count(), 2);
        assert_eq!(lo.min(), 10);
        assert_eq!(lo.max(), 1_000_000);
        // Merging into an empty block copies the other side verbatim.
        let mut empty = LatencyHistogram::new();
        empty.merge(&lo);
        assert_eq!(empty, lo);
        // Empty percentile is 0, not a panic.
        assert_eq!(LatencyHistogram::new().p999(), 0);
    }

    #[test]
    fn serve_metrics_json_carries_latency_gauges() {
        let mut m = ServeMetrics::new();
        m.latency.record(1_000);
        m.latency.record(2_000);
        let json = m.to_json();
        assert!(json.contains("\"lat_p50_nanos\":"));
        assert!(json.contains("\"lat_p999_nanos\":"));
        assert!(json.contains("\"lat_max_nanos\":2000"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn skip_ratio_handles_zero() {
        assert_eq!(SessionMetrics::new().skip_ratio(), 0.0);
    }

    #[test]
    fn display_is_humane() {
        let mut m = SessionMetrics::new();
        m.full_runs = 1;
        m.nodes_verified = 4;
        let s = m.to_string();
        assert!(s.contains("1 full"));
        assert!(s.contains("4 verified"));
    }
}
