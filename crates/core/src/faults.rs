//! Fault injection for soundness and self-stabilization experiments.
//!
//! Self-stabilizing systems verify their output repeatedly precisely
//! because faults corrupt states, weights, and labels arbitrarily. These
//! helpers produce the corruption classes the experiments (and the
//! distributed simulator's stabilization loop) throw at the schemes.
//!
//! Injection is split into *planning* and *application*: the `plan_*`
//! functions inspect a configuration and return a [`Fault`] without
//! touching it, and [`Fault::to_mutation`] turns the plan into a
//! [`Mutation`] replayable through a [`VerifySession`] — so corruption
//! loops pay only the dirty-frontier re-verification cost. The classic
//! one-shot helpers ([`break_minimality`] and friends) remain as
//! plan-then-apply wrappers over a bare [`ConfigGraph`].

use mstv_graph::{ConfigGraph, EdgeId, GraphError, NodeId, ParentPointer, Port, TreeState, Weight};
use mstv_trees::RootedTree;
use rand::Rng;

use crate::framework::{ProofLabelingScheme, Verdict};
use crate::session::{Mutation, VerifySession};

/// A record of an injected (or planned) fault, for reporting and replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// An edge's weight was changed.
    WeightChange {
        /// The edge.
        edge: EdgeId,
        /// Weight before.
        old: Weight,
        /// Weight after.
        new: Weight,
    },
    /// A node's parent pointer was retargeted to a different port.
    PointerRetarget {
        /// The node.
        node: NodeId,
        /// Pointer before.
        old: Option<Port>,
        /// Pointer after.
        new: Option<Port>,
    },
}

impl Fault {
    /// The session [`Mutation`] applying this fault.
    pub fn to_mutation<L>(&self) -> Mutation<L> {
        match *self {
            Fault::WeightChange { edge, new, .. } => Mutation::SetWeight { edge, weight: new },
            Fault::PointerRetarget { node, new, .. } => Mutation::FlipTreeEdge {
                node,
                new_parent: new,
            },
        }
    }

    /// The session [`Mutation`] undoing this fault.
    pub fn to_undo_mutation<L>(&self) -> Mutation<L> {
        match *self {
            Fault::WeightChange { edge, old, .. } => Mutation::SetWeight { edge, weight: old },
            Fault::PointerRetarget { node, old, .. } => Mutation::FlipTreeEdge {
                node,
                new_parent: old,
            },
        }
    }

    /// Applies this fault to a bare configuration.
    ///
    /// # Panics
    ///
    /// Panics if the fault references an edge, node, or port the
    /// configuration does not have.
    pub fn apply_to<S: ParentPointer>(&self, cfg: &mut ConfigGraph<S>) {
        match *self {
            Fault::WeightChange { edge, new, .. } => cfg.set_weight(edge, new),
            Fault::PointerRetarget { node, new, .. } => cfg
                .retarget_parent(node, new)
                .unwrap_or_else(|e| panic!("fault replays on its own configuration: {e}")),
        }
    }
}

/// Applies a planned fault through a session, re-verifying only the
/// fault's dirty frontier, and returns the updated verdict.
///
/// # Errors
///
/// Returns a [`GraphError`] (leaving the session unchanged) when the
/// fault does not fit the session's configuration.
pub fn inject<P>(session: &mut VerifySession<P>, fault: &Fault) -> Result<Verdict, GraphError>
where
    P: ProofLabelingScheme,
    P::State: ParentPointer,
    P::Label: Clone,
{
    session.apply(fault.to_mutation())
}

/// Plans dropping the weight of a random non-tree edge *below* the
/// heaviest tree edge on its cycle, so the candidate tree stops being
/// minimum while remaining a spanning tree. Returns `None` when no
/// non-tree edge can be made violating (e.g. all path maxima are
/// already 1). The configuration is not modified.
pub fn plan_break_minimality<R: Rng>(cfg: &ConfigGraph<TreeState>, rng: &mut R) -> Option<Fault> {
    let tree_edges = cfg.induced_edges();
    if !cfg.graph().is_spanning_tree(&tree_edges) {
        return None;
    }
    let root = cfg
        .graph()
        .nodes()
        .find(|&v| cfg.state(v).parent_port.is_none())?;
    let tree = RootedTree::from_graph_edges(cfg.graph(), &tree_edges, root).ok()?;
    let mut in_tree = vec![false; cfg.graph().num_edges()];
    for &e in &tree_edges {
        in_tree[e.index()] = true;
    }
    let candidates: Vec<(EdgeId, Weight)> = cfg
        .graph()
        .edges()
        .filter(|(e, _)| !in_tree[e.index()])
        .filter_map(|(e, edge)| {
            let m = tree.max_on_path_naive(edge.u, edge.v);
            (m > Weight(1)).then_some((e, Weight(m.0 - 1)))
        })
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let (edge, new) = candidates[rng.gen_range(0..candidates.len())];
    Some(Fault::WeightChange {
        edge,
        old: cfg.graph().weight(edge),
        new,
    })
}

/// Plans retargeting a random non-root node's parent pointer to a
/// uniformly random other port (possibly creating a cycle or
/// disconnection). Returns `None` for graphs where no node has an
/// alternative port. The configuration is not modified.
pub fn plan_retarget_pointer<R: Rng>(cfg: &ConfigGraph<TreeState>, rng: &mut R) -> Option<Fault> {
    let n = cfg.graph().num_nodes();
    let candidates: Vec<NodeId> = (0..n)
        .map(NodeId::from_index)
        .filter(|&v| cfg.state(v).parent_port.is_some() && cfg.graph().degree(v) >= 2)
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let node = candidates[rng.gen_range(0..candidates.len())];
    let old = cfg.state(node).parent_port;
    let deg = cfg.graph().degree(node) as u32;
    let mut new = Port(rng.gen_range(0..deg));
    if Some(new) == old {
        new = Port((new.0 + 1) % deg);
    }
    Some(Fault::PointerRetarget {
        node,
        old,
        new: Some(new),
    })
}

/// Plans raising a random *tree* edge's weight above the lightest
/// non-tree edge covering it, another way to void minimality. Returns
/// `None` when no tree edge is covered by any non-tree edge. The
/// configuration is not modified.
pub fn plan_raise_tree_weight<R: Rng>(cfg: &ConfigGraph<TreeState>, rng: &mut R) -> Option<Fault> {
    let tree_edges = cfg.induced_edges();
    if !cfg.graph().is_spanning_tree(&tree_edges) {
        return None;
    }
    let root = cfg
        .graph()
        .nodes()
        .find(|&v| cfg.state(v).parent_port.is_none())?;
    let tree = RootedTree::from_graph_edges(cfg.graph(), &tree_edges, root).ok()?;
    let mut in_tree = vec![false; cfg.graph().num_edges()];
    for &e in &tree_edges {
        in_tree[e.index()] = true;
    }
    // For each tree edge, find a covering non-tree edge.
    let mut covered: Vec<(EdgeId, Weight)> = Vec::new();
    for (f, fe) in cfg.graph().edges() {
        if in_tree[f.index()] {
            continue;
        }
        // Walk the path; every tree edge on it is covered by f.
        let (mut x, mut y) = (fe.u, fe.v);
        while x != y {
            let step = if tree.depth(x) >= tree.depth(y) {
                let p = tree.parent(x).expect("non-root");
                let e = cfg.graph().edge_between(x, p).expect("tree edge");
                x = p;
                e
            } else {
                let p = tree.parent(y).expect("non-root");
                let e = cfg.graph().edge_between(y, p).expect("tree edge");
                y = p;
                e
            };
            covered.push((step, Weight(fe.w.0 + 1)));
        }
    }
    if covered.is_empty() {
        return None;
    }
    let (edge, new) = covered[rng.gen_range(0..covered.len())];
    Some(Fault::WeightChange {
        edge,
        old: cfg.graph().weight(edge),
        new,
    })
}

/// Plans and applies [`plan_break_minimality`] on a bare configuration.
pub fn break_minimality<R: Rng>(cfg: &mut ConfigGraph<TreeState>, rng: &mut R) -> Option<Fault> {
    let fault = plan_break_minimality(cfg, rng)?;
    fault.apply_to(cfg);
    Some(fault)
}

/// Plans and applies [`plan_retarget_pointer`] on a bare configuration.
pub fn retarget_pointer<R: Rng>(cfg: &mut ConfigGraph<TreeState>, rng: &mut R) -> Option<Fault> {
    let fault = plan_retarget_pointer(cfg, rng)?;
    fault.apply_to(cfg);
    Some(fault)
}

/// Plans and applies [`plan_raise_tree_weight`] on a bare configuration.
pub fn raise_tree_weight<R: Rng>(cfg: &mut ConfigGraph<TreeState>, rng: &mut R) -> Option<Fault> {
    let fault = plan_raise_tree_weight(cfg, rng)?;
    fault.apply_to(cfg);
    Some(fault)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mst_scheme::{mst_configuration, MstScheme};
    use mstv_graph::gen;
    use mstv_mst::is_mst;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg(seed: u64) -> ConfigGraph<TreeState> {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gen::random_connected(20, 30, gen::WeightDist::Uniform { max: 100 }, &mut rng);
        mst_configuration(g)
    }

    #[test]
    fn break_minimality_voids_mst() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut hit = 0;
        for seed in 0..10 {
            let mut c = cfg(seed);
            if let Some(Fault::WeightChange { .. }) = break_minimality(&mut c, &mut rng) {
                let t = c.induced_edges();
                assert!(c.graph().is_spanning_tree(&t));
                assert!(!is_mst(c.graph(), &t));
                hit += 1;
            }
        }
        assert!(hit >= 5);
    }

    #[test]
    fn raise_tree_weight_voids_mst_usually() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut c = cfg(42);
        let fault = raise_tree_weight(&mut c, &mut rng);
        assert!(fault.is_some());
        let t = c.induced_edges();
        assert!(c.graph().is_spanning_tree(&t));
        assert!(!is_mst(c.graph(), &t));
    }

    #[test]
    fn retarget_changes_pointer() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut c = cfg(7);
        let before = c.clone();
        match retarget_pointer(&mut c, &mut rng) {
            Some(Fault::PointerRetarget { node, old, new }) => {
                assert_ne!(old, new);
                assert_eq!(c.state(node).parent_port, new);
                assert_eq!(before.state(node).parent_port, old);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn none_on_pure_tree() {
        // A graph that is already a tree has no non-tree edges to drop.
        let mut rng = StdRng::seed_from_u64(4);
        let g = gen::random_tree(10, gen::WeightDist::Uniform { max: 9 }, &mut rng);
        let mut c = mst_configuration(g);
        assert_eq!(break_minimality(&mut c, &mut rng), None);
        assert_eq!(raise_tree_weight(&mut c, &mut rng), None);
    }

    #[test]
    fn plan_does_not_mutate() {
        let mut rng = StdRng::seed_from_u64(5);
        let c = cfg(11);
        let snapshot = c.clone();
        let _ = plan_break_minimality(&c, &mut rng);
        let _ = plan_retarget_pointer(&c, &mut rng);
        let _ = plan_raise_tree_weight(&c, &mut rng);
        assert_eq!(c, snapshot);
    }

    #[test]
    fn inject_and_undo_through_session() {
        let mut rng = StdRng::seed_from_u64(6);
        let c = cfg(13);
        let fault = plan_break_minimality(&c, &mut rng).unwrap();
        let mut session = VerifySession::new(MstScheme::new(), c).unwrap();
        assert!(session.verdict().accepted());
        let v = inject(&mut session, &fault).unwrap();
        assert!(!v.accepted(), "a minimality fault must be detected");
        // The session's incremental verdict matches a scratch pass.
        let scheme = MstScheme::new();
        assert_eq!(v, scheme.verify_all(session.config(), session.labeling()));
        let v = session.apply(fault.to_undo_mutation()).unwrap();
        assert!(v.accepted(), "undoing the fault restores acceptance");
        assert!(session.metrics().nodes_skipped > 0);
    }

    #[test]
    fn pointer_fault_through_session() {
        let mut rng = StdRng::seed_from_u64(8);
        let c = cfg(17);
        let fault = plan_retarget_pointer(&c, &mut rng).unwrap();
        let mut session = VerifySession::new(MstScheme::new(), c).unwrap();
        let v = inject(&mut session, &fault).unwrap();
        let scheme = MstScheme::new();
        assert_eq!(v, scheme.verify_all(session.config(), session.labeling()));
    }
}
