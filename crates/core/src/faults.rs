//! Fault injection for soundness and self-stabilization experiments.
//!
//! Self-stabilizing systems verify their output repeatedly precisely
//! because faults corrupt states, weights, and labels arbitrarily. These
//! helpers produce the corruption classes the experiments (and the
//! distributed simulator's stabilization loop) throw at the schemes.

use mstv_graph::{ConfigGraph, EdgeId, NodeId, Port, TreeState, Weight};
use mstv_trees::RootedTree;
use rand::Rng;

/// A record of an injected fault, for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// An edge's weight was changed.
    WeightChange {
        /// The edge.
        edge: EdgeId,
        /// Weight before.
        old: Weight,
        /// Weight after.
        new: Weight,
    },
    /// A node's parent pointer was retargeted to a different port.
    PointerRetarget {
        /// The node.
        node: NodeId,
        /// Pointer before.
        old: Option<Port>,
        /// Pointer after.
        new: Option<Port>,
    },
}

/// Drops the weight of a random non-tree edge *below* the heaviest tree
/// edge on its cycle, so the candidate tree stops being minimum while
/// remaining a spanning tree. Returns `None` when no non-tree edge can be
/// made violating (e.g. all path maxima are already 1).
pub fn break_minimality<R: Rng>(cfg: &mut ConfigGraph<TreeState>, rng: &mut R) -> Option<Fault> {
    let tree_edges = cfg.induced_edges();
    if !cfg.graph().is_spanning_tree(&tree_edges) {
        return None;
    }
    let root = cfg
        .graph()
        .nodes()
        .find(|&v| cfg.state(v).parent_port.is_none())?;
    let tree = RootedTree::from_graph_edges(cfg.graph(), &tree_edges, root).ok()?;
    let mut in_tree = vec![false; cfg.graph().num_edges()];
    for &e in &tree_edges {
        in_tree[e.index()] = true;
    }
    let candidates: Vec<(EdgeId, Weight)> = cfg
        .graph()
        .edges()
        .filter(|(e, _)| !in_tree[e.index()])
        .filter_map(|(e, edge)| {
            let m = tree.max_on_path_naive(edge.u, edge.v);
            (m > Weight(1)).then_some((e, Weight(m.0 - 1)))
        })
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let (edge, new) = candidates[rng.gen_range(0..candidates.len())];
    let old = cfg.graph().weight(edge);
    cfg.graph_mut().set_weight(edge, new);
    Some(Fault::WeightChange { edge, old, new })
}

/// Retargets a random non-root node's parent pointer to a uniformly random
/// other port (possibly creating a cycle or disconnection). Returns `None`
/// for graphs where no node has an alternative port.
pub fn retarget_pointer<R: Rng>(cfg: &mut ConfigGraph<TreeState>, rng: &mut R) -> Option<Fault> {
    let n = cfg.graph().num_nodes();
    let candidates: Vec<NodeId> = (0..n)
        .map(NodeId::from_index)
        .filter(|&v| cfg.state(v).parent_port.is_some() && cfg.graph().degree(v) >= 2)
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let node = candidates[rng.gen_range(0..candidates.len())];
    let old = cfg.state(node).parent_port;
    let deg = cfg.graph().degree(node) as u32;
    let mut new = Port(rng.gen_range(0..deg));
    if Some(new) == old {
        new = Port((new.0 + 1) % deg);
    }
    cfg.state_mut(node).parent_port = Some(new);
    Some(Fault::PointerRetarget {
        node,
        old,
        new: Some(new),
    })
}

/// Raises a random *tree* edge's weight above the lightest non-tree edge
/// covering it, another way to void minimality. Returns `None` when no
/// tree edge is covered by any non-tree edge.
pub fn raise_tree_weight<R: Rng>(cfg: &mut ConfigGraph<TreeState>, rng: &mut R) -> Option<Fault> {
    let tree_edges = cfg.induced_edges();
    if !cfg.graph().is_spanning_tree(&tree_edges) {
        return None;
    }
    let root = cfg
        .graph()
        .nodes()
        .find(|&v| cfg.state(v).parent_port.is_none())?;
    let tree = RootedTree::from_graph_edges(cfg.graph(), &tree_edges, root).ok()?;
    let mut in_tree = vec![false; cfg.graph().num_edges()];
    for &e in &tree_edges {
        in_tree[e.index()] = true;
    }
    // For each tree edge, find a covering non-tree edge.
    let mut covered: Vec<(EdgeId, Weight)> = Vec::new();
    for (f, fe) in cfg.graph().edges() {
        if in_tree[f.index()] {
            continue;
        }
        // Walk the path; every tree edge on it is covered by f.
        let (mut x, mut y) = (fe.u, fe.v);
        while x != y {
            let step = if tree.depth(x) >= tree.depth(y) {
                let p = tree.parent(x).expect("non-root");
                let e = cfg.graph().edge_between(x, p).expect("tree edge");
                x = p;
                e
            } else {
                let p = tree.parent(y).expect("non-root");
                let e = cfg.graph().edge_between(y, p).expect("tree edge");
                y = p;
                e
            };
            covered.push((step, Weight(fe.w.0 + 1)));
        }
    }
    if covered.is_empty() {
        return None;
    }
    let (edge, new) = covered[rng.gen_range(0..covered.len())];
    let old = cfg.graph().weight(edge);
    if new <= old {
        // Already heavier than the cover: raising is a no-op for
        // minimality; still apply to keep behavior uniform.
    }
    cfg.graph_mut().set_weight(edge, new);
    Some(Fault::WeightChange { edge, old, new })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mst_scheme::mst_configuration;
    use mstv_graph::gen;
    use mstv_mst::is_mst;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg(seed: u64) -> ConfigGraph<TreeState> {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gen::random_connected(20, 30, gen::WeightDist::Uniform { max: 100 }, &mut rng);
        mst_configuration(g)
    }

    #[test]
    fn break_minimality_voids_mst() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut hit = 0;
        for seed in 0..10 {
            let mut c = cfg(seed);
            if let Some(Fault::WeightChange { .. }) = break_minimality(&mut c, &mut rng) {
                let t = c.induced_edges();
                assert!(c.graph().is_spanning_tree(&t));
                assert!(!is_mst(c.graph(), &t));
                hit += 1;
            }
        }
        assert!(hit >= 5);
    }

    #[test]
    fn raise_tree_weight_voids_mst_usually() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut c = cfg(42);
        let fault = raise_tree_weight(&mut c, &mut rng);
        assert!(fault.is_some());
        let t = c.induced_edges();
        assert!(c.graph().is_spanning_tree(&t));
        assert!(!is_mst(c.graph(), &t));
    }

    #[test]
    fn retarget_changes_pointer() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut c = cfg(7);
        let before = c.clone();
        match retarget_pointer(&mut c, &mut rng) {
            Some(Fault::PointerRetarget { node, old, new }) => {
                assert_ne!(old, new);
                assert_eq!(c.state(node).parent_port, new);
                assert_eq!(before.state(node).parent_port, old);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn none_on_pure_tree() {
        // A graph that is already a tree has no non-tree edges to drop.
        let mut rng = StdRng::seed_from_u64(4);
        let g = gen::random_tree(10, gen::WeightDist::Uniform { max: 9 }, &mut rng);
        let mut c = mst_configuration(g);
        assert_eq!(break_minimality(&mut c, &mut rng), None);
        assert_eq!(raise_tree_weight(&mut c, &mut rng), None);
    }
}
