//! A proof labeling scheme for **shortest-path trees** — another classic
//! predicate from the proof-labeling literature the paper builds on
//! (\[KKP05\] treats it alongside MST), included as a further instance of
//! the framework and as a counterpoint: SPT verification needs only
//! `O(log(nW))`-bit labels because shortest-path distances satisfy a
//! *local fixpoint* (triangle) characterization, whereas MST minimality
//! has no such one-field certificate — hence the paper's whole `γ_small` /
//! `π_Γ` machinery.
//!
//! Label: the spanning sublabel plus `d(v)`, the claimed distance to the
//! root. Checks at `v`: the spanning-tree conditions; `d(root) = 0`;
//! `d(v) = d(parent) + ω(parent edge)` (distances realized by the tree);
//! and `d(v) ≤ d(u) + ω(u, v)` for *every* neighbor `u` (no shortcut
//! exists). Soundness is the Bellman–Ford fixpoint argument: the triangle
//! inequalities force `d(v) ≤ dist_G(v, root)` by induction on shortest
//! paths, while the tree equalities force `d(v) = dist_T(v, root) ≥
//! dist_G(v, root)` — so tree paths are shortest.

use mstv_graph::{ConfigGraph, NodeId, TreeState, Weight};
use mstv_labels::BitString;
use mstv_mst::shortest_path_tree;

use crate::span::{check_span, span_labels, SpanCodec, SpanLabel};
use crate::{Labeling, LocalView, MarkerError, ProofLabelingScheme};

/// The SPT label: spanning sublabel plus the distance-to-root field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SptLabel {
    /// Spanning-tree sublabel.
    pub span: SpanLabel,
    /// Claimed weighted distance from the node to the root.
    pub dist_to_root: u64,
}

/// The proof labeling scheme for *"the induced tree is a shortest-path
/// tree rooted at the pointerless node"*.
#[derive(Debug, Clone, Copy, Default)]
pub struct SptScheme;

impl SptScheme {
    /// Creates the scheme.
    pub fn new() -> Self {
        SptScheme
    }
}

impl ProofLabelingScheme for SptScheme {
    type State = TreeState;
    type Label = SptLabel;

    fn marker(&self, cfg: &ConfigGraph<TreeState>) -> Result<Labeling<SptLabel>, MarkerError> {
        let g = cfg.graph();
        let (tree, span) = span_labels(cfg)?;
        // Weighted tree distances.
        let mut wdepth = vec![0u64; g.num_nodes()];
        for &v in tree.order() {
            if let Some(p) = tree.parent(v) {
                wdepth[v.index()] = wdepth[p.index()] + tree.parent_weight(v).0;
            }
        }
        // The predicate: tree distances equal graph distances.
        let (_, dist) = shortest_path_tree(g, tree.root());
        for v in g.nodes() {
            if wdepth[v.index()] != dist[v.index()] {
                return Err(MarkerError::BadStates(format!(
                    "tree path to {v} costs {} but a {}-cost path exists",
                    wdepth[v.index()],
                    dist[v.index()]
                )));
            }
        }
        let labels: Vec<SptLabel> = (0..g.num_nodes())
            .map(|i| SptLabel {
                span: span[i],
                dist_to_root: wdepth[i],
            })
            .collect();
        let span_codec = SpanCodec::for_config(cfg);
        let d_bits = Weight(wdepth.iter().copied().max().unwrap_or(0)).bit_width();
        let encoded = labels
            .iter()
            .map(|l| {
                let mut out = BitString::new();
                span_codec.encode_into(&mut out, &l.span);
                out.push_bits(l.dist_to_root, d_bits);
                out
            })
            .collect();
        Ok(Labeling::new(labels, encoded))
    }

    fn verify(&self, view: &LocalView<'_, TreeState, SptLabel>) -> bool {
        let spans: Vec<&SpanLabel> = view.neighbors.iter().map(|nb| &nb.label.span).collect();
        if !check_span(view.state, &view.label.span, &spans) {
            return false;
        }
        let d = view.label.dist_to_root;
        match view.state.parent_port {
            None => {
                if d != 0 {
                    return false;
                }
            }
            Some(p) => {
                let Some(parent) = view.neighbor_at(p) else {
                    return false;
                };
                if d != parent.label.dist_to_root.saturating_add(parent.weight.0) {
                    return false;
                }
            }
        }
        // No neighbor offers a shortcut.
        view.neighbors
            .iter()
            .all(|nb| d <= nb.label.dist_to_root.saturating_add(nb.weight.0))
    }
}

/// Builds the SPT configuration for a graph: Dijkstra from `root`, parent
/// pointers installed in the states.
///
/// # Panics
///
/// Panics if the graph is not connected.
pub fn spt_configuration(graph: mstv_graph::Graph, root: NodeId) -> ConfigGraph<TreeState> {
    let (edges, _) = shortest_path_tree(&graph, root);
    let states = mstv_graph::tree_states(&graph, &edges, root).expect("dijkstra returns a tree");
    ConfigGraph::new(graph, states).expect("one state per node")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstv_graph::{gen, tree_states, Graph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn completeness() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [2usize, 10, 50, 120] {
            let g = gen::random_connected(n, 2 * n, gen::WeightDist::Uniform { max: 50 }, &mut rng);
            let cfg = spt_configuration(g, NodeId(0));
            let scheme = SptScheme::new();
            let labeling = scheme.marker(&cfg).unwrap();
            assert!(scheme.verify_all(&cfg, &labeling).accepted(), "n={n}");
        }
    }

    #[test]
    fn marker_rejects_non_spt() {
        // Triangle where the tree routes 0→2 through the long way.
        let mut g = Graph::new(3);
        let e0 = g.add_edge(NodeId(0), NodeId(1), Weight(5)).unwrap();
        let e1 = g.add_edge(NodeId(1), NodeId(2), Weight(5)).unwrap();
        let _chord = g.add_edge(NodeId(2), NodeId(0), Weight(1)).unwrap();
        let states = tree_states(&g, &[e0, e1], NodeId(0)).unwrap();
        let cfg = ConfigGraph::new(g, states).unwrap();
        assert!(SptScheme::new().marker(&cfg).is_err());
    }

    #[test]
    fn stale_labels_rejected_after_weight_drop() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut detected = 0;
        for seed in 0..15 {
            let g = gen::random_connected(20, 40, gen::WeightDist::Uniform { max: 100 }, &mut rng);
            let cfg = spt_configuration(g, NodeId(0));
            let scheme = SptScheme::new();
            let labeling = scheme.marker(&cfg).unwrap();
            // Make a non-tree edge a shortcut.
            let tree_edges = cfg.induced_edges();
            let mut in_tree = vec![false; cfg.graph().num_edges()];
            for &e in &tree_edges {
                in_tree[e.index()] = true;
            }
            let Some(victim) = cfg
                .graph()
                .edges()
                .find(|(e, edge)| {
                    !in_tree[e.index()]
                        && labeling
                            .label(edge.u)
                            .dist_to_root
                            .abs_diff(labeling.label(edge.v).dist_to_root)
                            > 1
                })
                .map(|(e, _)| e)
            else {
                continue;
            };
            let mut bad = cfg.clone();
            bad.graph_mut().set_weight(victim, Weight(1));
            let verdict = scheme.verify_all(&bad, &labeling);
            assert!(!verdict.accepted(), "seed={seed}");
            detected += 1;
        }
        assert!(detected >= 5);
    }

    #[test]
    fn forged_distance_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = gen::random_connected(25, 50, gen::WeightDist::Uniform { max: 60 }, &mut rng);
        let cfg = spt_configuration(g, NodeId(0));
        let scheme = SptScheme::new();
        let honest = scheme.marker(&cfg).unwrap();
        for victim in 1..25u32 {
            for delta in [1i64, -1] {
                let old = honest.label(NodeId(victim)).dist_to_root as i64;
                if old + delta < 0 {
                    continue;
                }
                let mut labeling = Labeling::from_labels(honest.labels().to_vec());
                labeling.label_mut(NodeId(victim)).dist_to_root = (old + delta) as u64;
                assert!(
                    !scheme.verify_all(&cfg, &labeling).accepted(),
                    "victim={victim} delta={delta}"
                );
            }
        }
    }

    #[test]
    fn label_size_is_log_nw() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = gen::random_connected(
            500,
            1000,
            gen::WeightDist::Uniform { max: 1 << 20 },
            &mut rng,
        );
        let cfg = spt_configuration(g, NodeId(0));
        let labeling = SptScheme::new().marker(&cfg).unwrap();
        // 3 ids (9 bits) + dist (9) + flag + d field (≤ 29 bits) — well
        // under 100: O(log n + log nW), no log-product term.
        assert!(labeling.max_label_bits() <= 100);
    }
}
