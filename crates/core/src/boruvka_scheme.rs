//! The Borůvka fragment-hierarchy proof labeling scheme — the previously
//! known `O(log² n + log n log W)` MST scheme of Korman–Kutten–Peleg
//! (reference 25 in the paper), implemented as the comparison baseline.
//!
//! The label stores, for every Borůvka phase `p` (at most `⌈log₂ n⌉` of
//! them), the node's fragment identity, its distance to the fragment
//! leader inside the fragment's tree, and the key of the minimum-weight
//! outgoing edge (MWOE) its fragment selected. Phases are run under the
//! *tree-favored* strict order (see `mstv-mst::tree_favored_key`), under
//! which the candidate tree is an MST iff it is the unique MST, so Borůvka
//! reproduces exactly the candidate's edges.
//!
//! Soundness rests on the cut property: the local checks force, for every
//! tree edge `e` added at phase `p`, that `e` is the strictly smallest
//! edge leaving one of the two fragments it merges — hence `e` belongs to
//! the unique perturbed MST. All `n − 1` tree edges in the unique MST
//! means the candidate *is* that MST. The fragment identities cannot be
//! forged across fragments because each node proves connectivity to a
//! leader carrying that identity through a distance-decreasing chain, and
//! identities are unique.

use mstv_graph::{ConfigGraph, NodeId, TreeState, Weight};
use mstv_labels::BitString;
use mstv_mst::EdgeKey;

use crate::span::{check_span, span_labels, SpanCodec, SpanLabel};
use crate::{Labeling, LocalView, MarkerError, ProofLabelingScheme};

/// Per-phase fields of a [`BoruvkaLabel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseInfo {
    /// Identity of the fragment leader at the start of this phase.
    pub frag: u64,
    /// Distance to that leader inside the fragment tree.
    pub fdist: u64,
    /// Key of the MWOE the fragment selects this phase.
    pub mwoe: EdgeKey,
}

/// The baseline scheme's label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoruvkaLabel {
    /// Spanning-tree sublabel.
    pub span: SpanLabel,
    /// Phase at which the node's parent edge entered the tree (`None` at
    /// the root).
    pub add_phase: Option<u32>,
    /// Per-phase fragment data, one entry per Borůvka phase.
    pub phases: Vec<PhaseInfo>,
}

/// The Borůvka fragment-hierarchy proof labeling scheme.
#[derive(Debug, Clone, Copy, Default)]
pub struct BoruvkaScheme;

impl BoruvkaScheme {
    /// Creates the scheme.
    pub fn new() -> Self {
        BoruvkaScheme
    }
}

fn edge_key(weight: Weight, is_tree: bool, id_a: u64, id_b: u64) -> EdgeKey {
    EdgeKey {
        weight,
        class: u8::from(!is_tree),
        lo: id_a.min(id_b),
        hi: id_a.max(id_b),
    }
}

impl ProofLabelingScheme for BoruvkaScheme {
    type State = TreeState;
    type Label = BoruvkaLabel;

    fn marker(&self, cfg: &ConfigGraph<TreeState>) -> Result<Labeling<BoruvkaLabel>, MarkerError> {
        let g = cfg.graph();
        let n = g.num_nodes();
        let (tree, span) = span_labels(cfg)?;
        let tree_edges = cfg.induced_edges();
        match mstv_mst::check_mst(g, &tree_edges) {
            mstv_mst::MstVerdict::Mst => {}
            mstv_mst::MstVerdict::NotSpanningTree => return Err(MarkerError::NotSpanning),
            mstv_mst::MstVerdict::CycleViolation { non_tree_edge, .. } => {
                return Err(MarkerError::NotMinimum {
                    witness_edge: non_tree_edge,
                })
            }
        }
        let mut in_tree = vec![false; g.num_edges()];
        for &e in &tree_edges {
            in_tree[e.index()] = true;
        }
        let id_of = |v: NodeId| cfg.state(v).id;
        let key_of = |e: mstv_graph::EdgeId| {
            let edge = g.edge(e);
            edge_key(edge.w, in_tree[e.index()], id_of(edge.u), id_of(edge.v))
        };
        let trace = if n > 1 {
            mstv_mst::boruvka_trace(g, key_of)
        } else {
            mstv_mst::BoruvkaTrace {
                phases: vec![],
                edges: vec![],
                add_phase: vec![],
            }
        };
        // Under the tree-favored order Borůvka must reproduce the tree.
        {
            let mut got: Vec<_> = trace.edges.clone();
            let mut want = tree_edges.clone();
            got.sort();
            want.sort();
            if got != want {
                return Err(MarkerError::bad_states(
                    "Borůvka did not reproduce the candidate tree",
                ));
            }
        }
        let num_phases = trace.phases.len();
        // Per-phase: leader identity, leader distance, fragment MWOE key.
        let mut phase_fields: Vec<Vec<PhaseInfo>> = vec![Vec::with_capacity(num_phases); n];
        for (idx, phase) in trace.phases.iter().enumerate() {
            // Fragment tree adjacency = tree edges added at earlier phases.
            // phase.fragment[v] is the min node index of v's fragment, so
            // that node is the fragment leader.
            let mut dist = vec![u64::MAX; n];
            let mut queue = std::collections::VecDeque::new();
            for (v, slot) in dist.iter_mut().enumerate() {
                if phase.fragment[v] == v as u32 {
                    *slot = 0;
                    queue.push_back(NodeId::from_index(v));
                }
            }
            while let Some(v) = queue.pop_front() {
                for nb in g.neighbors(v) {
                    if !in_tree[nb.edge.index()] {
                        continue;
                    }
                    let u = nb.node;
                    // An edge added at phase >= idx connects two fragments
                    // still distinct at idx, so the fragment-equality test
                    // confines the BFS to fragment-internal edges.
                    if phase.fragment[u.index()] == phase.fragment[v.index()]
                        && dist[u.index()] == u64::MAX
                    {
                        dist[u.index()] = dist[v.index()] + 1;
                        queue.push_back(u);
                    }
                }
            }
            for v in 0..n {
                let frag_rep = phase.fragment[v] as usize;
                let mwoe_edge = phase.mwoe[&phase.fragment[v]];
                debug_assert_ne!(dist[v], u64::MAX, "phase {idx}: node {v} unreachable");
                phase_fields[v].push(PhaseInfo {
                    frag: id_of(NodeId::from_index(frag_rep)),
                    fdist: dist[v],
                    mwoe: key_of(mwoe_edge),
                });
            }
        }
        let labels: Vec<BoruvkaLabel> = (0..n)
            .map(|i| {
                let v = NodeId::from_index(i);
                let add_phase = tree.parent(v).map(|p| {
                    let e = g.edge_between(v, p).expect("parent edge exists");
                    trace.add_phase[e.index()].expect("tree edge has an add phase")
                });
                BoruvkaLabel {
                    span: span[i],
                    add_phase,
                    phases: phase_fields[i].clone(),
                }
            })
            .collect();
        let span_codec = SpanCodec::for_config(cfg);
        let w_bits = g.max_weight().bit_width();
        let encoded = labels
            .iter()
            .map(|l| encode_boruvka_label(l, span_codec, w_bits))
            .collect();
        Ok(Labeling::new(labels, encoded))
    }

    fn verify(&self, view: &LocalView<'_, TreeState, BoruvkaLabel>) -> bool {
        let spans: Vec<&SpanLabel> = view.neighbors.iter().map(|nb| &nb.label.span).collect();
        if !check_span(view.state, &view.label.span, &spans) {
            return false;
        }
        let own = view.label;
        let own_id = view.state.id;
        let p_count = own.phases.len();
        // Phase count agreement.
        if view
            .neighbors
            .iter()
            .any(|nb| nb.label.phases.len() != p_count)
        {
            return false;
        }
        // Parent edge's phase exists.
        match (view.state.parent_port, own.add_phase) {
            (None, None) => {}
            (Some(_), Some(q)) if (q as usize) < p_count => {}
            _ => return false,
        }
        // Phase 0: singleton fragment.
        if let Some(first) = own.phases.first() {
            if first.frag != own_id || first.fdist != 0 {
                return false;
            }
        } else if view.state.parent_port.is_some() {
            // Non-trivial tree but zero phases.
            return false;
        }
        // Classify neighbors; tree membership is label-computable.
        struct Nb<'a> {
            label: &'a BoruvkaLabel,
            key: EdgeKey,
            tree_edge_phase: Option<u32>,
        }
        let mut nbs = Vec::with_capacity(view.neighbors.len());
        for nb in &view.neighbors {
            let is_parent = view.state.parent_port == Some(nb.port);
            let is_child = nb.label.span.parent_id == Some(own_id);
            let tree_edge_phase = if is_parent {
                match own.add_phase {
                    Some(q) => Some(q),
                    None => return false,
                }
            } else if is_child {
                match nb.label.add_phase {
                    Some(q) => Some(q),
                    None => return false,
                }
            } else {
                None
            };
            let key = edge_key(
                nb.weight,
                tree_edge_phase.is_some(),
                own_id,
                nb.label.span.node_id,
            );
            nbs.push(Nb {
                label: nb.label,
                key,
                tree_edge_phase,
            });
        }
        for p in 0..p_count {
            let mine = &own.phases[p];
            for nb in &nbs {
                let theirs = &nb.label.phases[p];
                if let Some(q) = nb.tree_edge_phase {
                    if p as u32 <= q {
                        // Not yet merged: fragments must differ.
                        if theirs.frag == mine.frag {
                            return false;
                        }
                    } else {
                        // Merged: same fragment, same MWOE claim.
                        if theirs.frag != mine.frag || theirs.mwoe != mine.mwoe {
                            return false;
                        }
                    }
                }
                // Outgoing minimality: any edge leaving my fragment is at
                // least my fragment's claimed MWOE.
                if theirs.frag != mine.frag && nb.key < mine.mwoe {
                    return false;
                }
            }
            // Leader chain: fdist 0 claims the identity; otherwise a
            // fragment-internal tree neighbor is one step closer.
            if mine.fdist == 0 {
                if mine.frag != own_id {
                    return false;
                }
            } else {
                let ok = nbs.iter().any(|nb| {
                    matches!(nb.tree_edge_phase, Some(q) if (q as usize) < p)
                        && nb.label.phases[p].frag == mine.frag
                        && nb.label.phases[p].fdist + 1 == mine.fdist
                });
                if !ok {
                    return false;
                }
            }
        }
        // Selection: my parent edge equals the MWOE of one of the two
        // fragments it merged.
        if let (Some(pp), Some(q)) = (view.state.parent_port, own.add_phase) {
            let Some(parent) = nbs.get(pp.index()) else {
                return false;
            };
            let q = q as usize;
            let my_claim = own.phases[q].mwoe;
            let their_claim = parent.label.phases[q].mwoe;
            if parent.key != my_claim && parent.key != their_claim {
                return false;
            }
        }
        true
    }
}

/// Serializes a Borůvka-hierarchy label exactly: the spanning sublabel, a
/// gamma-coded phase count and add-phase, and per phase the leader
/// identity, leader distance, and MWOE key (weight, class bit, endpoint
/// identities).
pub fn encode_boruvka_label(label: &BoruvkaLabel, span_codec: SpanCodec, w_bits: u32) -> BitString {
    let mut out = BitString::new();
    span_codec.encode_into(&mut out, &label.span);
    out.push_elias_gamma(label.phases.len() as u64 + 1);
    match label.add_phase {
        Some(q) => {
            out.push(true);
            out.push_elias_gamma(u64::from(q) + 1);
        }
        None => out.push(false),
    }
    for ph in &label.phases {
        out.push_bits(ph.frag, span_codec.id_bits);
        out.push_bits(ph.fdist, span_codec.dist_bits);
        out.push_bits(ph.mwoe.weight.0, w_bits);
        out.push_bits(u64::from(ph.mwoe.class), 1);
        out.push_bits(ph.mwoe.lo, span_codec.id_bits);
        out.push_bits(ph.mwoe.hi, span_codec.id_bits);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mst_scheme::mst_configuration;
    use mstv_graph::{gen, tree_states, EdgeId, Graph};
    use mstv_mst::is_mst;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config(n: usize, extra: usize, max_w: u64, seed: u64) -> ConfigGraph<TreeState> {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gen::random_connected(n, extra, gen::WeightDist::Uniform { max: max_w }, &mut rng);
        mst_configuration(g)
    }

    #[test]
    fn completeness() {
        for (n, extra, w, seed) in [
            (2usize, 0usize, 5u64, 1u64),
            (3, 2, 9, 2),
            (12, 20, 100, 3),
            (60, 120, 1000, 4),
            (200, 400, 1 << 16, 5),
        ] {
            let cfg = config(n, extra, w, seed);
            let scheme = BoruvkaScheme::new();
            let labeling = scheme.marker(&cfg).unwrap();
            let verdict = scheme.verify_all(&cfg, &labeling);
            assert!(verdict.accepted(), "n={n}: {verdict}");
        }
    }

    #[test]
    fn completeness_under_ties() {
        // Tie weights stress the strict tree-favored order.
        let mut rng = StdRng::seed_from_u64(6);
        for seed in 0..5 {
            let g = gen::random_connected(30, 60, gen::WeightDist::Constant(4), &mut rng);
            let cfg = mst_configuration(g);
            let scheme = BoruvkaScheme::new();
            let labeling = scheme.marker(&cfg).unwrap();
            assert!(scheme.verify_all(&cfg, &labeling).accepted(), "seed={seed}");
        }
    }

    #[test]
    fn marker_rejects_non_mst() {
        let mut g = Graph::new(3);
        let e0 = g.add_edge(NodeId(0), NodeId(1), Weight(1)).unwrap();
        let _mid = g.add_edge(NodeId(1), NodeId(2), Weight(2)).unwrap();
        let e2 = g.add_edge(NodeId(2), NodeId(0), Weight(9)).unwrap();
        let states = tree_states(&g, &[e0, e2], NodeId(0)).unwrap();
        let cfg = ConfigGraph::new(g, states).unwrap();
        assert!(BoruvkaScheme::new().marker(&cfg).is_err());
    }

    #[test]
    fn swapped_tree_edge_with_refreshed_labels_rejected() {
        // Same adversary as in the π_mst tests: swap in a heavier edge and
        // rebuild all honest sublabels except the (impossible) MWOE data.
        let mut rng = StdRng::seed_from_u64(7);
        let mut detected = 0;
        for _ in 0..20 {
            let g = gen::random_connected(16, 24, gen::WeightDist::Uniform { max: 300 }, &mut rng);
            let mst = mstv_mst::kruskal(&g);
            let mut in_tree = vec![false; g.num_edges()];
            for &e in &mst {
                in_tree[e.index()] = true;
            }
            let tree = mstv_trees::RootedTree::from_graph_edges(&g, &mst, NodeId(0)).unwrap();
            let Some((f, evict)) =
                g.edges()
                    .filter(|(e, _)| !in_tree[e.index()])
                    .find_map(|(e, edge)| {
                        let m = tree.max_on_path_naive(edge.u, edge.v);
                        if edge.w <= m {
                            return None;
                        }
                        let evict = mst.iter().copied().find(|&te| {
                            g.weight(te) == m && {
                                let td = g.edge(te);
                                on_path(&tree, edge.u, edge.v, td.u, td.v)
                            }
                        })?;
                        Some((e, evict))
                    })
            else {
                continue;
            };
            let swapped: Vec<EdgeId> = mst
                .iter()
                .copied()
                .filter(|&e| e != evict)
                .chain([f])
                .collect();
            assert!(!is_mst(&g, &swapped));
            let states = tree_states(&g, &swapped, NodeId(0)).unwrap();
            let bad_cfg = ConfigGraph::new(g.clone(), states).unwrap();
            // Run the honest sub-pipeline on the bad tree: Borůvka under
            // the bad tree's favored order (which will NOT reproduce the
            // tree; feed its trace labels anyway).
            let mut bad_in_tree = vec![false; g.num_edges()];
            for &e in &swapped {
                bad_in_tree[e.index()] = true;
            }
            let id_of = |v: NodeId| bad_cfg.state(v).id;
            let key_of = |e: EdgeId| {
                let edge = g.edge(e);
                edge_key(edge.w, bad_in_tree[e.index()], id_of(edge.u), id_of(edge.v))
            };
            let trace = mstv_mst::boruvka_trace(&g, key_of);
            // Build labels claiming the bad tree follows this trace.
            let (bad_tree, span) = span_labels(&bad_cfg).unwrap();
            let labels: Vec<BoruvkaLabel> = (0..g.num_nodes())
                .map(|i| {
                    let v = NodeId::from_index(i);
                    let add_phase = bad_tree.parent(v).map(|p| {
                        let e = g.edge_between(v, p).unwrap();
                        trace.add_phase[e.index()].unwrap_or(0)
                    });
                    BoruvkaLabel {
                        span: span[i],
                        add_phase,
                        phases: trace
                            .phases
                            .iter()
                            .map(|ph| PhaseInfo {
                                frag: id_of(NodeId(ph.fragment[i])),
                                fdist: 0, // forged; chains will fail
                                mwoe: key_of(ph.mwoe[&ph.fragment[i]]),
                            })
                            .collect(),
                    }
                })
                .collect();
            let labeling = Labeling::from_labels(labels);
            let verdict = BoruvkaScheme::new().verify_all(&bad_cfg, &labeling);
            assert!(!verdict.accepted());
            detected += 1;
        }
        assert!(detected >= 5, "only {detected} usable trials");
    }

    #[test]
    fn stale_labels_after_weight_drop_rejected() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut detected = 0;
        for _ in 0..15 {
            let g = gen::random_connected(20, 30, gen::WeightDist::Uniform { max: 100 }, &mut rng);
            let cfg = mst_configuration(g);
            let scheme = BoruvkaScheme::new();
            let labeling = scheme.marker(&cfg).unwrap();
            let tree_edges = cfg.induced_edges();
            let mut in_tree = vec![false; cfg.graph().num_edges()];
            for &e in &tree_edges {
                in_tree[e.index()] = true;
            }
            let tree =
                mstv_trees::RootedTree::from_graph_edges(cfg.graph(), &tree_edges, NodeId(0))
                    .unwrap();
            let Some((victim, new_w)) = cfg
                .graph()
                .edges()
                .filter(|(e, _)| !in_tree[e.index()])
                .find_map(|(e, edge)| {
                    let m = tree.max_on_path_naive(edge.u, edge.v);
                    (m > Weight(1)).then(|| (e, Weight(m.0 - 1)))
                })
            else {
                continue;
            };
            let mut bad = cfg.clone();
            bad.graph_mut().set_weight(victim, new_w);
            let verdict = scheme.verify_all(&bad, &labeling);
            assert!(!verdict.accepted());
            detected += 1;
        }
        assert!(detected >= 5);
    }

    fn on_path(tree: &mstv_trees::RootedTree, u: NodeId, v: NodeId, a: NodeId, b: NodeId) -> bool {
        let (mut x, mut y) = (u, v);
        while x != y {
            let step = if tree.depth(x) >= tree.depth(y) {
                let p = tree.parent(x).unwrap();
                let s = (x, p);
                x = p;
                s
            } else {
                let p = tree.parent(y).unwrap();
                let s = (y, p);
                y = p;
                s
            };
            if (step.0 == a && step.1 == b) || (step.0 == b && step.1 == a) {
                return true;
            }
        }
        false
    }

    #[test]
    fn label_size_has_log_squared_term() {
        // The baseline really is Θ(log²n + log n log W): for tiny W its
        // size grows quadratically in log n, and the new scheme wins.
        let cfg_small = config(64, 128, 3, 9);
        let cfg_large = config(1024, 2048, 3, 10);
        let b_small = BoruvkaScheme::new().marker(&cfg_small).unwrap();
        let b_large = BoruvkaScheme::new().marker(&cfg_large).unwrap();
        let m_large = crate::MstScheme::new().marker(&cfg_large).unwrap();
        assert!(b_large.max_label_bits() > b_small.max_label_bits());
        assert!(
            m_large.max_label_bits() < b_large.max_label_bits(),
            "π_mst {} bits vs baseline {} bits",
            m_large.max_label_bits(),
            b_large.max_label_bits()
        );
    }

    #[test]
    fn single_node() {
        let g = Graph::new(1);
        let cfg = ConfigGraph::new(g, vec![TreeState::root(0)]).unwrap();
        let scheme = BoruvkaScheme::new();
        let labeling = scheme.marker(&cfg).unwrap();
        assert!(scheme.verify_all(&cfg, &labeling).accepted());
    }
}
