//! The spanning-tree proof labeling scheme (from \[KKP05\], Lemma 2.3 there;
//! step (1) of the paper's MST scheme).
//!
//! States distributively represent a candidate tree (each node points at
//! its parent port); the `O(log n)`-bit labels carry the root's identity
//! and the node's distance to the root. The local checks — distances drop
//! by one towards the parent, everyone agrees on the root identity, and a
//! zero-distance node's own identity *is* the root identity — force the
//! pointer edges to form a single spanning in-tree:
//!
//! * distances strictly decrease along pointers ⇒ no pointer cycles;
//! * every pointer chain therefore ends at a pointerless node, which must
//!   claim distance 0 and identity = root identity;
//! * identities are unique and the graph is connected, so exactly one such
//!   node exists ⇒ one tree containing all nodes.
//!
//! The label also carries the node's own identity and its parent's
//! identity (both tied to the states by the checks); these make tree
//! membership of any incident edge computable from labels alone, which the
//! Borůvka-hierarchy baseline scheme relies on.

use mstv_graph::{ConfigGraph, NodeId, TreeState, Weight};
use mstv_labels::BitString;
use mstv_trees::RootedTree;

use crate::{Labeling, LocalView, MarkerError, ProofLabelingScheme};

/// The spanning-tree sublabel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanLabel {
    /// The node's own identity (must match its state).
    pub node_id: u64,
    /// The root's identity, agreed by all nodes.
    pub root_id: u64,
    /// Distance (in tree edges) to the root.
    pub dist: u64,
    /// The parent's identity; `None` at the root.
    pub parent_id: Option<u64>,
}

/// Fixed widths used to encode [`SpanLabel`]s for one instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanCodec {
    /// Bits per identity field.
    pub id_bits: u32,
    /// Bits for the distance field.
    pub dist_bits: u32,
}

impl SpanCodec {
    /// Derives widths from a configuration: identities up to the maximum
    /// id present, distances up to `n`.
    pub fn for_config(cfg: &ConfigGraph<TreeState>) -> Self {
        let max_id = cfg.states().iter().map(|s| s.id).max().unwrap_or(0);
        let n = cfg.graph().num_nodes() as u64;
        SpanCodec {
            id_bits: Weight(max_id).bit_width(),
            dist_bits: Weight(n).bit_width(),
        }
    }

    /// Appends a [`SpanLabel`] to a bit string.
    pub fn encode_into(&self, out: &mut BitString, label: &SpanLabel) {
        out.push_bits(label.node_id, self.id_bits);
        out.push_bits(label.root_id, self.id_bits);
        out.push_bits(label.dist, self.dist_bits);
        match label.parent_id {
            Some(p) => {
                out.push(true);
                out.push_bits(p, self.id_bits);
            }
            None => out.push(false),
        }
    }

    /// Reads a [`SpanLabel`] back.
    ///
    /// # Panics
    ///
    /// Panics on a truncated bit string.
    pub fn decode_from(&self, r: &mut mstv_labels::BitReader<'_>) -> SpanLabel {
        let node_id = r.read_bits(self.id_bits);
        let root_id = r.read_bits(self.id_bits);
        let dist = r.read_bits(self.dist_bits);
        let parent_id = if r.read_bit() {
            Some(r.read_bits(self.id_bits))
        } else {
            None
        };
        SpanLabel {
            node_id,
            root_id,
            dist,
            parent_id,
        }
    }

    /// Non-panicking [`SpanCodec::decode_from`]: `None` on truncation.
    pub fn try_decode_from(&self, r: &mut mstv_labels::BitReader<'_>) -> Option<SpanLabel> {
        let node_id = r.try_read_bits(self.id_bits)?;
        let root_id = r.try_read_bits(self.id_bits)?;
        let dist = r.try_read_bits(self.dist_bits)?;
        let parent_id = if r.try_read_bit()? {
            Some(r.try_read_bits(self.id_bits)?)
        } else {
            None
        };
        Some(SpanLabel {
            node_id,
            root_id,
            dist,
            parent_id,
        })
    }
}

/// The local spanning-tree conditions, shared by every composite scheme.
/// `neighbors[p]` is the span sublabel seen through port `p`.
pub fn check_span(state: &TreeState, own: &SpanLabel, neighbors: &[&SpanLabel]) -> bool {
    if own.node_id != state.id {
        return false;
    }
    if neighbors.iter().any(|nb| nb.root_id != own.root_id) {
        return false;
    }
    match state.parent_port {
        None => own.dist == 0 && own.root_id == own.node_id && own.parent_id.is_none(),
        Some(p) => {
            let Some(parent) = neighbors.get(p.index()) else {
                return false;
            };
            own.dist == parent.dist + 1 && own.parent_id == Some(parent.node_id)
        }
    }
}

/// Computes the honest span labels for a configuration whose states induce
/// a spanning tree; also returns the reconstructed rooted tree.
///
/// # Errors
///
/// Returns an error if the parent pointers do not form a spanning tree
/// (no unique root, cycles, disconnection) or node identities collide.
pub fn span_labels(
    cfg: &ConfigGraph<TreeState>,
) -> Result<(RootedTree, Vec<SpanLabel>), MarkerError> {
    let g = cfg.graph();
    let n = g.num_nodes();
    let mut ids = std::collections::HashSet::new();
    for s in cfg.states() {
        if !ids.insert(s.id) {
            return Err(MarkerError::BadStates(format!(
                "duplicate node identity {}",
                s.id
            )));
        }
    }
    let mut root = None;
    let mut parents: Vec<Option<(NodeId, Weight)>> = vec![None; n];
    for (i, slot) in parents.iter_mut().enumerate() {
        let v = NodeId::from_index(i);
        match cfg.state(v).parent_port {
            None => {
                if root.replace(v).is_some() {
                    return Err(MarkerError::NotSpanning);
                }
            }
            Some(p) => {
                if p.index() >= g.degree(v) {
                    return Err(MarkerError::NotSpanning);
                }
                let e = g.edge_at_port(v, p);
                *slot = Some((g.edge(e).other(v), g.weight(e)));
            }
        }
    }
    let root = root.ok_or(MarkerError::NotSpanning)?;
    let tree = RootedTree::from_parents(root, parents).map_err(|_| MarkerError::NotSpanning)?;
    let root_id = cfg.state(root).id;
    let labels = (0..n)
        .map(|i| {
            let v = NodeId::from_index(i);
            SpanLabel {
                node_id: cfg.state(v).id,
                root_id,
                dist: u64::from(tree.depth(v)),
                parent_id: tree.parent(v).map(|p| cfg.state(p).id),
            }
        })
        .collect();
    Ok((tree, labels))
}

/// The standalone spanning-tree proof labeling scheme.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpanningTreeScheme;

impl SpanningTreeScheme {
    /// Creates the scheme.
    pub fn new() -> Self {
        SpanningTreeScheme
    }
}

impl ProofLabelingScheme for SpanningTreeScheme {
    type State = TreeState;
    type Label = SpanLabel;

    fn marker(&self, cfg: &ConfigGraph<TreeState>) -> Result<Labeling<SpanLabel>, MarkerError> {
        let (_, labels) = span_labels(cfg)?;
        let codec = SpanCodec::for_config(cfg);
        let encoded = labels
            .iter()
            .map(|l| {
                let mut b = BitString::new();
                codec.encode_into(&mut b, l);
                b
            })
            .collect();
        Ok(Labeling::new(labels, encoded))
    }

    fn verify(&self, view: &LocalView<'_, TreeState, SpanLabel>) -> bool {
        let neighbors: Vec<&SpanLabel> = view.neighbors.iter().map(|nb| nb.label).collect();
        check_span(view.state, view.label, &neighbors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstv_graph::{gen, tree_states, Port};
    use mstv_mst::kruskal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tree_config(n: usize, extra: usize, seed: u64) -> ConfigGraph<TreeState> {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gen::random_connected(n, extra, gen::WeightDist::Uniform { max: 30 }, &mut rng);
        let t = kruskal(&g);
        let states = tree_states(&g, &t, NodeId(0)).unwrap();
        ConfigGraph::new(g, states).unwrap()
    }

    #[test]
    fn completeness() {
        for (n, extra, seed) in [(2usize, 0usize, 1u64), (10, 15, 2), (80, 100, 3)] {
            let cfg = tree_config(n, extra, seed);
            let scheme = SpanningTreeScheme::new();
            let labeling = scheme.marker(&cfg).unwrap();
            assert!(scheme.verify_all(&cfg, &labeling).accepted(), "n={n}");
        }
    }

    #[test]
    fn label_roundtrip() {
        let cfg = tree_config(20, 10, 4);
        let scheme = SpanningTreeScheme::new();
        let labeling = scheme.marker(&cfg).unwrap();
        let codec = SpanCodec::for_config(&cfg);
        for v in cfg.graph().nodes() {
            let mut r = labeling.encoded(v).reader();
            assert_eq!(codec.decode_from(&mut r), *labeling.label(v));
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn label_size_logarithmic() {
        let cfg = tree_config(100, 50, 5);
        let scheme = SpanningTreeScheme::new();
        let labeling = scheme.marker(&cfg).unwrap();
        // 3 id fields (7 bits) + dist (7 bits) + flag: comfortably < 64.
        assert!(labeling.max_label_bits() <= 64);
    }

    #[test]
    fn marker_rejects_cycle() {
        // Two nodes pointing at each other.
        let mut g = mstv_graph::Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), Weight(1)).unwrap();
        g.add_edge(NodeId(1), NodeId(2), Weight(1)).unwrap();
        let cfg = ConfigGraph::new(
            g,
            vec![
                TreeState::child(0, Port(0)),
                TreeState::child(1, Port(0)),
                TreeState::root(2),
            ],
        )
        .unwrap();
        assert!(SpanningTreeScheme::new().marker(&cfg).is_err());
    }

    #[test]
    fn marker_rejects_two_roots() {
        let mut g = mstv_graph::Graph::new(2);
        g.add_edge(NodeId(0), NodeId(1), Weight(1)).unwrap();
        let cfg = ConfigGraph::new(g, vec![TreeState::root(0), TreeState::root(1)]).unwrap();
        assert!(SpanningTreeScheme::new().marker(&cfg).is_err());
    }

    #[test]
    fn marker_rejects_duplicate_ids() {
        let mut g = mstv_graph::Graph::new(2);
        g.add_edge(NodeId(0), NodeId(1), Weight(1)).unwrap();
        let cfg =
            ConfigGraph::new(g, vec![TreeState::root(7), TreeState::child(7, Port(0))]).unwrap();
        assert!(SpanningTreeScheme::new().marker(&cfg).is_err());
    }

    #[test]
    fn forged_labels_on_broken_tree_rejected() {
        // Corrupt a pointer after honest labeling: some check must fail.
        let cfg = tree_config(30, 20, 6);
        let scheme = SpanningTreeScheme::new();
        let labeling = scheme.marker(&cfg).unwrap();
        let mut broken = cfg.clone();
        // Retarget node 5's parent pointer to a different port.
        let v = NodeId(5);
        let deg = broken.graph().degree(v);
        let old = broken.state(v).parent_port;
        for p in 0..deg {
            let np = Port(p as u32);
            if Some(np) != old {
                broken.state_mut(v).parent_port = Some(np);
                break;
            }
        }
        if broken.state(NodeId(5)).parent_port != old {
            let verdict = scheme.verify_all(&broken, &labeling);
            assert!(!verdict.accepted());
        }
    }

    #[test]
    fn adversarial_distance_shift_rejected() {
        let cfg = tree_config(25, 10, 7);
        let scheme = SpanningTreeScheme::new();
        let mut labeling = scheme.marker(&cfg).unwrap();
        // Shift one node's distance; either it or its parent/child rejects.
        labeling.label_mut(NodeId(9)).dist += 1;
        assert!(!scheme.verify_all(&cfg, &labeling).accepted());
    }

    #[test]
    fn adversarial_root_forgery_rejected() {
        // A non-root node drops its parent pointer and claims root: its
        // id cannot equal the agreed root id.
        let cfg = tree_config(25, 10, 8);
        let scheme = SpanningTreeScheme::new();
        let labeling = scheme.marker(&cfg).unwrap();
        let mut bad = cfg.clone();
        let victim = (0..25)
            .map(NodeId::from_index)
            .find(|&v| bad.state(v).parent_port.is_some())
            .unwrap();
        bad.state_mut(victim).parent_port = None;
        assert!(!scheme.verify_all(&bad, &labeling).accepted());
    }
}
