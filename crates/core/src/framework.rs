//! The proof labeling scheme framework (Section 2 of the paper).
//!
//! A proof labeling scheme `π = (M, V)` for a predicate `f` over
//! configuration graphs consists of a (possibly centralized) **marker**
//! `M`, assigning a label to every node, and a **local verifier** `V`,
//! run independently at each node with input `N_L(v)` — the node's own
//! state and label plus, for each incident edge, its port number, its
//! weight, and the *label* (not the state!) of the neighbor. Correctness:
//!
//! 1. if `f` holds, the marker's labels make every verifier accept;
//! 2. if `f` fails, **every** possible label assignment makes at least one
//!    verifier reject.
//!
//! [`LocalView`] reifies `N_L(v)` so that verifier implementations are
//! structurally prevented from peeking at remote information.

use mstv_graph::{ConfigGraph, NodeId, Port, Weight};
use mstv_labels::BitString;
use std::error::Error;
use std::fmt;

/// What a verifier sees of one neighbor: port, edge weight, and the
/// neighbor's label — exactly the fields of `N_L(v)` in the paper.
#[derive(Debug, Clone, Copy)]
pub struct NeighborView<'a, L> {
    /// The local port number of the connecting edge.
    pub port: Port,
    /// The weight of the connecting edge.
    pub weight: Weight,
    /// The neighbor's label.
    pub label: &'a L,
}

/// The complete verifier input `N_L(v)` at one node.
#[derive(Debug, Clone)]
pub struct LocalView<'a, S, L> {
    /// The node (for diagnostics only; verifiers must not use it as data —
    /// identities live in states).
    pub node: NodeId,
    /// The node's own state.
    pub state: &'a S,
    /// The node's own label.
    pub label: &'a L,
    /// One entry per incident edge, in port order.
    pub neighbors: Vec<NeighborView<'a, L>>,
}

impl<S, L> LocalView<'_, S, L> {
    /// The neighbor entry behind a port, if the port exists.
    pub fn neighbor_at(&self, port: Port) -> Option<&NeighborView<'_, L>> {
        self.neighbors.get(port.index())
    }
}

/// Error returned by a marker asked to label a configuration that does not
/// satisfy the scheme's predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarkerError {
    /// Why the predicate fails.
    pub reason: String,
}

impl fmt::Display for MarkerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "predicate does not hold: {}", self.reason)
    }
}

impl Error for MarkerError {}

/// A complete label assignment for one configuration graph, together with
/// the exact bit encoding of every label (for honest size accounting).
#[derive(Debug, Clone)]
pub struct Labeling<L> {
    labels: Vec<L>,
    encoded: Vec<BitString>,
}

impl<L> Labeling<L> {
    /// Pairs structured labels with their bit encodings.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors have different lengths.
    pub fn new(labels: Vec<L>, encoded: Vec<BitString>) -> Self {
        assert_eq!(labels.len(), encoded.len(), "labels/encodings mismatch");
        Labeling { labels, encoded }
    }

    /// Wraps raw labels without encodings (adversarial experiments that
    /// don't measure sizes).
    pub fn from_labels(labels: Vec<L>) -> Self {
        let encoded = labels.iter().map(|_| BitString::new()).collect();
        Labeling { labels, encoded }
    }

    /// The label of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn label(&self, v: NodeId) -> &L {
        &self.labels[v.index()]
    }

    /// Mutable access (fault injection).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn label_mut(&mut self, v: NodeId) -> &mut L {
        &mut self.labels[v.index()]
    }

    /// All labels.
    pub fn labels(&self) -> &[L] {
        &self.labels
    }

    /// The scheme size on this instance: maximum encoded label length in
    /// bits.
    pub fn max_label_bits(&self) -> usize {
        self.encoded.iter().map(BitString::len).max().unwrap_or(0)
    }

    /// Sum of all label lengths in bits.
    pub fn total_bits(&self) -> usize {
        self.encoded.iter().map(BitString::len).sum()
    }

    /// The encoding of node `v`'s label.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn encoded(&self, v: NodeId) -> &BitString {
        &self.encoded[v.index()]
    }
}

/// The outcome of running the verifier at every node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// Nodes whose verifier output 0, in id order.
    pub rejecting: Vec<NodeId>,
    /// Number of nodes checked.
    pub num_nodes: usize,
}

impl Verdict {
    /// Whether every node accepted.
    pub fn accepted(&self) -> bool {
        self.rejecting.is_empty()
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.accepted() {
            write!(f, "accepted by all {} nodes", self.num_nodes)
        } else {
            write!(
                f,
                "rejected at {} of {} nodes",
                self.rejecting.len(),
                self.num_nodes
            )
        }
    }
}

/// A proof labeling scheme: a marker plus a local verifier.
pub trait ProofLabelingScheme {
    /// Node state type of the configuration graphs this scheme covers.
    type State;
    /// Label type.
    type Label: Clone;

    /// The marker `M`: labels a configuration satisfying the predicate.
    ///
    /// # Errors
    ///
    /// Returns [`MarkerError`] when the configuration does not satisfy the
    /// scheme's predicate (no correct labeling exists).
    fn marker(&self, cfg: &ConfigGraph<Self::State>) -> Result<Labeling<Self::Label>, MarkerError>;

    /// The verifier `V` at one node, on its local view only.
    fn verify(&self, view: &LocalView<'_, Self::State, Self::Label>) -> bool;

    /// Runs the verifier at every node.
    fn verify_all(
        &self,
        cfg: &ConfigGraph<Self::State>,
        labeling: &Labeling<Self::Label>,
    ) -> Verdict {
        let n = cfg.graph().num_nodes();
        let mut rejecting = Vec::new();
        for i in 0..n {
            let v = NodeId::from_index(i);
            let view = local_view(cfg, labeling.labels(), v);
            if !self.verify(&view) {
                rejecting.push(v);
            }
        }
        Verdict {
            rejecting,
            num_nodes: n,
        }
    }

    /// Runs the verifier at every node across `threads` OS threads.
    ///
    /// Verification is embarrassingly parallel — each node's check reads
    /// only its local view — which is the paper's whole point; this method
    /// makes that literal on a multicore host. Produces exactly the same
    /// verdict as [`ProofLabelingScheme::verify_all`].
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    fn verify_all_parallel(
        &self,
        cfg: &ConfigGraph<Self::State>,
        labeling: &Labeling<Self::Label>,
        threads: usize,
    ) -> Verdict
    where
        Self: Sync,
        Self::State: Sync,
        Self::Label: Sync,
    {
        assert!(threads > 0, "need at least one thread");
        let n = cfg.graph().num_nodes();
        let chunk = n.div_ceil(threads.min(n.max(1)));
        let mut rejecting = Vec::new();
        if n == 0 {
            return Verdict {
                rejecting,
                num_nodes: 0,
            };
        }
        let partials = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for lo in (0..n).step_by(chunk) {
                let hi = (lo + chunk).min(n);
                handles.push(scope.spawn(move || {
                    let mut local = Vec::new();
                    for i in lo..hi {
                        let v = NodeId::from_index(i);
                        let view = local_view(cfg, labeling.labels(), v);
                        if !self.verify(&view) {
                            local.push(v);
                        }
                    }
                    local
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("verifier threads do not panic"))
                .collect::<Vec<_>>()
        });
        for mut part in partials {
            rejecting.append(&mut part);
        }
        rejecting.sort();
        Verdict {
            rejecting,
            num_nodes: n,
        }
    }
}

/// Builds the local view `N_L(v)` for one node.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the node count or `v` is out of
/// range.
pub fn local_view<'a, S, L>(
    cfg: &'a ConfigGraph<S>,
    labels: &'a [L],
    v: NodeId,
) -> LocalView<'a, S, L> {
    assert_eq!(
        labels.len(),
        cfg.graph().num_nodes(),
        "one label per node required"
    );
    let neighbors = cfg
        .graph()
        .neighbors(v)
        .map(|nb| NeighborView {
            port: nb.port,
            weight: nb.weight,
            label: &labels[nb.node.index()],
        })
        .collect();
    LocalView {
        node: v,
        state: cfg.state(v),
        label: &labels[v.index()],
        neighbors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstv_graph::{Graph, TreeState};

    #[test]
    fn labeling_accessors() {
        let mut bits = BitString::new();
        bits.push_bits(5, 3);
        let l = Labeling::new(vec![10u64, 20], vec![bits, BitString::new()]);
        assert_eq!(*l.label(NodeId(0)), 10);
        assert_eq!(l.labels(), &[10, 20]);
        assert_eq!(l.max_label_bits(), 3);
        assert_eq!(l.total_bits(), 3);
        assert_eq!(l.encoded(NodeId(1)).len(), 0);
    }

    #[test]
    fn labeling_from_labels_has_no_size() {
        let l = Labeling::from_labels(vec![1u8, 2, 3]);
        assert_eq!(l.max_label_bits(), 0);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn labeling_length_mismatch() {
        let _ = Labeling::new(vec![1u8], vec![]);
    }

    #[test]
    fn verdict_display() {
        let ok = Verdict {
            rejecting: vec![],
            num_nodes: 4,
        };
        assert!(ok.accepted());
        assert_eq!(ok.to_string(), "accepted by all 4 nodes");
        let bad = Verdict {
            rejecting: vec![NodeId(2)],
            num_nodes: 4,
        };
        assert!(!bad.accepted());
        assert_eq!(bad.to_string(), "rejected at 1 of 4 nodes");
    }

    #[test]
    fn local_view_exposes_ports_weights_labels() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), Weight(4)).unwrap();
        g.add_edge(NodeId(0), NodeId(2), Weight(9)).unwrap();
        let cfg = ConfigGraph::new(
            g,
            vec![
                TreeState::root(0),
                TreeState::child(1, Port(0)),
                TreeState::child(2, Port(0)),
            ],
        )
        .unwrap();
        let labels = vec!["a", "b", "c"];
        let view = local_view(&cfg, &labels, NodeId(0));
        assert_eq!(view.neighbors.len(), 2);
        assert_eq!(view.neighbors[0].weight, Weight(4));
        assert_eq!(*view.neighbors[1].label, "c");
        assert_eq!(*view.label, "a");
        assert!(view.neighbor_at(Port(1)).is_some());
        assert!(view.neighbor_at(Port(2)).is_none());
        let leaf = local_view(&cfg, &labels, NodeId(2));
        assert_eq!(leaf.neighbors.len(), 1);
        assert_eq!(leaf.neighbors[0].weight, Weight(9));
        assert_eq!(*leaf.neighbors[0].label, "a");
    }

    #[test]
    fn parallel_verification_matches_sequential() {
        use crate::{mst_configuration, MstScheme, ProofLabelingScheme};
        use mstv_graph::gen;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(1);
        for seed in 0..4 {
            let g = gen::random_connected(
                40,
                80,
                gen::WeightDist::Uniform { max: 200 },
                &mut StdRng::seed_from_u64(seed),
            );
            let mut cfg = mst_configuration(g);
            let scheme = MstScheme::new();
            let labeling = scheme.marker(&cfg).unwrap();
            for threads in [1usize, 2, 7, 64] {
                assert_eq!(
                    scheme.verify_all_parallel(&cfg, &labeling, threads),
                    scheme.verify_all(&cfg, &labeling),
                    "threads={threads}"
                );
            }
            // And on a faulty network (non-empty rejection set, ordered).
            if crate::faults::break_minimality(&mut cfg, &mut rng).is_some() {
                let seq = scheme.verify_all(&cfg, &labeling);
                assert!(!seq.accepted());
                assert_eq!(scheme.verify_all_parallel(&cfg, &labeling, 4), seq);
            }
        }
    }

    #[test]
    fn marker_error_display() {
        let e = MarkerError {
            reason: "not a tree".into(),
        };
        assert_eq!(e.to_string(), "predicate does not hold: not a tree");
    }
}
