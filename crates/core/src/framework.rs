//! The proof labeling scheme framework (Section 2 of the paper).
//!
//! A proof labeling scheme `π = (M, V)` for a predicate `f` over
//! configuration graphs consists of a (possibly centralized) **marker**
//! `M`, assigning a label to every node, and a **local verifier** `V`,
//! run independently at each node with input `N_L(v)` — the node's own
//! state and label plus, for each incident edge, its port number, its
//! weight, and the *label* (not the state!) of the neighbor. Correctness:
//!
//! 1. if `f` holds, the marker's labels make every verifier accept;
//! 2. if `f` fails, **every** possible label assignment makes at least one
//!    verifier reject.
//!
//! [`LocalView`] reifies `N_L(v)` so that verifier implementations are
//! structurally prevented from peeking at remote information.

use mstv_graph::{ConfigGraph, EdgeId, NodeId, Port, Weight};
use mstv_labels::BitString;
use std::error::Error;
use std::fmt;

/// What a verifier sees of one neighbor: port, edge weight, and the
/// neighbor's label — exactly the fields of `N_L(v)` in the paper.
#[derive(Debug, Clone, Copy)]
pub struct NeighborView<'a, L> {
    /// The local port number of the connecting edge.
    pub port: Port,
    /// The weight of the connecting edge.
    pub weight: Weight,
    /// The neighbor's label.
    pub label: &'a L,
}

/// The complete verifier input `N_L(v)` at one node.
#[derive(Debug, Clone)]
pub struct LocalView<'a, S, L> {
    /// The node (for diagnostics only; verifiers must not use it as data —
    /// identities live in states).
    pub node: NodeId,
    /// The node's own state.
    pub state: &'a S,
    /// The node's own label.
    pub label: &'a L,
    /// One entry per incident edge, in port order.
    pub neighbors: Vec<NeighborView<'a, L>>,
}

impl<S, L> LocalView<'_, S, L> {
    /// The neighbor entry behind a port, if the port exists.
    pub fn neighbor_at(&self, port: Port) -> Option<&NeighborView<'_, L>> {
        self.neighbors.get(port.index())
    }
}

/// Error returned by a marker asked to label a configuration that does not
/// satisfy the scheme's predicate.
///
/// Fault-injection experiments match on the variant: a weight corruption
/// that voids minimality surfaces as [`MarkerError::NotMinimum`] with the
/// witnessing non-tree edge, while a pointer corruption that breaks the
/// tree structure surfaces as [`MarkerError::NotSpanning`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MarkerError {
    /// The states do not induce a rooted spanning tree of the graph.
    NotSpanning,
    /// The induced tree spans but is not minimum: the witness non-tree
    /// edge is strictly lighter than the heaviest tree edge on its cycle.
    NotMinimum {
        /// A non-tree edge violating the cycle property.
        witness_edge: EdgeId,
    },
    /// The states are malformed for the scheme's family in some other way
    /// (disagreeing agreement states, a state that is not a valid label of
    /// the implicit family, ...).
    BadStates(String),
}

impl MarkerError {
    /// Convenience constructor for the free-form variant.
    pub fn bad_states(reason: impl Into<String>) -> Self {
        MarkerError::BadStates(reason.into())
    }
}

impl fmt::Display for MarkerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarkerError::NotSpanning => {
                write!(f, "predicate does not hold: states do not induce a spanning tree")
            }
            MarkerError::NotMinimum { witness_edge } => write!(
                f,
                "predicate does not hold: tree is not minimum (witness non-tree edge {witness_edge})"
            ),
            MarkerError::BadStates(reason) => {
                write!(f, "predicate does not hold: {reason}")
            }
        }
    }
}

impl Error for MarkerError {}

/// Error returned by [`try_local_view`] when the requested view cannot be
/// assembled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewError {
    /// The label vector does not have one entry per node.
    LabelCountMismatch {
        /// Number of labels supplied.
        labels: usize,
        /// Number of nodes in the graph.
        nodes: usize,
    },
    /// The requested node is not in the graph.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Number of nodes in the graph.
        nodes: usize,
    },
}

impl fmt::Display for ViewError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViewError::LabelCountMismatch { labels, nodes } => {
                write!(f, "{labels} labels for {nodes} nodes")
            }
            ViewError::NodeOutOfRange { node, nodes } => {
                write!(f, "node {node} out of range for {nodes} nodes")
            }
        }
    }
}

impl Error for ViewError {}

/// A complete label assignment for one configuration graph, together with
/// the exact bit encoding of every label (for honest size accounting).
#[derive(Debug, Clone)]
pub struct Labeling<L> {
    labels: Vec<L>,
    encoded: Vec<BitString>,
}

impl<L> Labeling<L> {
    /// Pairs structured labels with their bit encodings.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors have different lengths.
    pub fn new(labels: Vec<L>, encoded: Vec<BitString>) -> Self {
        assert_eq!(labels.len(), encoded.len(), "labels/encodings mismatch");
        Labeling { labels, encoded }
    }

    /// Wraps raw labels without encodings (adversarial experiments that
    /// don't measure sizes).
    pub fn from_labels(labels: Vec<L>) -> Self {
        let encoded = labels.iter().map(|_| BitString::new()).collect();
        Labeling { labels, encoded }
    }

    /// The label of node `v`, or `None` if `v` is out of range.
    pub fn try_label(&self, v: NodeId) -> Option<&L> {
        self.labels.get(v.index())
    }

    /// The label of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range; [`Labeling::try_label`] is the
    /// non-panicking variant.
    pub fn label(&self, v: NodeId) -> &L {
        self.try_label(v).unwrap_or_else(|| {
            panic!(
                "no label for {v}: labeling covers {} nodes",
                self.labels.len()
            )
        })
    }

    /// Mutable access (fault injection).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn label_mut(&mut self, v: NodeId) -> &mut L {
        &mut self.labels[v.index()]
    }

    /// All labels.
    pub fn labels(&self) -> &[L] {
        &self.labels
    }

    /// The scheme size on this instance: maximum encoded label length in
    /// bits.
    pub fn max_label_bits(&self) -> usize {
        self.encoded.iter().map(BitString::len).max().unwrap_or(0)
    }

    /// Sum of all label lengths in bits.
    pub fn total_bits(&self) -> usize {
        self.encoded.iter().map(BitString::len).sum()
    }

    /// The encoding of node `v`'s label, or `None` if `v` is out of range.
    pub fn try_encoded(&self, v: NodeId) -> Option<&BitString> {
        self.encoded.get(v.index())
    }

    /// The encoding of node `v`'s label.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range; [`Labeling::try_encoded`] is the
    /// non-panicking variant.
    pub fn encoded(&self, v: NodeId) -> &BitString {
        self.try_encoded(v).unwrap_or_else(|| {
            panic!(
                "no encoding for {v}: labeling covers {} nodes",
                self.encoded.len()
            )
        })
    }
}

/// The outcome of running the verifier at every node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// Nodes whose verifier output 0, in id order.
    pub rejecting: Vec<NodeId>,
    /// Number of nodes checked.
    pub num_nodes: usize,
}

impl Verdict {
    /// Whether every node accepted.
    pub fn accepted(&self) -> bool {
        self.rejecting.is_empty()
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.accepted() {
            write!(f, "accepted by all {} nodes", self.num_nodes)
        } else {
            write!(
                f,
                "rejected at {} of {} nodes",
                self.rejecting.len(),
                self.num_nodes
            )
        }
    }
}

/// Thread-count policy for [`ProofLabelingScheme::verify_all_parallel`]
/// and the parallel marker pipeline.
///
/// The type now lives in `mstv-trees` (the marker's parallel decomposition
/// needs it below this crate in the stack); this re-export keeps
/// `mstv_core::ParallelConfig` working unchanged.
pub use mstv_trees::ParallelConfig;

/// A proof labeling scheme: a marker plus a local verifier.
pub trait ProofLabelingScheme {
    /// Node state type of the configuration graphs this scheme covers.
    type State;
    /// Label type.
    type Label: Clone;

    /// The marker `M`: labels a configuration satisfying the predicate.
    ///
    /// # Errors
    ///
    /// Returns [`MarkerError`] when the configuration does not satisfy the
    /// scheme's predicate (no correct labeling exists).
    fn marker(&self, cfg: &ConfigGraph<Self::State>) -> Result<Labeling<Self::Label>, MarkerError>;

    /// The verifier `V` at one node, on its local view only.
    fn verify(&self, view: &LocalView<'_, Self::State, Self::Label>) -> bool;

    /// Runs the verifier at every node.
    ///
    /// # Panics
    ///
    /// Panics if the labeling does not cover every node (see
    /// [`try_local_view`]).
    fn verify_all(
        &self,
        cfg: &ConfigGraph<Self::State>,
        labeling: &Labeling<Self::Label>,
    ) -> Verdict {
        let n = cfg.graph().num_nodes();
        let mut rejecting = Vec::new();
        for i in 0..n {
            let v = NodeId::from_index(i);
            let view = try_local_view(cfg, labeling.labels(), v)
                .unwrap_or_else(|e| panic!("cannot build local view: {e}"));
            if !self.verify(&view) {
                rejecting.push(v);
            }
        }
        Verdict {
            rejecting,
            num_nodes: n,
        }
    }

    /// Runs the verifier at every node across a pool of OS threads sized
    /// by `config` (default: the host's available parallelism).
    ///
    /// Verification is embarrassingly parallel — each node's check reads
    /// only its local view — which is the paper's whole point; this method
    /// makes that literal on a multicore host. Produces exactly the same
    /// verdict as [`ProofLabelingScheme::verify_all`].
    ///
    /// # Panics
    ///
    /// Panics if the labeling does not cover every node (see
    /// [`try_local_view`]).
    fn verify_all_parallel(
        &self,
        cfg: &ConfigGraph<Self::State>,
        labeling: &Labeling<Self::Label>,
        config: ParallelConfig,
    ) -> Verdict
    where
        Self: Sync,
        Self::State: Sync,
        Self::Label: Sync,
    {
        let threads = config.resolved_threads().get();
        let n = cfg.graph().num_nodes();
        let chunk = n.div_ceil(threads.min(n.max(1)));
        let mut rejecting = Vec::new();
        if n == 0 {
            return Verdict {
                rejecting,
                num_nodes: 0,
            };
        }
        let partials = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for lo in (0..n).step_by(chunk) {
                let hi = (lo + chunk).min(n);
                handles.push(scope.spawn(move || {
                    let mut local = Vec::new();
                    for i in lo..hi {
                        let v = NodeId::from_index(i);
                        let view = try_local_view(cfg, labeling.labels(), v)
                            .unwrap_or_else(|e| panic!("cannot build local view: {e}"));
                        if !self.verify(&view) {
                            local.push(v);
                        }
                    }
                    local
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("verifier threads do not panic"))
                .collect::<Vec<_>>()
        });
        for mut part in partials {
            rejecting.append(&mut part);
        }
        rejecting.sort();
        Verdict {
            rejecting,
            num_nodes: n,
        }
    }
}

/// Builds the local view `N_L(v)` for one node, or reports why it cannot
/// be built.
///
/// # Errors
///
/// Returns [`ViewError::LabelCountMismatch`] when `labels` does not have
/// one entry per node, and [`ViewError::NodeOutOfRange`] when `v` is not a
/// node of the graph.
pub fn try_local_view<'a, S, L>(
    cfg: &'a ConfigGraph<S>,
    labels: &'a [L],
    v: NodeId,
) -> Result<LocalView<'a, S, L>, ViewError> {
    let nodes = cfg.graph().num_nodes();
    if labels.len() != nodes {
        return Err(ViewError::LabelCountMismatch {
            labels: labels.len(),
            nodes,
        });
    }
    if v.index() >= nodes {
        return Err(ViewError::NodeOutOfRange { node: v, nodes });
    }
    let neighbors = cfg
        .graph()
        .neighbors(v)
        .map(|nb| NeighborView {
            port: nb.port,
            weight: nb.weight,
            label: &labels[nb.node.index()],
        })
        .collect();
    Ok(LocalView {
        node: v,
        state: cfg.state(v),
        label: &labels[v.index()],
        neighbors,
    })
}

/// Builds the local view `N_L(v)` for one node.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the node count or `v` is out of
/// range; [`try_local_view`] is the non-panicking variant.
pub fn local_view<'a, S, L>(
    cfg: &'a ConfigGraph<S>,
    labels: &'a [L],
    v: NodeId,
) -> LocalView<'a, S, L> {
    try_local_view(cfg, labels, v).unwrap_or_else(|e| panic!("cannot build local view: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstv_graph::{Graph, TreeState};
    use std::num::NonZeroUsize;

    #[test]
    fn labeling_accessors() {
        let mut bits = BitString::new();
        bits.push_bits(5, 3);
        let l = Labeling::new(vec![10u64, 20], vec![bits, BitString::new()]);
        assert_eq!(*l.label(NodeId(0)), 10);
        assert_eq!(l.labels(), &[10, 20]);
        assert_eq!(l.max_label_bits(), 3);
        assert_eq!(l.total_bits(), 3);
        assert_eq!(l.encoded(NodeId(1)).len(), 0);
    }

    #[test]
    fn labeling_from_labels_has_no_size() {
        let l = Labeling::from_labels(vec![1u8, 2, 3]);
        assert_eq!(l.max_label_bits(), 0);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn labeling_length_mismatch() {
        let _ = Labeling::new(vec![1u8], vec![]);
    }

    #[test]
    fn verdict_display() {
        let ok = Verdict {
            rejecting: vec![],
            num_nodes: 4,
        };
        assert!(ok.accepted());
        assert_eq!(ok.to_string(), "accepted by all 4 nodes");
        let bad = Verdict {
            rejecting: vec![NodeId(2)],
            num_nodes: 4,
        };
        assert!(!bad.accepted());
        assert_eq!(bad.to_string(), "rejected at 1 of 4 nodes");
    }

    #[test]
    fn local_view_exposes_ports_weights_labels() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), Weight(4)).unwrap();
        g.add_edge(NodeId(0), NodeId(2), Weight(9)).unwrap();
        let cfg = ConfigGraph::new(
            g,
            vec![
                TreeState::root(0),
                TreeState::child(1, Port(0)),
                TreeState::child(2, Port(0)),
            ],
        )
        .unwrap();
        let labels = vec!["a", "b", "c"];
        let view = local_view(&cfg, &labels, NodeId(0));
        assert_eq!(view.neighbors.len(), 2);
        assert_eq!(view.neighbors[0].weight, Weight(4));
        assert_eq!(*view.neighbors[1].label, "c");
        assert_eq!(*view.label, "a");
        assert!(view.neighbor_at(Port(1)).is_some());
        assert!(view.neighbor_at(Port(2)).is_none());
        let leaf = local_view(&cfg, &labels, NodeId(2));
        assert_eq!(leaf.neighbors.len(), 1);
        assert_eq!(leaf.neighbors[0].weight, Weight(9));
        assert_eq!(*leaf.neighbors[0].label, "a");
    }

    #[test]
    fn parallel_verification_matches_sequential() {
        use crate::{mst_configuration, MstScheme, ProofLabelingScheme};
        use mstv_graph::gen;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(1);
        for seed in 0..4 {
            let g = gen::random_connected(
                40,
                80,
                gen::WeightDist::Uniform { max: 200 },
                &mut StdRng::seed_from_u64(seed),
            );
            let mut cfg = mst_configuration(g);
            let scheme = MstScheme::new();
            let labeling = scheme.marker(&cfg).unwrap();
            for threads in [1usize, 2, 7, 64] {
                let config = ParallelConfig::with_threads(NonZeroUsize::new(threads).unwrap());
                assert_eq!(
                    scheme.verify_all_parallel(&cfg, &labeling, config),
                    scheme.verify_all(&cfg, &labeling),
                    "threads={threads}"
                );
            }
            // The default configuration sizes itself from the host.
            assert_eq!(
                scheme.verify_all_parallel(&cfg, &labeling, ParallelConfig::default()),
                scheme.verify_all(&cfg, &labeling),
            );
            // And on a faulty network (non-empty rejection set, ordered).
            if crate::faults::break_minimality(&mut cfg, &mut rng).is_some() {
                let seq = scheme.verify_all(&cfg, &labeling);
                assert!(!seq.accepted());
                let four = ParallelConfig::from(NonZeroUsize::new(4).unwrap());
                assert_eq!(scheme.verify_all_parallel(&cfg, &labeling, four), seq);
            }
        }
    }

    #[test]
    fn marker_error_display() {
        assert_eq!(
            MarkerError::NotSpanning.to_string(),
            "predicate does not hold: states do not induce a spanning tree"
        );
        let e = MarkerError::NotMinimum {
            witness_edge: EdgeId(7),
        };
        assert_eq!(
            e.to_string(),
            "predicate does not hold: tree is not minimum (witness non-tree edge e7)"
        );
        let e = MarkerError::bad_states("not a tree");
        assert_eq!(e.to_string(), "predicate does not hold: not a tree");
    }

    #[test]
    fn try_local_view_reports_errors() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId(0), NodeId(1), Weight(3)).unwrap();
        let cfg =
            ConfigGraph::new(g, vec![TreeState::root(0), TreeState::child(1, Port(0))]).unwrap();
        let labels = vec!["a"];
        match try_local_view(&cfg, &labels, NodeId(0)) {
            Err(ViewError::LabelCountMismatch {
                labels: 1,
                nodes: 2,
            }) => {}
            other => panic!("expected LabelCountMismatch, got {other:?}"),
        }
        let labels = vec!["a", "b"];
        match try_local_view(&cfg, &labels, NodeId(9)) {
            Err(ViewError::NodeOutOfRange {
                node: NodeId(9),
                nodes: 2,
            }) => {}
            other => panic!("expected NodeOutOfRange, got {other:?}"),
        }
        assert!(try_local_view(&cfg, &labels, NodeId(1)).is_ok());
    }

    #[test]
    fn try_labeling_accessors() {
        let l = Labeling::from_labels(vec![10u64, 20]);
        assert_eq!(l.try_label(NodeId(1)), Some(&20));
        assert_eq!(l.try_label(NodeId(2)), None);
        assert!(l.try_encoded(NodeId(0)).is_some());
        assert!(l.try_encoded(NodeId(5)).is_none());
    }
}
