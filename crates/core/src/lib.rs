//! Proof labeling schemes for distributed MST verification — the primary
//! contribution of Korman & Kutten, *Distributed Verification of Minimum
//! Spanning Trees* (PODC 2006).
//!
//! A proof labeling scheme lets every node of a network check a global
//! predicate by comparing its own `O(log n log W)`-bit label with its
//! neighbors' labels, in a single communication round. This crate
//! provides:
//!
//! * the generic framework ([`ProofLabelingScheme`], [`LocalView`],
//!   [`Labeling`], [`Verdict`]);
//! * [`MstScheme`] (`π_mst`, Theorem 3.4) — the paper's
//!   `O(log n log W)`-bit scheme for *"the marked edges form an MST"*;
//! * [`PiGammaScheme`] (`π_Γ`, Lemma 3.3) — verifying that node states are
//!   the labels of some implicit `MAX` labeling scheme;
//! * [`SpanningTreeScheme`] — the `O(log n)` spanning-tree proof;
//! * [`BoruvkaScheme`] — the previous `O(log² n + log n log W)` fragment
//!   hierarchy scheme, as the comparison baseline;
//! * [`AgreementScheme`] (Lemma 2.2) — the `Θ(m)` warm-up example with an
//!   executable pigeonhole lower bound;
//! * fault injection ([`faults`]) for the soundness and self-stabilization
//!   experiments.
//!
//! ```
//! use mstv_graph::gen;
//! use mstv_core::{mst_configuration, MstScheme, ProofLabelingScheme};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let g = gen::random_connected(32, 64, gen::WeightDist::Uniform { max: 100 }, &mut rng);
//! let cfg = mst_configuration(g);
//! let scheme = MstScheme::new();
//! let labels = scheme.marker(&cfg)?;
//! assert!(scheme.verify_all(&cfg, &labels).accepted());
//! println!("proof size: {} bits per node", labels.max_label_bits());
//! # Ok::<(), mstv_core::MarkerError>(())
//! ```

mod agreement;
mod boruvka_scheme;
mod combine;
pub mod faults;
mod framework;
pub mod metrics;
mod mst_scheme;
mod pi_dist;
mod pi_flow;
mod pi_gamma;
pub mod session;
mod span;
mod spt_scheme;
mod universal;

pub use agreement::{forge_agreement, AgreementForgery, AgreementScheme};
pub use boruvka_scheme::{encode_boruvka_label, BoruvkaLabel, BoruvkaScheme, PhaseInfo};
pub use combine::BothSchemes;
pub use framework::{
    local_view, try_local_view, Labeling, LocalView, MarkerError, NeighborView, ParallelConfig,
    ProofLabelingScheme, Verdict, ViewError,
};
pub use metrics::{Histogram, LatencyHistogram, MessageCost, ServeMetrics, SessionMetrics};
pub use mst_scheme::{
    decode_mst_label, encode_mst_label, mst_configuration, MstLabel, MstRejectReason, MstScheme,
};
pub use pi_dist::{check_dist_conditions, DistParts, PiDistLabel, PiDistScheme, PiDistState};
pub use pi_flow::{
    check_flow_conditions, max_st_configuration, FlowParts, MaxStLabel, MaxStScheme,
};
pub use pi_gamma::{
    check_gamma_conditions, encode_pi_gamma, orient_field_of, orient_fields,
    reconstruct_decomposition, GammaParts, Orient, PiGammaLabel, PiGammaScheme, PiGammaState,
};
pub use session::{Mutation, VerifySession};
pub use span::{check_span, span_labels, SpanCodec, SpanLabel, SpanningTreeScheme};
pub use spt_scheme::{spt_configuration, SptLabel, SptScheme};
pub use universal::{encode_map, UniversalLabel, UniversalScheme};
