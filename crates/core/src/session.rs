//! Incremental re-verification sessions.
//!
//! The paper's central observation is that verification is *local*: node
//! `v`'s verdict is a pure function of `N_L(v)` — its own state and
//! label, plus the port, weight, and neighbor **label** of each incident
//! edge. A small mutation therefore invalidates only a small **dirty
//! frontier** of cached verdicts:
//!
//! | mutation                    | who can see it             | frontier     |
//! |-----------------------------|----------------------------|--------------|
//! | edge weight change on `e`   | the two endpoints of `e`   | `{u, v}`     |
//! | label change at `v`         | `v` and everyone who reads | `{v} ∪ N(v)` |
//! |                             | `v`'s label — its neighbors|              |
//! | state change at `v` (e.g. a | only `v` itself — states   | `{v}`        |
//! | flipped parent pointer)     | are invisible to neighbors |              |
//!
//! [`VerifySession`] owns a configuration and a labeling, runs one full
//! pass, then keeps the [`Verdict`] current across a stream of
//! [`Mutation`]s by re-running verifiers on dirty frontiers only —
//! the mechanism the self-stabilizing follow-up work exploits, here as a
//! long-lived query-serving handle. Every pass is recorded in a
//! [`SessionMetrics`] block so experiments can report exactly how much
//! work incrementality avoided.

use std::collections::BTreeSet;
use std::time::Instant;

use mstv_graph::{ConfigGraph, EdgeId, GraphError, NodeId, ParentPointer, Port, Weight};

use crate::framework::{try_local_view, Labeling, MarkerError, ProofLabelingScheme, Verdict};
use crate::metrics::SessionMetrics;

/// A single replayable edit to the configuration or its labeling.
///
/// The label payload of [`Mutation::CorruptLabel`] is carried in the
/// mutation itself, so a mutation script is self-contained and can be
/// replayed against a fresh session.
#[derive(Debug, Clone, PartialEq)]
pub enum Mutation<L> {
    /// Replace the weight of an edge. Frontier: the two endpoints.
    SetWeight {
        /// The edge to reweight.
        edge: EdgeId,
        /// The new (positive) weight.
        weight: Weight,
    },
    /// Overwrite the label of a node — the adversary of the PLS
    /// soundness game. Frontier: the node and all its neighbors.
    CorruptLabel {
        /// The node whose label is replaced.
        node: NodeId,
        /// The replacement label.
        label: L,
    },
    /// Repoint a node's parent pointer (or make it a root), flipping
    /// which tree edge its state induces. Frontier: the node itself —
    /// states are invisible to neighboring verifiers.
    FlipTreeEdge {
        /// The node whose pointer moves.
        node: NodeId,
        /// The new parent port (`None` = become a root).
        new_parent: Option<Port>,
    },
    /// Restore a node's label to the marker's original assignment.
    /// Frontier: the node and all its neighbors.
    RestoreLabel {
        /// The node whose label is restored.
        node: NodeId,
    },
}

/// A long-lived incremental verification handle.
///
/// # Example
///
/// ```
/// use mstv_core::{mst_configuration, MstScheme, VerifySession};
/// use mstv_graph::{Graph, NodeId, Weight};
///
/// let mut g = Graph::new(3);
/// g.add_edge(NodeId(0), NodeId(1), Weight(1)).unwrap();
/// g.add_edge(NodeId(1), NodeId(2), Weight(2)).unwrap();
/// let cfg = mst_configuration(g);
///
/// let mut session = VerifySession::new(MstScheme::new(), cfg).unwrap();
/// assert!(session.verdict().accepted());
///
/// // Corrupt one label: only that node and its neighbors re-verify.
/// let forged = session.labeling().label(NodeId(2)).clone();
/// session.corrupt_label(NodeId(0), forged);
/// assert!(!session.verdict().accepted());
///
/// session.restore_label(NodeId(0));
/// assert!(session.verdict().accepted());
/// assert!(session.metrics().nodes_skipped > 0);
/// ```
pub struct VerifySession<P: ProofLabelingScheme> {
    scheme: P,
    cfg: ConfigGraph<P::State>,
    labeling: Labeling<P::Label>,
    pristine: Vec<P::Label>,
    passing: Vec<bool>,
    metrics: SessionMetrics,
}

impl<P: ProofLabelingScheme> VerifySession<P>
where
    P::Label: Clone,
{
    /// Labels `cfg` with the scheme's marker and runs the initial full
    /// verification pass.
    ///
    /// # Errors
    ///
    /// Returns the marker's [`MarkerError`] when `cfg` does not satisfy
    /// the scheme's predicate (no session exists in that case; use
    /// [`VerifySession::with_labeling`] to study arbitrary label
    /// assignments on arbitrary configurations).
    pub fn new(scheme: P, cfg: ConfigGraph<P::State>) -> Result<Self, MarkerError> {
        let mut metrics = SessionMetrics::new();
        let t0 = Instant::now();
        let labeling = scheme.marker(&cfg)?;
        metrics.add_marker_time(t0.elapsed());
        Ok(Self::start(scheme, cfg, labeling, metrics))
    }

    /// Starts a session from an externally produced labeling (possibly
    /// adversarial) and runs the initial full verification pass.
    ///
    /// # Panics
    ///
    /// Panics if the labeling does not have one label per node.
    pub fn with_labeling(
        scheme: P,
        cfg: ConfigGraph<P::State>,
        labeling: Labeling<P::Label>,
    ) -> Self {
        Self::start(scheme, cfg, labeling, SessionMetrics::new())
    }

    fn start(
        scheme: P,
        cfg: ConfigGraph<P::State>,
        labeling: Labeling<P::Label>,
        mut metrics: SessionMetrics,
    ) -> Self {
        assert_eq!(
            labeling.labels().len(),
            cfg.graph().num_nodes(),
            "one label per node required"
        );
        metrics.max_label_bits = labeling.max_label_bits() as u64;
        metrics.total_label_bits = labeling.total_bits() as u64;
        let pristine = labeling.labels().to_vec();
        let mut session = VerifySession {
            scheme,
            cfg,
            labeling,
            pristine,
            passing: Vec::new(),
            metrics,
        };
        session.full_verify();
        session
    }

    /// The current verdict, as maintained incrementally.
    pub fn verdict(&self) -> Verdict {
        Verdict {
            rejecting: self
                .passing
                .iter()
                .enumerate()
                .filter(|&(_, &ok)| !ok)
                .map(|(i, _)| NodeId::from_index(i))
                .collect(),
            num_nodes: self.passing.len(),
        }
    }

    /// The configuration under verification.
    pub fn config(&self) -> &ConfigGraph<P::State> {
        &self.cfg
    }

    /// The current (possibly corrupted) labeling.
    pub fn labeling(&self) -> &Labeling<P::Label> {
        &self.labeling
    }

    /// The scheme driving this session.
    pub fn scheme(&self) -> &P {
        &self.scheme
    }

    /// The metrics collected so far.
    pub fn metrics(&self) -> &SessionMetrics {
        &self.metrics
    }

    /// Releases the configuration and labeling.
    pub fn into_parts(self) -> (ConfigGraph<P::State>, Labeling<P::Label>) {
        (self.cfg, self.labeling)
    }

    /// Re-runs the verifier at **every** node from scratch, refreshing
    /// every cached verdict. Called once at construction; callers can use
    /// it to cross-check the incremental state.
    pub fn full_verify(&mut self) -> Verdict {
        let n = self.cfg.graph().num_nodes();
        let t0 = Instant::now();
        self.passing = (0..n)
            .map(|i| self.check_node(NodeId::from_index(i)))
            .collect();
        self.metrics.add_verify_time(t0.elapsed());
        self.metrics.full_runs += 1;
        self.metrics.nodes_verified += n as u64;
        self.verdict()
    }

    /// Applies one [`Mutation`] and refreshes exactly its dirty frontier.
    ///
    /// Returns the updated verdict.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] (leaving configuration, labeling, and
    /// cached verdicts unchanged) when the mutation references an edge,
    /// node, or port that does not exist, or a zero weight.
    pub fn apply(&mut self, mutation: Mutation<P::Label>) -> Result<Verdict, GraphError>
    where
        P::State: ParentPointer,
    {
        match mutation {
            Mutation::SetWeight { edge, weight } => self.set_weight(edge, weight),
            Mutation::CorruptLabel { node, label } => {
                self.check_node_id(node)?;
                Ok(self.corrupt_label(node, label))
            }
            Mutation::FlipTreeEdge { node, new_parent } => self.flip_tree_edge(node, new_parent),
            Mutation::RestoreLabel { node } => {
                self.check_node_id(node)?;
                Ok(self.restore_label(node))
            }
        }
    }

    /// Replaces the weight of `edge` and re-verifies its two endpoints —
    /// the only verifiers whose view contains the weight.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if `edge` is out of range or `weight` is
    /// zero; nothing changes in that case.
    pub fn set_weight(&mut self, edge: EdgeId, weight: Weight) -> Result<Verdict, GraphError> {
        let m = self.cfg.graph().num_edges();
        if edge.index() >= m {
            return Err(GraphError::EdgeOutOfRange { edge, m });
        }
        if weight == Weight::ZERO {
            return Err(GraphError::ZeroWeight);
        }
        let e = self.cfg.graph().edge(edge);
        self.cfg.set_weight(edge, weight);
        Ok(self.finish_mutation([e.u, e.v].into_iter().collect()))
    }

    /// Overwrites the label of `node` (the PLS soundness adversary) and
    /// re-verifies the node plus every neighbor that reads the label.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn corrupt_label(&mut self, node: NodeId, label: P::Label) -> Verdict {
        *self.labeling.label_mut(node) = label;
        self.finish_mutation(self.label_frontier(node))
    }

    /// Overwrites the labels of several nodes at once and re-verifies the
    /// **union** of their frontiers exactly once — the batch form of
    /// [`VerifySession::corrupt_label`] for relabeling sweeps, where an
    /// incremental marker hands over every label a tree repair moved and
    /// per-node calls would re-verify overlapping frontiers repeatedly.
    /// Counts as a single mutation in the metrics.
    ///
    /// # Panics
    ///
    /// Panics if any node is out of range.
    pub fn relabel_batch(
        &mut self,
        updates: impl IntoIterator<Item = (NodeId, P::Label)>,
    ) -> Verdict {
        let mut frontier = BTreeSet::new();
        for (node, label) in updates {
            *self.labeling.label_mut(node) = label;
            frontier.extend(self.label_frontier(node));
        }
        self.finish_mutation(frontier)
    }

    /// Restores the marker's original label at `node` and re-verifies the
    /// node plus its neighbors.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn restore_label(&mut self, node: NodeId) -> Verdict {
        *self.labeling.label_mut(node) = self.pristine[node.index()].clone();
        self.finish_mutation(self.label_frontier(node))
    }

    /// Edits the label of `node` in place through `f` and re-verifies the
    /// node plus its neighbors. This is the general form of
    /// [`VerifySession::corrupt_label`] for corruption loops that flip
    /// individual label fields.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn mutate_label(&mut self, node: NodeId, f: impl FnOnce(&mut P::Label)) -> Verdict {
        f(self.labeling.label_mut(node));
        self.finish_mutation(self.label_frontier(node))
    }

    /// Edits the **state** of `node` in place through `f` and re-verifies
    /// the node alone: states are invisible to neighboring verifiers, so
    /// the frontier is `{node}`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn mutate_state(&mut self, node: NodeId, f: impl FnOnce(&mut P::State)) -> Verdict {
        f(self.cfg.state_mut(node));
        self.finish_mutation([node].into_iter().collect())
    }

    /// Repoints the parent pointer of `node` and re-verifies the node
    /// alone (a state-only change).
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if `node` is out of range or the port
    /// does not exist at `node`; nothing changes in that case.
    pub fn flip_tree_edge(
        &mut self,
        node: NodeId,
        new_parent: Option<Port>,
    ) -> Result<Verdict, GraphError>
    where
        P::State: ParentPointer,
    {
        self.cfg.retarget_parent(node, new_parent)?;
        Ok(self.finish_mutation([node].into_iter().collect()))
    }

    /// `{node} ∪ N(node)` — the frontier of a label change.
    fn label_frontier(&self, node: NodeId) -> BTreeSet<NodeId> {
        let mut frontier: BTreeSet<NodeId> =
            self.cfg.graph().neighbors(node).map(|nb| nb.node).collect();
        frontier.insert(node);
        frontier
    }

    /// Re-verifies exactly `frontier`, reusing every other cached
    /// verdict, and updates the metrics.
    fn finish_mutation(&mut self, frontier: BTreeSet<NodeId>) -> Verdict {
        let n = self.cfg.graph().num_nodes();
        let t0 = Instant::now();
        for &v in &frontier {
            self.passing[v.index()] = self.check_node(v);
        }
        self.metrics.add_verify_time(t0.elapsed());
        self.metrics.mutations_applied += 1;
        self.metrics.incremental_runs += 1;
        self.metrics.nodes_verified += frontier.len() as u64;
        self.metrics.nodes_skipped += (n - frontier.len()) as u64;
        self.metrics.frontier_sizes.record(frontier.len() as u64);
        self.verdict()
    }

    fn check_node(&self, v: NodeId) -> bool {
        let view = try_local_view(&self.cfg, self.labeling.labels(), v)
            .unwrap_or_else(|e| panic!("cannot build local view: {e}"));
        self.scheme.verify(&view)
    }

    fn check_node_id(&self, v: NodeId) -> Result<(), GraphError> {
        let n = self.cfg.graph().num_nodes();
        if v.index() >= n {
            return Err(GraphError::NodeOutOfRange { node: v, n });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mst_configuration, MstScheme};
    use mstv_graph::{gen, Graph, TreeState};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn session_for(seed: u64, n: usize) -> VerifySession<MstScheme> {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gen::random_connected(n, 2 * n, gen::WeightDist::Uniform { max: 100 }, &mut rng);
        let cfg = mst_configuration(g);
        VerifySession::new(MstScheme::new(), cfg).unwrap()
    }

    #[test]
    fn initial_pass_accepts_and_counts() {
        let s = session_for(1, 20);
        assert!(s.verdict().accepted());
        assert_eq!(s.metrics().full_runs, 1);
        assert_eq!(s.metrics().nodes_verified, 20);
        assert_eq!(s.metrics().incremental_runs, 0);
        assert!(s.metrics().marker_nanos > 0);
        assert!(s.metrics().total_label_bits > 0);
    }

    #[test]
    fn corrupt_and_restore_round_trip() {
        let mut s = session_for(2, 25);
        let forged = s.labeling().label(NodeId(5)).clone();
        let v = s.corrupt_label(NodeId(0), forged);
        // Cross-check the incremental verdict against a scratch pass.
        let scheme = MstScheme::new();
        assert_eq!(v, scheme.verify_all(s.config(), s.labeling()));
        let v = s.restore_label(NodeId(0));
        assert!(v.accepted());
        assert_eq!(s.metrics().mutations_applied, 2);
        assert_eq!(s.metrics().incremental_runs, 2);
        assert!(s.metrics().nodes_skipped > 0);
    }

    #[test]
    fn relabel_batch_verifies_union_frontier_once() {
        // Swapping two labels via the batch call must agree with the
        // scratch verdict, count as one mutation, and verify the union
        // of the two frontiers at most once per node.
        let mut s = session_for(8, 25);
        let (a, b) = (NodeId(3), NodeId(17));
        let (la, lb) = (s.labeling().label(a).clone(), s.labeling().label(b).clone());
        let before = s.metrics().nodes_verified;
        let v = s.relabel_batch([(a, lb.clone()), (b, la.clone())]);
        let scheme = MstScheme::new();
        assert_eq!(v, scheme.verify_all(s.config(), s.labeling()));
        assert_eq!(s.metrics().mutations_applied, 1);
        let union: BTreeSet<NodeId> = [a, b]
            .into_iter()
            .flat_map(|v| {
                let mut f: BTreeSet<NodeId> =
                    s.config().graph().neighbors(v).map(|nb| nb.node).collect();
                f.insert(v);
                f
            })
            .collect();
        assert_eq!(s.metrics().nodes_verified - before, union.len() as u64);
        // Undoing through the same batch path restores acceptance.
        assert!(s.relabel_batch([(a, la), (b, lb)]).accepted());
        // A batch on one node degenerates to corrupt_label's behaviour.
        let forged = s.labeling().label(b).clone();
        let batch = s.relabel_batch([(a, forged.clone())]);
        let mut t = session_for(8, 25);
        let single = t.corrupt_label(a, forged);
        assert_eq!(batch, single);
    }

    #[test]
    fn set_weight_reverifies_endpoints_only() {
        let mut s = session_for(3, 30);
        let before = s.metrics().nodes_verified;
        let v = s.set_weight(EdgeId(0), Weight(1_000_000)).unwrap();
        let delta = s.metrics().nodes_verified - before;
        assert_eq!(delta, 2, "exactly the two endpoints re-verify");
        let scheme = MstScheme::new();
        assert_eq!(v, scheme.verify_all(s.config(), s.labeling()));
    }

    #[test]
    fn set_weight_rejects_bad_inputs_without_side_effects() {
        let mut s = session_for(4, 10);
        let m = s.config().graph().num_edges();
        let before = s.verdict();
        assert!(matches!(
            s.set_weight(EdgeId(m as u32), Weight(5)),
            Err(GraphError::EdgeOutOfRange { .. })
        ));
        assert!(matches!(
            s.set_weight(EdgeId(0), Weight::ZERO),
            Err(GraphError::ZeroWeight)
        ));
        assert_eq!(s.verdict(), before);
        assert_eq!(s.metrics().mutations_applied, 0);
    }

    #[test]
    fn flip_tree_edge_is_state_local() {
        let mut s = session_for(5, 30);
        let node = NodeId(3);
        let degree = s.config().graph().degree(node);
        let old = s.config().state(node).parent_port;
        // Point somewhere else (any port different from the current one).
        let new = (0..degree)
            .map(|p| Some(Port(p as u32)))
            .chain([None])
            .find(|&p| p != old)
            .unwrap();
        let before = s.metrics().nodes_verified;
        let v = s.apply(Mutation::FlipTreeEdge {
            node,
            new_parent: new,
        });
        let v = v.unwrap();
        assert_eq!(s.metrics().nodes_verified - before, 1);
        let scheme = MstScheme::new();
        assert_eq!(v, scheme.verify_all(s.config(), s.labeling()));
    }

    #[test]
    fn flip_tree_edge_rejects_missing_port() {
        let mut s = session_for(6, 10);
        let node = NodeId(0);
        let degree = s.config().graph().degree(node);
        assert!(s.flip_tree_edge(node, Some(Port(degree as u32))).is_err());
        assert!(s.verdict().accepted(), "failed mutation must not dirty");
    }

    #[test]
    fn mutation_script_replays_identically() {
        let make = || session_for(7, 20);
        let mut a = make();
        let mut b = make();
        let forged = a.labeling().label(NodeId(1)).clone();
        let script = vec![
            Mutation::SetWeight {
                edge: EdgeId(2),
                weight: Weight(77),
            },
            Mutation::CorruptLabel {
                node: NodeId(4),
                label: forged,
            },
            Mutation::RestoreLabel { node: NodeId(4) },
        ];
        for m in &script {
            let va = a.apply(m.clone()).unwrap();
            let vb = b.apply(m.clone()).unwrap();
            assert_eq!(va, vb);
        }
        // Every deterministic metric matches (wall-clock naturally varies).
        assert_eq!(a.metrics().nodes_verified, b.metrics().nodes_verified);
        assert_eq!(a.metrics().nodes_skipped, b.metrics().nodes_skipped);
        assert_eq!(a.metrics().frontier_sizes, b.metrics().frontier_sizes);
    }

    #[test]
    fn with_labeling_accepts_forged_input() {
        let mut rng = StdRng::seed_from_u64(8);
        let g1 = gen::random_connected(12, 20, gen::WeightDist::Uniform { max: 50 }, &mut rng);
        let g2 = gen::random_connected(12, 20, gen::WeightDist::Uniform { max: 50 }, &mut rng);
        let cfg1 = mst_configuration(g1);
        let cfg2 = mst_configuration(g2);
        let scheme = MstScheme::new();
        let forged = scheme.marker(&cfg2).unwrap();
        let s = VerifySession::with_labeling(MstScheme::new(), cfg1, forged);
        // A forged labeling for a different network is detected somewhere.
        assert!(!s.verdict().accepted());
        assert_eq!(s.metrics().full_runs, 1);
    }

    #[test]
    fn mutate_state_frontier_is_one() {
        let mut s = session_for(9, 15);
        let before = s.metrics().nodes_verified;
        s.mutate_state(NodeId(2), |st: &mut TreeState| st.id ^= 1);
        assert_eq!(s.metrics().nodes_verified - before, 1);
        let scheme = MstScheme::new();
        assert_eq!(s.verdict(), scheme.verify_all(s.config(), s.labeling()));
    }

    #[test]
    fn path_graph_frontier_sizes_recorded() {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), Weight(1)).unwrap();
        g.add_edge(NodeId(1), NodeId(2), Weight(2)).unwrap();
        g.add_edge(NodeId(2), NodeId(3), Weight(3)).unwrap();
        let cfg = mst_configuration(g);
        let mut s = VerifySession::new(MstScheme::new(), cfg).unwrap();
        let forged = s.labeling().label(NodeId(3)).clone();
        s.corrupt_label(NodeId(0), forged); // frontier {0, 1} on a path
        let h = &s.metrics().frontier_sizes;
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 2);
        let json = s.metrics().to_json();
        assert!(json.contains("\"frontier_sizes\""));
    }
}
