//! `π_dist`: the proof labeling scheme for *distance* labels — the
//! paper's closing remark of Section 3 made concrete ("similar techniques
//! can be used to provide compact proof labeling schemes for various
//! implicit labeling schemes on trees, such as routing, distance etc.").
//!
//! Structure is `π_Γ` verbatim with the `ω` recurrences made *additive*:
//! where `π_Γ`'s conditions 7/8 recompute
//! `ω_k(v) = max(ω_k(next), w)` along the path to the level-`k`
//! separator, `π_dist` checks `δ_k(v) = δ_k(next) + w`. Everything else —
//! orientation fields, separator-path prefixes, subtree-rank
//! distinctness, the "verify membership in the family, not the specific
//! small scheme" trick — carries over unchanged, which is precisely the
//! paper's point.

use mstv_graph::{ConfigGraph, NodeId, Weight};
use mstv_labels::{BitString, DistLabel};

use crate::pi_gamma::{orient_fields, reconstruct_decomposition, Orient};
use crate::span::{check_span, SpanCodec, SpanLabel};
use crate::{Labeling, LocalView, MarkerError, ProofLabelingScheme};

/// The pieces of a `π_dist` label the condition checker consumes.
#[derive(Debug, Clone, Copy)]
pub struct DistParts<'a> {
    /// Orientation fields (length `l`).
    pub orient: &'a [Orient],
    /// Separator-path fields of the claimed distance label.
    pub sep: &'a [u64],
    /// `δ` fields of the claimed distance label.
    pub delta: &'a [u64],
}

impl<'a> DistParts<'a> {
    /// Assembles parts from an orientation sublabel and a distance label.
    pub fn new(orient: &'a [Orient], label: &'a DistLabel) -> Self {
        DistParts {
            orient,
            sep: &label.sep,
            delta: &label.delta,
        }
    }

    fn level(&self) -> usize {
        self.orient.len()
    }
}

/// The additive analogue of `π_Γ`'s conditions 2–8.
pub fn check_dist_conditions(
    own: &DistParts<'_>,
    parent: Option<(Weight, DistParts<'_>)>,
    children: &[(Weight, DistParts<'_>)],
) -> bool {
    let l = own.level();
    if l == 0 || own.sep.len() != l || own.delta.len() != l {
        return false;
    }
    if own.orient[l - 1] != Orient::SelfSep {
        return false;
    }
    if own.orient[..l - 1].contains(&Orient::SelfSep) {
        return false;
    }
    let tree_neighbors = parent.iter().chain(children.iter());
    for (_, w) in tree_neighbors.clone() {
        let min = l.min(w.sep.len());
        if own.sep[..min] != w.sep[..min] {
            return false;
        }
    }
    // The own-level field must be the empty-path distance — unlike MAX,
    // where deflating the self field is harmless under the decoder's max,
    // the additive decoder would be misled by a nonzero self field, so we
    // pin it (our marker writes 0; the check costs nothing).
    if own.delta[l - 1] != 0 {
        return false;
    }
    for k in 0..l {
        match own.orient[k] {
            Orient::Up => {
                let Some((pw, p)) = parent else {
                    return false;
                };
                if p.level() <= k {
                    return false;
                }
                if children
                    .iter()
                    .any(|(_, c)| c.level() > k && c.orient[k] != Orient::Up)
                {
                    return false;
                }
                if p.delta.len() <= k {
                    return false;
                }
                let expected = if p.orient[k] == Orient::SelfSep {
                    pw.0
                } else {
                    p.delta[k].saturating_add(pw.0)
                };
                if own.delta[k] != expected {
                    return false;
                }
            }
            Orient::Down => {
                if let Some((_, p)) = parent {
                    if p.level() > k && p.orient[k] != Orient::Down {
                        return false;
                    }
                }
                let mut unique: Option<(Weight, &DistParts<'_>)> = None;
                for (cw, c) in children {
                    if c.level() > k && matches!(c.orient[k], Orient::Down | Orient::SelfSep) {
                        if unique.is_some() {
                            return false;
                        }
                        unique = Some((*cw, c));
                    }
                }
                let Some((cw, c)) = unique else {
                    return false;
                };
                if c.delta.len() <= k {
                    return false;
                }
                let expected = if c.orient[k] == Orient::SelfSep {
                    cw.0
                } else {
                    c.delta[k].saturating_add(cw.0)
                };
                if own.delta[k] != expected {
                    return false;
                }
            }
            Orient::SelfSep => {
                if tree_neighbors.clone().any(|(_, w)| w.level() == l) {
                    return false;
                }
                if let Some((_, p)) = parent {
                    if p.level() > k && p.orient[k] != Orient::Down {
                        return false;
                    }
                }
                if children
                    .iter()
                    .any(|(_, c)| c.level() > k && c.orient[k] != Orient::Up)
                {
                    return false;
                }
                let mut seen = Vec::new();
                for (_, w) in tree_neighbors.clone() {
                    if w.sep.len() > l {
                        if seen.contains(&w.sep[l]) {
                            return false;
                        }
                        seen.push(w.sep[l]);
                    }
                }
            }
        }
    }
    true
}

/// Node state for the distance verification problem: identity, tree
/// orientation, and the claimed distance label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PiDistState {
    /// Unique node identity.
    pub id: u64,
    /// Parent port in the tree (`None` at the root).
    pub parent_port: Option<mstv_graph::Port>,
    /// The claimed distance label stored in the state.
    pub dist: DistLabel,
}

impl mstv_graph::ParentPointer for PiDistState {
    fn parent_port(&self) -> Option<mstv_graph::Port> {
        self.parent_port
    }

    fn set_parent_port(&mut self, port: Option<mstv_graph::Port>) {
        self.parent_port = port;
    }
}

/// The `π_dist` label: spanning sublabel, orientation fields, state copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PiDistLabel {
    /// Spanning/orientation proof.
    pub span: SpanLabel,
    /// Orientation fields.
    pub orient: Vec<Orient>,
    /// Copy of the state's distance label.
    pub copy: DistLabel,
}

/// The proof labeling scheme verifying that node states are the distance
/// labels of *some* separator-decomposition scheme.
#[derive(Debug, Clone, Copy, Default)]
pub struct PiDistScheme;

impl PiDistScheme {
    /// Creates the scheme.
    pub fn new() -> Self {
        PiDistScheme
    }
}

impl ProofLabelingScheme for PiDistScheme {
    type State = PiDistState;
    type Label = PiDistLabel;

    fn marker(&self, cfg: &ConfigGraph<PiDistState>) -> Result<Labeling<PiDistLabel>, MarkerError> {
        let g = cfg.graph();
        let n = g.num_nodes();
        let tree_cfg = cfg.map_states(|_, s| mstv_graph::TreeState {
            id: s.id,
            parent_port: s.parent_port,
        });
        let (tree, span) = crate::span::span_labels(&tree_cfg)?;
        if g.num_edges() != n - 1 {
            return Err(MarkerError::bad_states(
                "π_dist operates on configuration trees",
            ));
        }
        let levels: Vec<u32> = (0..n)
            .map(|i| cfg.state(NodeId::from_index(i)).dist.sep.len() as u32)
            .collect();
        let ranks: Vec<u32> = (0..n)
            .map(|i| {
                let s = &cfg.state(NodeId::from_index(i)).dist.sep;
                *s.last().unwrap_or(&0) as u32
            })
            .collect();
        let sep =
            reconstruct_decomposition(&tree, &levels, &ranks).map_err(MarkerError::BadStates)?;
        let expected = mstv_labels::dist_labels(&tree, &sep);
        for (i, exp) in expected.iter().enumerate() {
            let v = NodeId::from_index(i);
            let got = &cfg.state(v).dist;
            if got.delta != exp.delta || got.sep[1..] != exp.sep[1..] {
                return Err(MarkerError::BadStates(format!(
                    "state of {v} is not a distance label of the family"
                )));
            }
        }
        let orients = orient_fields(&tree, &sep);
        let labels: Vec<PiDistLabel> = (0..n)
            .map(|i| PiDistLabel {
                span: span[i],
                orient: orients[i].clone(),
                copy: cfg.state(NodeId::from_index(i)).dist.clone(),
            })
            .collect();
        let span_codec = SpanCodec::for_config(&tree_cfg);
        let max_delta = labels
            .iter()
            .flat_map(|l| l.copy.delta.iter().copied())
            .max()
            .unwrap_or(0);
        let delta_bits = Weight(max_delta).bit_width();
        let encoded = labels
            .iter()
            .map(|l| {
                let mut out = BitString::new();
                span_codec.encode_into(&mut out, &l.span);
                out.push_elias_gamma(l.copy.level() as u64);
                for &f in &l.copy.sep[1..] {
                    out.push_elias_gamma(f + 1);
                }
                for &d in &l.copy.delta {
                    out.push_bits(d, delta_bits);
                }
                for &o in &l.orient {
                    out.push_bits(o.to_bits(), 2);
                }
                out
            })
            .collect();
        Ok(Labeling::new(labels, encoded))
    }

    fn verify(&self, view: &LocalView<'_, PiDistState, PiDistLabel>) -> bool {
        let state = mstv_graph::TreeState {
            id: view.state.id,
            parent_port: view.state.parent_port,
        };
        let spans: Vec<&SpanLabel> = view.neighbors.iter().map(|nb| &nb.label.span).collect();
        if !check_span(&state, &view.label.span, &spans) {
            return false;
        }
        if view.label.copy != view.state.dist {
            return false;
        }
        let own = DistParts::new(&view.label.orient, &view.label.copy);
        let parent = view.state.parent_port.and_then(|p| {
            view.neighbor_at(p)
                .map(|nb| (nb.weight, DistParts::new(&nb.label.orient, &nb.label.copy)))
        });
        if view.state.parent_port.is_some() && parent.is_none() {
            return false;
        }
        let children: Vec<(Weight, DistParts<'_>)> = view
            .neighbors
            .iter()
            .filter(|nb| nb.label.span.parent_id == Some(view.state.id))
            .map(|nb| (nb.weight, DistParts::new(&nb.label.orient, &nb.label.copy)))
            .collect();
        check_dist_conditions(&own, parent, &children)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstv_graph::{gen, tree_states, NodeId};
    use mstv_labels::{decode_dist, dist_labels};
    use mstv_trees::{centroid_decomposition, random_decomposition, RootedTree};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dist_config(
        n: usize,
        seed: u64,
        random_sep: bool,
    ) -> (ConfigGraph<PiDistState>, RootedTree) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gen::random_tree(n, gen::WeightDist::Uniform { max: 30 }, &mut rng);
        let all: Vec<_> = g.edge_ids().collect();
        let states = tree_states(&g, &all, NodeId(0)).unwrap();
        let tree = RootedTree::from_graph(&g, NodeId(0)).unwrap();
        let sep = if random_sep {
            random_decomposition(&tree, &mut rng)
        } else {
            centroid_decomposition(&tree)
        };
        let dists = dist_labels(&tree, &sep);
        let full: Vec<PiDistState> = states
            .iter()
            .zip(dists)
            .map(|(ts, dist)| PiDistState {
                id: ts.id,
                parent_port: ts.parent_port,
                dist,
            })
            .collect();
        (ConfigGraph::new(g, full).unwrap(), tree)
    }

    #[test]
    fn completeness() {
        for (n, seed, rnd) in [(2usize, 1u64, false), (30, 2, false), (90, 3, true)] {
            let (cfg, _) = dist_config(n, seed, rnd);
            let scheme = PiDistScheme::new();
            let labeling = scheme.marker(&cfg).unwrap();
            assert!(scheme.verify_all(&cfg, &labeling).accepted(), "n={n}");
        }
    }

    #[test]
    fn verified_states_decode_true_distances() {
        // The end-to-end guarantee: accepted states answer dist() right.
        let (cfg, tree) = dist_config(50, 4, false);
        let scheme = PiDistScheme::new();
        let labeling = scheme.marker(&cfg).unwrap();
        assert!(scheme.verify_all(&cfg, &labeling).accepted());
        let naive = |mut a: NodeId, mut b: NodeId| {
            let mut d = 0u64;
            while a != b {
                if tree.depth(a) >= tree.depth(b) {
                    d += tree.parent_weight(a).0;
                    a = tree.parent(a).unwrap();
                } else {
                    d += tree.parent_weight(b).0;
                    b = tree.parent(b).unwrap();
                }
            }
            d
        };
        for u in tree.nodes() {
            for v in tree.nodes() {
                assert_eq!(
                    decode_dist(&cfg.state(u).dist, &cfg.state(v).dist),
                    naive(u, v)
                );
            }
        }
    }

    #[test]
    fn delta_tampering_rejected() {
        let (cfg, _) = dist_config(40, 5, false);
        let scheme = PiDistScheme::new();
        let honest = scheme.marker(&cfg).unwrap();
        let mut detections = 0;
        for victim in 0..40 {
            let v = NodeId(victim);
            let lv = honest.label(v).copy.level();
            for k in 0..lv {
                for delta in [1i64, -1] {
                    let old = honest.label(v).copy.delta[k] as i64;
                    if old + delta < 0 {
                        continue;
                    }
                    let mut labeling = Labeling::from_labels(honest.labels().to_vec());
                    let mut cfg2 = cfg.clone();
                    labeling.label_mut(v).copy.delta[k] = (old + delta) as u64;
                    cfg2.state_mut(v).dist.delta[k] = (old + delta) as u64;
                    assert!(
                        !scheme.verify_all(&cfg2, &labeling).accepted(),
                        "victim={victim} k={k} delta={delta}"
                    );
                    detections += 1;
                }
            }
        }
        assert!(detections > 60);
    }

    #[test]
    fn self_field_pinned_to_zero() {
        // Unlike MAX, the additive decoder needs δ_l = 0 enforced.
        let (cfg, _) = dist_config(25, 6, false);
        let scheme = PiDistScheme::new();
        let honest = scheme.marker(&cfg).unwrap();
        let v = NodeId(7);
        let lv = honest.label(v).copy.level();
        let mut labeling = Labeling::from_labels(honest.labels().to_vec());
        let mut cfg2 = cfg.clone();
        labeling.label_mut(v).copy.delta[lv - 1] = 5;
        cfg2.state_mut(v).dist.delta[lv - 1] = 5;
        assert!(!scheme.verify_all(&cfg2, &labeling).accepted());
    }

    #[test]
    fn marker_rejects_corrupt_states() {
        let (mut cfg, _) = dist_config(20, 7, false);
        cfg.state_mut(NodeId(3)).dist.delta[0] += 1;
        assert!(PiDistScheme::new().marker(&cfg).is_err());
    }

    #[test]
    fn orientation_flip_rejected() {
        let (cfg, _) = dist_config(35, 8, false);
        let scheme = PiDistScheme::new();
        let honest = scheme.marker(&cfg).unwrap();
        let mut detections = 0;
        for victim in 0..35 {
            let v = NodeId(victim);
            for k in 0..honest.label(v).orient.len() {
                let old = honest.label(v).orient[k];
                let new = match old {
                    Orient::Down => Orient::Up,
                    Orient::Up => Orient::Down,
                    Orient::SelfSep => Orient::Down,
                };
                let mut labeling = Labeling::from_labels(honest.labels().to_vec());
                labeling.label_mut(v).orient[k] = new;
                assert!(!scheme.verify_all(&cfg, &labeling).accepted());
                detections += 1;
            }
        }
        assert!(detections > 35);
    }
}
