//! Conjunction of proof labeling schemes.
//!
//! The paper's `π_mst` is itself a conjunction — a spanning-tree proof, a
//! `π_Γ` proof, and a cycle-property check sharing one label. This module
//! provides the generic construction: given schemes `A` and `B` over the
//! same state type, [`BothSchemes`] proves `f_A ∧ f_B` with the pair
//! label `(L_A(v), L_B(v))`. Completeness and soundness are immediate:
//! each verifier sees exactly its own sublabels, so the pair is accepted
//! iff both proofs are, and a configuration violating either predicate
//! has no accepted labeling for the corresponding component. The size is
//! the sum of the component sizes.

use mstv_graph::ConfigGraph;
use mstv_labels::BitString;

use crate::{Labeling, LocalView, MarkerError, NeighborView, ProofLabelingScheme};

/// The conjunction `f_A ∧ f_B` of two schemes over a shared state type.
#[derive(Debug, Clone, Copy, Default)]
pub struct BothSchemes<A, B> {
    /// The first component scheme.
    pub first: A,
    /// The second component scheme.
    pub second: B,
}

impl<A, B> BothSchemes<A, B> {
    /// Composes two schemes.
    pub fn new(first: A, second: B) -> Self {
        BothSchemes { first, second }
    }
}

impl<S, A, B> ProofLabelingScheme for BothSchemes<A, B>
where
    A: ProofLabelingScheme<State = S>,
    B: ProofLabelingScheme<State = S>,
{
    type State = S;
    type Label = (A::Label, B::Label);

    fn marker(&self, cfg: &ConfigGraph<S>) -> Result<Labeling<Self::Label>, MarkerError> {
        let a = self.first.marker(cfg)?;
        let b = self.second.marker(cfg)?;
        let n = cfg.graph().num_nodes();
        let mut labels = Vec::with_capacity(n);
        let mut encoded = Vec::with_capacity(n);
        for i in 0..n {
            let v = mstv_graph::NodeId::from_index(i);
            labels.push((a.label(v).clone(), b.label(v).clone()));
            let mut bits = BitString::new();
            bits.extend_from(a.encoded(v));
            bits.extend_from(b.encoded(v));
            encoded.push(bits);
        }
        Ok(Labeling::new(labels, encoded))
    }

    fn verify(&self, view: &LocalView<'_, S, Self::Label>) -> bool {
        let first_view = LocalView {
            node: view.node,
            state: view.state,
            label: &view.label.0,
            neighbors: view
                .neighbors
                .iter()
                .map(|nb| NeighborView {
                    port: nb.port,
                    weight: nb.weight,
                    label: &nb.label.0,
                })
                .collect(),
        };
        if !self.first.verify(&first_view) {
            return false;
        }
        let second_view = LocalView {
            node: view.node,
            state: view.state,
            label: &view.label.1,
            neighbors: view
                .neighbors
                .iter()
                .map(|nb| NeighborView {
                    port: nb.port,
                    weight: nb.weight,
                    label: &nb.label.1,
                })
                .collect(),
        };
        self.second.verify(&second_view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mst_configuration, MstScheme, SpanningTreeScheme, SptScheme};
    use mstv_graph::{gen, tree_states, NodeId, Weight};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn conjunction_of_span_and_mst() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = gen::random_connected(25, 40, gen::WeightDist::Uniform { max: 60 }, &mut rng);
        let cfg = mst_configuration(g);
        let both = BothSchemes::new(SpanningTreeScheme::new(), MstScheme::new());
        let labeling = both.marker(&cfg).unwrap();
        assert!(both.verify_all(&cfg, &labeling).accepted());
        // Size is the sum of components.
        let a = SpanningTreeScheme::new().marker(&cfg).unwrap();
        let b = MstScheme::new().marker(&cfg).unwrap();
        assert!(labeling.max_label_bits() <= a.max_label_bits() + b.max_label_bits());
        assert!(labeling.max_label_bits() >= b.max_label_bits());
    }

    #[test]
    fn rejects_if_either_component_fails() {
        // A tree that is an SPT but not an MST: the conjunction
        // (SPT ∧ MST) must reject through its MST half.
        let mut g = mstv_graph::Graph::new(3);
        let _e0 = g.add_edge(NodeId(0), NodeId(1), Weight(4)).unwrap();
        let _e1 = g.add_edge(NodeId(1), NodeId(2), Weight(4)).unwrap();
        let _chord = g.add_edge(NodeId(2), NodeId(0), Weight(5)).unwrap();
        // Tree {e0, e1} rooted at 1 is an SPT from node 1 but NOT minimum?
        // MST weight: {e0,e1}=8, {e0,e2}=9, {e1,e2}=9 — it IS minimum.
        // Use instead: make e2 light so {e0, e1} is an SPT from 1 but not
        // an MST.
        let mut g = mstv_graph::Graph::new(3);
        let e0 = g.add_edge(NodeId(0), NodeId(1), Weight(4)).unwrap();
        let e1 = g.add_edge(NodeId(1), NodeId(2), Weight(4)).unwrap();
        let _chord = g.add_edge(NodeId(2), NodeId(0), Weight(3)).unwrap();
        // From root 1: d(0)=4 via e0 (alt 4+3=7), d(2)=4 via e1: SPT ✓.
        // MST: {e2, e0} or {e2, e1} weigh 7 < 8: not an MST.
        let states = tree_states(&g, &[e0, e1], NodeId(1)).unwrap();
        let cfg = mstv_graph::ConfigGraph::new(g, states).unwrap();
        // SPT alone accepts.
        let spt = SptScheme::new();
        let sl = spt.marker(&cfg).unwrap();
        assert!(spt.verify_all(&cfg, &sl).accepted());
        // The conjunction's marker refuses (MST half fails).
        let both = BothSchemes::new(SptScheme::new(), MstScheme::new());
        assert!(both.marker(&cfg).is_err());
        let _ = (e0, e1);
    }

    #[test]
    fn spt_and_mst_coincide_on_uniform_weights() {
        // With unit weights a BFS tree is both an SPT and an MST: the
        // conjunction accepts.
        let mut rng = StdRng::seed_from_u64(2);
        let g = gen::random_connected(20, 30, gen::WeightDist::Constant(1), &mut rng);
        let cfg = crate::spt_configuration(g, NodeId(0));
        let both = BothSchemes::new(SptScheme::new(), MstScheme::new());
        let labeling = both.marker(&cfg).unwrap();
        assert!(both.verify_all(&cfg, &labeling).accepted());
    }
}
