//! The proof labeling scheme `π_Γ` (Lemma 3.3): locally verifying that the
//! node states are the labels of *some* implicit `MAX` labeling scheme
//! `γ ∈ Γ`.
//!
//! This is the paper's key subtlety: we cannot cheaply prove that the
//! specific small scheme `γ_small` produced the labels, but we do not have
//! to — it suffices that *some* separator decomposition is consistent with
//! them, because the decoder is the same for every member of `Γ` and is
//! then guaranteed to return true `MAX` values. The marker nevertheless
//! uses `γ_small`, so the proof stays `O(log n log W)` bits.
//!
//! The label of a level-`l` separator `v` adds to (a copy of) its state an
//! orientation sublabel of `l` fields: field `k` says where `v`'s level-`k`
//! separator lies relative to `v` in the rooted tree — [`Orient::Down`]
//! (a descendant), [`Orient::Up`] (elsewhere), or [`Orient::SelfSep`]
//! (`k = l`, `v` itself). The verifier enforces the paper's conditions
//! 1–8, which (i) pin the orientation fields to *some* separator
//! decomposition and (ii) recompute every `ω` field transitively along the
//! path to the corresponding separator.
//!
//! Conditions that reference field `k` of a neighbor apply only when that
//! neighbor has a field `k` (its level exceeds `k`); a neighbor separated
//! at an earlier level carries no information about later levels — see the
//! worked example in this module's tests.

use mstv_graph::{ConfigGraph, NodeId, Port, Weight};
use mstv_labels::{BitString, LabelCodec, MaxLabel, SepFieldCodec};
use mstv_trees::{LcaIndex, RootedTree, SeparatorDecomposition};

use crate::span::{check_span, SpanCodec, SpanLabel};
use crate::{Labeling, LocalView, MarkerError, ProofLabelingScheme};

/// Where a separator lies relative to a node in the rooted tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Orient {
    /// The separator is a proper descendant of the node (paper: `0`).
    Down,
    /// The separator is neither the node nor a descendant (paper: `1`).
    Up,
    /// The node is this separator itself (paper: `*`).
    SelfSep,
}

impl Orient {
    /// Two-bit encoding.
    pub fn to_bits(self) -> u64 {
        match self {
            Orient::Down => 0,
            Orient::Up => 1,
            Orient::SelfSep => 2,
        }
    }

    /// Decodes the two-bit encoding.
    ///
    /// # Panics
    ///
    /// Panics on the reserved pattern `3`.
    pub fn from_bits(v: u64) -> Self {
        Self::try_from_bits(v).unwrap_or_else(|| panic!("invalid orientation encoding {v}"))
    }

    /// Decodes the two-bit encoding; `None` on the reserved pattern `3`.
    pub fn try_from_bits(v: u64) -> Option<Self> {
        match v {
            0 => Some(Orient::Down),
            1 => Some(Orient::Up),
            2 => Some(Orient::SelfSep),
            _ => None,
        }
    }
}

/// The pieces of a `π_Γ` label a condition checker consumes: orientation
/// fields plus the (claimed) `γ` label's separator-path and `ω` fields.
#[derive(Debug, Clone, Copy)]
pub struct GammaParts<'a> {
    /// Orientation fields (length `l`).
    pub orient: &'a [Orient],
    /// Separator-path fields of the claimed `γ` label.
    pub sep: &'a [u64],
    /// `ω` fields of the claimed `γ` label.
    pub omega: &'a [Weight],
}

impl<'a> GammaParts<'a> {
    /// Assembles parts from an orientation sublabel and a `γ` label.
    pub fn new(orient: &'a [Orient], gamma: &'a MaxLabel) -> Self {
        GammaParts {
            orient,
            sep: &gamma.sep,
            omega: &gamma.omega,
        }
    }

    fn level(&self) -> usize {
        self.orient.len()
    }
}

/// The verifier conditions 2–8 of Lemma 3.3 at one node, given the parts
/// of the node itself, of its tree parent (with the connecting weight),
/// and of its tree children (condition 1 — the label copies the state — is
/// the caller's responsibility, since compositions differ in where the `γ`
/// label lives).
///
/// Returns `true` iff every condition holds locally.
pub fn check_gamma_conditions(
    own: &GammaParts<'_>,
    parent: Option<(Weight, GammaParts<'_>)>,
    children: &[(Weight, GammaParts<'_>)],
) -> bool {
    let l = own.level();
    // Structural consistency (condition 4): the three sublabels agree on
    // the field count, the last orientation field is `*`, and no other is.
    if l == 0 || own.sep.len() != l || own.omega.len() != l {
        return false;
    }
    if own.orient[l - 1] != Orient::SelfSep {
        return false;
    }
    if own.orient[..l - 1].contains(&Orient::SelfSep) {
        return false;
    }
    // Condition 5: separator-path prefixes agree with every tree neighbor
    // up to the smaller level.
    let tree_neighbors = parent.iter().chain(children.iter());
    for (_, w) in tree_neighbors.clone() {
        let min = l.min(w.sep.len());
        if own.sep[..min] != w.sep[..min] {
            return false;
        }
    }
    for k in 0..l {
        match own.orient[k] {
            Orient::Up => {
                // Condition 2: a separator above requires a parent that
                // still shares level k, and every child sharing level k
                // sees the separator above as well.
                let Some((pw, p)) = parent else {
                    return false;
                };
                if p.level() <= k {
                    return false;
                }
                if children
                    .iter()
                    .any(|(_, c)| c.level() > k && c.orient[k] != Orient::Up)
                {
                    return false;
                }
                // Condition 7: the ω field accumulates along the parent.
                if p.omega.len() <= k {
                    return false;
                }
                let expected = if p.orient[k] == Orient::SelfSep {
                    pw
                } else {
                    p.omega[k].max(pw)
                };
                if own.omega[k] != expected {
                    return false;
                }
            }
            Orient::Down => {
                // Condition 3: a parent still sharing level k must also see
                // the separator below it; exactly one child continues the
                // path down.
                if let Some((_, p)) = parent {
                    if p.level() > k && p.orient[k] != Orient::Down {
                        return false;
                    }
                }
                let mut unique: Option<(Weight, &GammaParts<'_>)> = None;
                for (cw, c) in children {
                    if c.level() > k && matches!(c.orient[k], Orient::Down | Orient::SelfSep) {
                        if unique.is_some() {
                            return false;
                        }
                        unique = Some((*cw, c));
                    }
                }
                let Some((cw, c)) = unique else {
                    return false;
                };
                // Condition 8: the ω field accumulates along that child.
                if c.omega.len() <= k {
                    return false;
                }
                let expected = if c.orient[k] == Orient::SelfSep {
                    cw
                } else {
                    c.omega[k].max(cw)
                };
                if own.omega[k] != expected {
                    return false;
                }
            }
            Orient::SelfSep => {
                // Condition 6 (k = l - 1, this node is the separator).
                // (a) No tree neighbor is a separator of the same level.
                if tree_neighbors.clone().any(|(_, w)| w.level() == l) {
                    return false;
                }
                // (b) A parent inside this node's region sees it below; a
                // child inside sees it above.
                if let Some((_, p)) = parent {
                    if p.level() > k && p.orient[k] != Orient::Down {
                        return false;
                    }
                }
                if children
                    .iter()
                    .any(|(_, c)| c.level() > k && c.orient[k] != Orient::Up)
                {
                    return false;
                }
                // (c) Subtrees formed by this separator carry distinct
                // numbers: the neighbors inside the region each start a
                // different subtree, so their field l (0-based) must be
                // pairwise distinct.
                let mut seen = Vec::new();
                for (_, w) in tree_neighbors.clone() {
                    if w.sep.len() > l {
                        if seen.contains(&w.sep[l]) {
                            return false;
                        }
                        seen.push(w.sep[l]);
                    }
                }
            }
        }
    }
    true
}

/// Computes the honest orientation fields for every node, given the rooted
/// tree and the separator decomposition the marker used.
pub fn orient_fields(tree: &RootedTree, sep: &SeparatorDecomposition) -> Vec<Vec<Orient>> {
    let lca = LcaIndex::new(tree);
    let mut chain = Vec::new();
    tree.nodes()
        .map(|v| orient_field_of_buf(&lca, sep, v, &mut chain))
        .collect()
}

/// [`orient_fields`] with per-node assembly fanned across a scoped thread
/// pool (the LCA index is built once and shared read-only). Output is
/// identical to the sequential builder for every thread count.
pub fn orient_fields_parallel(
    tree: &RootedTree,
    sep: &SeparatorDecomposition,
    config: crate::ParallelConfig,
) -> Vec<Vec<Orient>> {
    let lca = LcaIndex::new(tree);
    mstv_trees::par_map_chunks(tree.num_nodes(), config.resolved_threads(), |lo, hi| {
        let mut chain = Vec::new();
        (lo..hi)
            .map(|i| orient_field_of_buf(&lca, sep, mstv_graph::NodeId::from_index(i), &mut chain))
            .collect()
    })
}

/// Assembles the orientation field of a single node — the unit of work
/// [`orient_fields`] maps over every node. Public for incremental
/// relabelers, which reassemble only dirty nodes.
pub fn orient_field_of(
    lca: &LcaIndex,
    sep: &SeparatorDecomposition,
    v: mstv_graph::NodeId,
) -> Vec<Orient> {
    orient_field_of_buf(lca, sep, v, &mut Vec::new())
}

/// [`orient_field_of`] with the separator chain staged in a caller-owned
/// buffer, so the batch builders allocate one chain per worker instead of
/// one per node.
fn orient_field_of_buf(
    lca: &LcaIndex,
    sep: &SeparatorDecomposition,
    v: mstv_graph::NodeId,
    chain: &mut Vec<mstv_graph::NodeId>,
) -> Vec<Orient> {
    sep.ancestors_into(v, chain);
    chain
        .iter()
        .map(|&a| {
            if a == v {
                Orient::SelfSep
            } else if lca.is_ancestor(v, a) {
                Orient::Down
            } else {
                Orient::Up
            }
        })
        .collect()
}

/// A node state for the standalone `π_Γ` problem `Prob(Γ)`: the node's
/// identity, its parent port in the tree, and the claimed `γ` label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PiGammaState {
    /// Unique node identity.
    pub id: u64,
    /// Parent port of the tree orientation (`None` at the root).
    pub parent_port: Option<Port>,
    /// The claimed `γ` label stored in the state.
    pub gamma: MaxLabel,
}

impl mstv_graph::ParentPointer for PiGammaState {
    fn parent_port(&self) -> Option<Port> {
        self.parent_port
    }

    fn set_parent_port(&mut self, port: Option<Port>) {
        self.parent_port = port;
    }
}

/// The `π_Γ` label: a spanning/orientation sublabel, the orientation
/// fields, and a copy of the state's `γ` label (condition 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PiGammaLabel {
    /// Orientation proof for the tree (root id, distance, parent id).
    pub span: SpanLabel,
    /// Orientation fields, one per separator level of the node.
    pub orient: Vec<Orient>,
    /// Copy of the state's `γ` label.
    pub copy: MaxLabel,
}

/// The standalone proof labeling scheme `π_Γ` over configuration trees
/// whose states claim to be `γ` labels.
#[derive(Debug, Clone, Copy, Default)]
pub struct PiGammaScheme;

impl PiGammaScheme {
    /// Creates the scheme.
    pub fn new() -> Self {
        PiGammaScheme
    }
}

/// Rebuilds the separator decomposition implied by per-node levels and
/// ranks (level = the state's field count; rank = the state's last
/// separator-path field), simulating the recursive removal process and
/// checking uniqueness at every step.
///
/// # Errors
///
/// Returns a description of the first inconsistency.
pub fn reconstruct_decomposition(
    tree: &RootedTree,
    levels: &[u32],
    ranks: &[u32],
) -> Result<SeparatorDecomposition, String> {
    let n = tree.num_nodes();
    if levels.len() != n || ranks.len() != n {
        return Err("levels/ranks length mismatch".to_owned());
    }
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for (c, p, _) in tree.edges() {
        adj[c.index()].push(p);
        adj[p.index()].push(c);
    }
    let mut removed = vec![false; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut component_size = vec![0usize; n];
    // Stack of (component representative, expected level, sep parent).
    let mut stack = vec![(NodeId(0), 1u32, None::<NodeId>)];
    let mut root = None;
    while let Some((rep, expected, sp)) = stack.pop() {
        // Collect the live component containing rep.
        let mut comp = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let mut dfs = vec![rep];
        seen.insert(rep);
        while let Some(v) = dfs.pop() {
            comp.push(v);
            for &nb in &adj[v.index()] {
                if !removed[nb.index()] && seen.insert(nb) {
                    dfs.push(nb);
                }
            }
        }
        // The separator must be the unique node at the expected level.
        let mut sep = None;
        for &v in &comp {
            if levels[v.index()] == expected {
                if sep.is_some() {
                    return Err(format!("two level-{expected} separators in one component"));
                }
                sep = Some(v);
            } else if levels[v.index()] < expected {
                return Err(format!("{v} has level below its component's level"));
            }
        }
        let sep = sep.ok_or_else(|| format!("component without level-{expected} separator"))?;
        parent[sep.index()] = sp;
        component_size[sep.index()] = comp.len();
        if sp.is_none() {
            root = Some(sep);
        }
        removed[sep.index()] = true;
        for &nb in &adj[sep.index()] {
            if removed[nb.index()] {
                continue;
            }
            stack.push((nb, expected + 1, Some(sep)));
        }
        // Rank distinctness among the subtrees formed by sep is enforced
        // globally after the simulation (sibling pass below).
    }
    let root = root.ok_or_else(|| "empty tree".to_owned())?;
    // Distinctness of sibling ranks.
    let mut sibling_ranks: std::collections::HashMap<NodeId, Vec<u32>> =
        std::collections::HashMap::new();
    for v in tree.nodes() {
        if let Some(p) = parent[v.index()] {
            sibling_ranks.entry(p).or_default().push(ranks[v.index()]);
        }
    }
    for (_, mut rs) in sibling_ranks {
        rs.sort_unstable();
        if rs.windows(2).any(|w| w[0] == w[1]) {
            return Err("duplicate sibling subtree ranks".to_owned());
        }
    }
    SeparatorDecomposition::from_parts(
        root,
        parent,
        levels.to_vec(),
        ranks.to_vec(),
        component_size,
    )
}

impl ProofLabelingScheme for PiGammaScheme {
    type State = PiGammaState;
    type Label = PiGammaLabel;

    fn marker(
        &self,
        cfg: &ConfigGraph<PiGammaState>,
    ) -> Result<Labeling<PiGammaLabel>, MarkerError> {
        let g = cfg.graph();
        let n = g.num_nodes();
        // The configuration graph must itself be a tree with a consistent
        // orientation in the states.
        let tree_cfg = cfg.map_states(|_, s| mstv_graph::TreeState {
            id: s.id,
            parent_port: s.parent_port,
        });
        let (tree, span) = crate::span::span_labels(&tree_cfg)?;
        if g.num_edges() != n - 1 {
            return Err(MarkerError::bad_states(
                "π_Γ operates on configuration trees",
            ));
        }
        // Reconstruct the decomposition the states imply and re-derive the
        // labels; the predicate holds iff they match the states.
        let levels: Vec<u32> = (0..n)
            .map(|i| cfg.state(NodeId::from_index(i)).gamma.sep.len() as u32)
            .collect();
        let ranks: Vec<u32> = (0..n)
            .map(|i| {
                let s = &cfg.state(NodeId::from_index(i)).gamma.sep;
                *s.last().unwrap_or(&0) as u32
            })
            .collect();
        let sep =
            reconstruct_decomposition(&tree, &levels, &ranks).map_err(MarkerError::BadStates)?;
        let expected = mstv_labels::max_labels(&tree, &sep);
        for (i, exp) in expected.iter().enumerate() {
            let v = NodeId::from_index(i);
            let got = &cfg.state(v).gamma;
            // The shared first field is arbitrary but must be uniform; our
            // re-derivation uses 0, so compare modulo field 1 by aligning.
            if got.omega != exp.omega || got.sep[1..] != exp.sep[1..] {
                return Err(MarkerError::BadStates(format!(
                    "state of {v} is not a label of any γ ∈ Γ"
                )));
            }
        }
        let orients = orient_fields(&tree, &sep);
        let labels: Vec<PiGammaLabel> = (0..n)
            .map(|i| PiGammaLabel {
                span: span[i],
                orient: orients[i].clone(),
                copy: cfg.state(NodeId::from_index(i)).gamma.clone(),
            })
            .collect();
        let span_codec = SpanCodec::for_config(&tree_cfg);
        let gamma_codec = LabelCodec::for_tree(&tree, SepFieldCodec::EliasGamma);
        let encoded = labels
            .iter()
            .map(|l| encode_pi_gamma(l, span_codec, gamma_codec))
            .collect();
        Ok(Labeling::new(labels, encoded))
    }

    fn verify(&self, view: &LocalView<'_, PiGammaState, PiGammaLabel>) -> bool {
        // Orientation / spanning checks on the tree.
        let state = mstv_graph::TreeState {
            id: view.state.id,
            parent_port: view.state.parent_port,
        };
        let spans: Vec<&SpanLabel> = view.neighbors.iter().map(|nb| &nb.label.span).collect();
        if !check_span(&state, &view.label.span, &spans) {
            return false;
        }
        // Condition 1: the label copies the state.
        if view.label.copy != view.state.gamma {
            return false;
        }
        // Conditions 2–8 against tree parent and children.
        let own = GammaParts::new(&view.label.orient, &view.label.copy);
        let parent = view.state.parent_port.and_then(|p| {
            view.neighbor_at(p)
                .map(|nb| (nb.weight, GammaParts::new(&nb.label.orient, &nb.label.copy)))
        });
        if view.state.parent_port.is_some() && parent.is_none() {
            return false;
        }
        let children: Vec<(Weight, GammaParts<'_>)> = view
            .neighbors
            .iter()
            .filter(|nb| nb.label.span.parent_id == Some(view.state.id))
            .map(|nb| (nb.weight, GammaParts::new(&nb.label.orient, &nb.label.copy)))
            .collect();
        check_gamma_conditions(&own, parent, &children)
    }
}

/// Serializes a `π_Γ` label exactly.
pub fn encode_pi_gamma(
    label: &PiGammaLabel,
    span_codec: SpanCodec,
    gamma_codec: LabelCodec,
) -> BitString {
    let mut out = BitString::new();
    span_codec.encode_into(&mut out, &label.span);
    let gamma_bits = gamma_codec.encode_max(&label.copy);
    out.extend_from(&gamma_bits);
    // Orientation fields: 2 bits each; the count equals the γ label's
    // field count, already encoded above.
    for &o in &label.orient {
        out.push_bits(o.to_bits(), 2);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstv_graph::{gen, tree_states, Graph, TreeState};
    use mstv_labels::max_labels;
    use mstv_trees::{centroid_decomposition, random_decomposition};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Builds a π_Γ configuration: a random tree whose states hold honest
    /// γ labels for the given decomposition choice.
    fn gamma_config(
        n: usize,
        seed: u64,
        random_sep: bool,
    ) -> (ConfigGraph<PiGammaState>, RootedTree) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gen::random_tree(n, gen::WeightDist::Uniform { max: 50 }, &mut rng);
        let all: Vec<_> = g.edge_ids().collect();
        let states = tree_states(&g, &all, NodeId(0)).unwrap();
        let tree = RootedTree::from_graph(&g, NodeId(0)).unwrap();
        let sep = if random_sep {
            random_decomposition(&tree, &mut rng)
        } else {
            centroid_decomposition(&tree)
        };
        let gammas = max_labels(&tree, &sep);
        let full: Vec<PiGammaState> = states
            .iter()
            .zip(gammas)
            .map(|(ts, gamma)| PiGammaState {
                id: ts.id,
                parent_port: ts.parent_port,
                gamma,
            })
            .collect();
        (ConfigGraph::new(g, full).unwrap(), tree)
    }

    #[test]
    fn completeness_centroid() {
        for (n, seed) in [(2usize, 1u64), (3, 2), (17, 3), (80, 4), (200, 5)] {
            let (cfg, _) = gamma_config(n, seed, false);
            let scheme = PiGammaScheme::new();
            let labeling = scheme.marker(&cfg).unwrap();
            let verdict = scheme.verify_all(&cfg, &labeling);
            assert!(verdict.accepted(), "n={n}: {verdict}");
        }
    }

    #[test]
    fn completeness_arbitrary_gamma() {
        // π_Γ accepts states produced by ANY member of Γ.
        for (n, seed) in [(10usize, 11u64), (40, 12), (90, 13)] {
            let (cfg, _) = gamma_config(n, seed, true);
            let scheme = PiGammaScheme::new();
            let labeling = scheme.marker(&cfg).unwrap();
            assert!(scheme.verify_all(&cfg, &labeling).accepted(), "n={n}");
        }
    }

    #[test]
    fn marker_rejects_corrupted_states() {
        let (mut cfg, _) = gamma_config(30, 21, false);
        // Corrupt an ω field in a state: no γ ∈ Γ matches anymore.
        let s = cfg.state_mut(NodeId(7));
        if let Some(w) = s.gamma.omega.first_mut() {
            *w = Weight(w.0 + 1);
        }
        assert!(PiGammaScheme::new().marker(&cfg).is_err());
    }

    #[test]
    fn stale_labels_on_corrupted_states_rejected() {
        let (cfg, _) = gamma_config(40, 22, false);
        let scheme = PiGammaScheme::new();
        let labeling = scheme.marker(&cfg).unwrap();
        let mut bad = cfg.clone();
        let s = bad.state_mut(NodeId(9));
        if let Some(w) = s.gamma.omega.first_mut() {
            *w = Weight(w.0 + 3);
        }
        // Condition 1 (copy == state) must fire at node 9.
        let verdict = scheme.verify_all(&bad, &labeling);
        assert!(verdict.rejecting.contains(&NodeId(9)));
    }

    #[test]
    fn forged_omega_rejected() {
        // Tamper with an ω field in state AND label consistently: the
        // transitive ω recomputation (conditions 7/8) must catch it.
        let (cfg, _) = gamma_config(60, 23, false);
        let scheme = PiGammaScheme::new();
        let honest = scheme.marker(&cfg).unwrap();
        let mut detections = 0;
        for victim in 0..60 {
            let v = NodeId(victim);
            let lv = honest.label(v).copy.level();
            for k in 0..lv.saturating_sub(1) {
                let mut cfg2 = cfg.clone();
                let mut labeling = Labeling::from_labels(honest.labels().to_vec());
                // Lower the ω field (lying "this path is lighter").
                let old = labeling.label(v).copy.omega[k];
                if old == Weight::ZERO {
                    continue;
                }
                labeling.label_mut(v).copy.omega[k] = Weight(old.0 - 1);
                cfg2.state_mut(v).gamma.omega[k] = Weight(old.0 - 1);
                let verdict = scheme.verify_all(&cfg2, &labeling);
                assert!(!verdict.accepted(), "victim={victim} k={k}");
                detections += 1;
            }
        }
        assert!(detections > 50, "too few cases exercised: {detections}");
    }

    #[test]
    fn forged_orientation_rejected() {
        let (cfg, _) = gamma_config(50, 24, false);
        let scheme = PiGammaScheme::new();
        let honest = scheme.marker(&cfg).unwrap();
        let mut detections = 0;
        for victim in 0..50 {
            let v = NodeId(victim);
            let lv = honest.label(v).orient.len();
            for k in 0..lv {
                for flip in [Orient::Down, Orient::Up, Orient::SelfSep] {
                    if honest.label(v).orient[k] == flip {
                        continue;
                    }
                    let mut labeling = Labeling::from_labels(honest.labels().to_vec());
                    labeling.label_mut(v).orient[k] = flip;
                    let verdict = scheme.verify_all(&cfg, &labeling);
                    assert!(!verdict.accepted(), "victim={victim} k={k} flip={flip:?}");
                    detections += 1;
                }
            }
        }
        assert!(detections > 100);
    }

    #[test]
    fn orient_fields_shape() {
        let (_, tree) = gamma_config(40, 25, false);
        let sep = centroid_decomposition(&tree);
        let orients = orient_fields(&tree, &sep);
        for v in tree.nodes() {
            let o = &orients[v.index()];
            assert_eq!(o.len() as u32, sep.level(v));
            assert_eq!(*o.last().unwrap(), Orient::SelfSep);
            assert!(!o[..o.len() - 1].contains(&Orient::SelfSep));
        }
        // The decomposition root sees every separator below or at itself.
        let r = sep.root();
        assert_eq!(orients[r.index()], vec![Orient::SelfSep]);
    }

    #[test]
    fn path_example_with_guarded_parent() {
        // The worked example from the module docs: path r - v - w rooted at
        // r, decomposition levels r=1, w=2, v=3. v's level-2 separator (w)
        // is below it while v's parent r carries no level-2 field; the
        // guarded condition 3 must accept.
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), Weight(4)).unwrap(); // r - v
        g.add_edge(NodeId(1), NodeId(2), Weight(7)).unwrap(); // v - w
        let all: Vec<_> = g.edge_ids().collect();
        let states = tree_states(&g, &all, NodeId(0)).unwrap();
        let tree = RootedTree::from_graph(&g, NodeId(0)).unwrap();
        let levels = vec![1u32, 3, 2];
        let ranks = vec![0u32, 0, 0];
        let sep = reconstruct_decomposition(&tree, &levels, &ranks).unwrap();
        assert_eq!(sep.root(), NodeId(0));
        assert_eq!(sep.level(NodeId(1)), 3);
        let gammas = max_labels(&tree, &sep);
        let full: Vec<PiGammaState> = states
            .iter()
            .zip(gammas)
            .map(|(ts, gamma)| PiGammaState {
                id: ts.id,
                parent_port: ts.parent_port,
                gamma,
            })
            .collect();
        let cfg = ConfigGraph::new(g, full).unwrap();
        let scheme = PiGammaScheme::new();
        let labeling = scheme.marker(&cfg).unwrap();
        // v (node 1) has orientation [Up, Down, SelfSep].
        assert_eq!(
            labeling.label(NodeId(1)).orient,
            vec![Orient::Up, Orient::Down, Orient::SelfSep]
        );
        assert!(scheme.verify_all(&cfg, &labeling).accepted());
        let _ = TreeState::root(0); // keep import used
    }

    #[test]
    fn label_sizes_are_near_state_sizes() {
        // Lemma 3.3: the proof adds only a constant factor over the states.
        let (cfg, tree) = gamma_config(300, 26, false);
        let scheme = PiGammaScheme::new();
        let labeling = scheme.marker(&cfg).unwrap();
        let gamma_codec = LabelCodec::for_tree(&tree, SepFieldCodec::EliasGamma);
        let max_state_bits = (0..300)
            .map(|i| gamma_codec.encode_max(&cfg.state(NodeId(i)).gamma).len())
            .max()
            .unwrap();
        assert!(labeling.max_label_bits() <= 4 * max_state_bits + 64);
    }
}
