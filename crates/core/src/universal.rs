//! The universal proof labeling scheme — the trivial upper bound every
//! PLS paper measures against.
//!
//! *Any* decidable predicate on configuration graphs has a proof labeling
//! scheme: give every node a complete serialized **map** of the
//! configuration (topology, weights, states) plus its own index in the
//! map. The verifier checks that (1) its own map row matches its actual
//! state, ports, and weights, (2) all neighbors carry a bit-identical
//! map, and (3) the predicate holds on the map. Soundness is the
//! standard argument: local map agreement plus connectivity forces one
//! global map; each node vouches for its own row, so the map *is* the
//! real configuration; hence the predicate really holds.
//!
//! The price is `O((n + m)·log n + m·log W + n·|state|)` bits per node —
//! for MST, quadratic-ish where `π_mst` pays `O(log n log W)`. The size
//! gap (measured in experiment E11) is exactly what the paper's machinery
//! buys.

use mstv_graph::{ConfigGraph, NodeId, TreeState, Weight};
use mstv_labels::BitString;

use crate::{Labeling, LocalView, MarkerError, ProofLabelingScheme};

/// The universal label: a full map of the configuration plus the owner's
/// index. The map is kept in structured form; [`encode_map`] provides the
/// exact bit encoding used for size accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UniversalLabel {
    /// The owner's node index in the map.
    pub me: u32,
    /// Every node's state.
    pub states: Vec<TreeState>,
    /// Every edge `(u, v, w)` in the configuration's global edge order —
    /// the order determines every node's port numbering, which the model
    /// treats as significant.
    pub edges: Vec<(u32, u32, Weight)>,
}

/// The universal scheme for a caller-supplied predicate over
/// `TreeState` configurations.
pub struct UniversalScheme<F> {
    predicate: F,
}

impl<F> UniversalScheme<F>
where
    F: Fn(&ConfigGraph<TreeState>) -> bool,
{
    /// Creates the scheme for `predicate`.
    pub fn new(predicate: F) -> Self {
        UniversalScheme { predicate }
    }

    /// Rebuilds the configuration graph a label describes, if coherent.
    /// Edge insertion order reproduces the original port numbering.
    fn config_from_map(label: &UniversalLabel) -> Option<ConfigGraph<TreeState>> {
        let n = label.states.len();
        let mut g = mstv_graph::Graph::new(n);
        for &(u, v, w) in &label.edges {
            if (u as usize) >= n || (v as usize) >= n {
                return None;
            }
            g.add_edge(NodeId(u), NodeId(v), w).ok()?;
        }
        ConfigGraph::new(g, label.states.clone()).ok()
    }
}

impl<F> ProofLabelingScheme for UniversalScheme<F>
where
    F: Fn(&ConfigGraph<TreeState>) -> bool,
{
    type State = TreeState;
    type Label = UniversalLabel;

    fn marker(
        &self,
        cfg: &ConfigGraph<TreeState>,
    ) -> Result<Labeling<UniversalLabel>, MarkerError> {
        if !(self.predicate)(cfg) {
            return Err(MarkerError::bad_states(
                "universal scheme predicate rejects this configuration",
            ));
        }
        let g = cfg.graph();
        let states: Vec<TreeState> = cfg.states().to_vec();
        let edges: Vec<(u32, u32, Weight)> = g
            .edges()
            .map(|(_, edge)| (edge.u.0, edge.v.0, edge.w))
            .collect();
        let labels: Vec<UniversalLabel> = (0..g.num_nodes())
            .map(|i| UniversalLabel {
                me: i as u32,
                states: states.clone(),
                edges: edges.clone(),
            })
            .collect();
        let encoded = labels.iter().map(encode_map).collect();
        Ok(Labeling::new(labels, encoded))
    }

    fn verify(&self, view: &LocalView<'_, TreeState, UniversalLabel>) -> bool {
        let label = view.label;
        let me = label.me as usize;
        // (0) The map is coherent at all.
        let Some(map_cfg) = Self::config_from_map(label) else {
            return false;
        };
        if me >= map_cfg.graph().num_nodes() {
            return false;
        }
        // (1a) My map row's state is my actual state.
        if label.states.get(me) != Some(view.state) {
            return false;
        }
        // (1b) My map row matches my actual ports, weights, and the
        // indices my neighbors claim — tying map indices to real nodes.
        let my_row: Vec<(u32, Weight)> = map_cfg
            .graph()
            .neighbors(NodeId::from_index(me))
            .map(|nb| (nb.node.0, nb.weight))
            .collect();
        if my_row.len() != view.neighbors.len() {
            return false;
        }
        for (nb, &(mapped_neighbor, mapped_w)) in view.neighbors.iter().zip(my_row.iter()) {
            if nb.weight != mapped_w {
                return false;
            }
            if nb.label.me != mapped_neighbor {
                return false;
            }
        }
        // (2) Neighbors carry the identical map.
        for nb in &view.neighbors {
            if nb.label.states != label.states || nb.label.edges != label.edges {
                return false;
            }
        }
        // (3) The predicate holds on the map.
        (self.predicate)(&map_cfg)
    }
}

/// Exact bit encoding of a universal label: `γ(n+1)`, `γ(m+1)`, the owner
/// index, per node its state (id, optional parent port), and per edge its
/// endpoints and weight.
pub fn encode_map(label: &UniversalLabel) -> BitString {
    let n = label.states.len() as u64;
    let idx_bits = Weight(n).bit_width();
    let max_id = label.states.iter().map(|s| s.id).max().unwrap_or(0);
    let id_bits = Weight(max_id).bit_width();
    let max_w = label
        .edges
        .iter()
        .map(|&(_, _, w)| w)
        .max()
        .unwrap_or(Weight(1));
    let w_bits = max_w.bit_width();
    let mut out = BitString::new();
    out.push_elias_gamma(n + 1);
    out.push_elias_gamma(label.edges.len() as u64 + 1);
    out.push_bits(u64::from(label.me), idx_bits);
    for s in &label.states {
        out.push_bits(s.id, id_bits);
        match s.parent_port {
            Some(p) => {
                out.push(true);
                out.push_bits(u64::from(p.0), idx_bits);
            }
            None => out.push(false),
        }
    }
    for &(u, v, w) in &label.edges {
        out.push_bits(u64::from(u), idx_bits);
        out.push_bits(u64::from(v), idx_bits);
        out.push_bits(w.0, w_bits);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mst_configuration, MstScheme};
    use mstv_graph::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mst_predicate(cfg: &ConfigGraph<TreeState>) -> bool {
        let edges = cfg.induced_edges();
        mstv_mst::is_mst(cfg.graph(), &edges)
    }

    #[test]
    fn completeness_for_the_mst_predicate() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [2usize, 10, 40] {
            let g = gen::random_connected(n, 2 * n, gen::WeightDist::Uniform { max: 90 }, &mut rng);
            let cfg = mst_configuration(g);
            let scheme = UniversalScheme::new(mst_predicate);
            let labeling = scheme.marker(&cfg).unwrap();
            assert!(scheme.verify_all(&cfg, &labeling).accepted(), "n={n}");
        }
    }

    #[test]
    fn marker_rejects_when_predicate_fails() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = gen::random_connected(12, 20, gen::WeightDist::Uniform { max: 50 }, &mut rng);
        let mut cfg = mst_configuration(g);
        let scheme = UniversalScheme::new(mst_predicate);
        assert!(scheme.marker(&cfg).is_ok());
        if crate::faults::break_minimality(&mut cfg, &mut rng).is_some() {
            assert!(scheme.marker(&cfg).is_err());
        }
    }

    #[test]
    fn stale_map_rejected_after_weight_change() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = gen::random_connected(15, 25, gen::WeightDist::Uniform { max: 80 }, &mut rng);
        let mut cfg = mst_configuration(g);
        let scheme = UniversalScheme::new(mst_predicate);
        let labeling = scheme.marker(&cfg).unwrap();
        if crate::faults::break_minimality(&mut cfg, &mut rng).is_some() {
            // The map disagrees with the changed weight at its endpoints.
            assert!(!scheme.verify_all(&cfg, &labeling).accepted());
        }
    }

    #[test]
    fn forged_map_rejected() {
        // An adversary hands everyone a map of a DIFFERENT (valid) network:
        // row checks fail wherever the real topology disagrees.
        let mut rng = StdRng::seed_from_u64(4);
        let g1 = gen::random_connected(10, 14, gen::WeightDist::Uniform { max: 40 }, &mut rng);
        let g2 = gen::random_connected(10, 14, gen::WeightDist::Uniform { max: 40 }, &mut rng);
        assert_ne!(g1, g2);
        let cfg1 = mst_configuration(g1);
        let cfg2 = mst_configuration(g2);
        let scheme = UniversalScheme::new(mst_predicate);
        let forged = scheme.marker(&cfg2).unwrap();
        assert!(!scheme.verify_all(&cfg1, &forged).accepted());
    }

    #[test]
    fn map_with_wrong_owner_index_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = gen::random_connected(8, 10, gen::WeightDist::Uniform { max: 9 }, &mut rng);
        let cfg = mst_configuration(g);
        let scheme = UniversalScheme::new(mst_predicate);
        let mut labeling = scheme.marker(&cfg).unwrap();
        let l = labeling.label_mut(NodeId(3));
        l.me = 4;
        assert!(!scheme.verify_all(&cfg, &labeling).accepted());
    }

    #[test]
    fn size_gap_vs_pi_mst() {
        // The whole point: universal labels grow ~n log n, π_mst ~log²-ish.
        let mut rng = StdRng::seed_from_u64(6);
        let mut prev_ratio = 0.0;
        for n in [32usize, 128, 512] {
            let g =
                gen::random_connected(n, 2 * n, gen::WeightDist::Uniform { max: 1000 }, &mut rng);
            let cfg = mst_configuration(g);
            let universal = UniversalScheme::new(mst_predicate).marker(&cfg).unwrap();
            let compact = MstScheme::new().marker(&cfg).unwrap();
            let ratio = universal.max_label_bits() as f64 / compact.max_label_bits() as f64;
            assert!(ratio > prev_ratio, "gap must widen with n (got {ratio})");
            prev_ratio = ratio;
        }
        assert!(
            prev_ratio > 50.0,
            "at n=512 the gap is dramatic: {prev_ratio}"
        );
    }
}
