//! The agreement scheme (Lemma 2.2): the paper's warm-up example.
//!
//! *Predicate:* every node of the (anonymous) graph holds the same state
//! from `S = {1, …, 2^m}`. Computing agreement needs one-bit states; but
//! *proving* it locally needs `Θ(m)`-bit labels: the upper bound copies the
//! state into the label, and the pigeonhole lower bound (reproduced
//! executably by [`forge_agreement`]) shows any scheme with labels shorter
//! than `m/2` bits accepts some disagreeing configuration.

use mstv_graph::{ConfigGraph, Graph, NodeId};
use mstv_labels::BitString;

use crate::{Labeling, LocalView, MarkerError, ProofLabelingScheme};

/// The trivial (and optimal) proof labeling scheme for agreement: the
/// label is a copy of the state; the verifier compares it with its own
/// state and with every neighbor's label.
/// # Example
///
/// ```
/// use mstv_core::{AgreementScheme, ProofLabelingScheme};
/// use mstv_graph::{ConfigGraph, Graph, NodeId, Weight};
///
/// let mut g = Graph::new(2);
/// g.add_edge(NodeId(0), NodeId(1), Weight(1))?;
/// let cfg = ConfigGraph::new(g, vec![7u64, 7])?;
/// let scheme = AgreementScheme::new(8);
/// let labels = scheme.marker(&cfg).unwrap();
/// assert!(scheme.verify_all(&cfg, &labels).accepted());
/// # Ok::<(), mstv_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgreementScheme {
    /// State-space size parameter: states range over `0..2^m`.
    pub m: u32,
}

impl AgreementScheme {
    /// Creates the scheme for `m`-bit states.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0 || m > 64`.
    pub fn new(m: u32) -> Self {
        assert!((1..=64).contains(&m), "m must be in 1..=64");
        AgreementScheme { m }
    }
}

impl ProofLabelingScheme for AgreementScheme {
    type State = u64;
    type Label = u64;

    fn marker(&self, cfg: &ConfigGraph<u64>) -> Result<Labeling<u64>, MarkerError> {
        let states = cfg.states();
        if let Some(&first) = states.first() {
            if let Some(&bad) = states.iter().find(|&&s| s != first) {
                return Err(MarkerError::BadStates(format!(
                    "states disagree: {first} vs {bad}"
                )));
            }
        }
        let labels: Vec<u64> = states.to_vec();
        let encoded = labels
            .iter()
            .map(|&l| {
                let mut b = BitString::new();
                b.push_bits(l, self.m);
                b
            })
            .collect();
        Ok(Labeling::new(labels, encoded))
    }

    fn verify(&self, view: &LocalView<'_, u64, u64>) -> bool {
        *view.label == *view.state && view.neighbors.iter().all(|nb| *nb.label == *view.label)
    }
}

/// The executable pigeonhole argument of Lemma 2.2.
///
/// Takes any marker for the two-node path (as a closure mapping the shared
/// state `i` to the label pair `(L(u), L(v))`) whose labels fit in
/// `label_bits < m/2` bits each, and produces a *disagreeing* configuration
/// `(i, j)` with `i ≠ j` together with a mixed label assignment that the
/// verifier accepts everywhere — a forgery witnessing that short labels
/// cannot prove agreement.
///
/// Returns `None` only if the marker cheats by emitting labels wider than
/// `label_bits` (checked), in which case pigeonhole does not apply.
pub fn forge_agreement(
    m: u32,
    label_bits: u32,
    marker: impl Fn(u64) -> (u64, u64),
) -> Option<AgreementForgery> {
    assert!(m <= 20, "exhaustive search is exponential in m");
    let mut seen: std::collections::HashMap<(u64, u64), u64> = std::collections::HashMap::new();
    for i in 0..(1u64 << m) {
        let (lu, lv) = marker(i);
        if label_bits < 64 && (lu >> label_bits != 0 || lv >> label_bits != 0) {
            return None; // marker exceeded its label budget
        }
        if let Some(&j) = seen.get(&(lu, lv)) {
            return Some(AgreementForgery {
                state_u: j,
                state_v: i,
                label_u: lu,
                label_v: lv,
            });
        }
        seen.insert((lu, lv), i);
    }
    // With 2 * label_bits < m, pigeonhole guarantees a collision above.
    None
}

/// A forged agreement proof: two distinct states the verifier nevertheless
/// accepts under the mixed labels (see [`forge_agreement`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgreementForgery {
    /// State of node `u` (from configuration `j`).
    pub state_u: u64,
    /// State of node `v` (from configuration `i ≠ j`).
    pub state_v: u64,
    /// Label of `u`.
    pub label_u: u64,
    /// Label of `v`.
    pub label_v: u64,
}

impl AgreementForgery {
    /// Builds the mixed two-node configuration and label assignment.
    pub fn instantiate(&self) -> (ConfigGraph<u64>, Labeling<u64>) {
        let mut g = Graph::new(2);
        g.add_edge(NodeId(0), NodeId(1), mstv_graph::Weight(1))
            .unwrap();
        let cfg = ConfigGraph::new(g, vec![self.state_u, self.state_v]).unwrap();
        let labeling = Labeling::from_labels(vec![self.label_u, self.label_v]);
        (cfg, labeling)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstv_graph::{gen, Weight};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn agreeing_cfg(n: usize, state: u64, seed: u64) -> ConfigGraph<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gen::random_connected(n, n, gen::WeightDist::Uniform { max: 5 }, &mut rng);
        ConfigGraph::new(g, vec![state; n]).unwrap()
    }

    #[test]
    fn completeness() {
        let scheme = AgreementScheme::new(8);
        let cfg = agreeing_cfg(12, 200, 1);
        let labeling = scheme.marker(&cfg).unwrap();
        assert!(scheme.verify_all(&cfg, &labeling).accepted());
        assert_eq!(labeling.max_label_bits(), 8);
    }

    #[test]
    fn marker_rejects_disagreement() {
        let scheme = AgreementScheme::new(8);
        let mut cfg = agreeing_cfg(5, 7, 2);
        *cfg.state_mut(NodeId(3)) = 9;
        assert!(scheme.marker(&cfg).is_err());
    }

    #[test]
    fn copied_labels_cannot_hide_disagreement() {
        // Soundness against the *specific* natural cheat: reuse the honest
        // labels of an agreeing configuration on a disagreeing one.
        let scheme = AgreementScheme::new(8);
        let cfg = agreeing_cfg(10, 33, 3);
        let labeling = scheme.marker(&cfg).unwrap();
        let mut bad = cfg.clone();
        *bad.state_mut(NodeId(4)) = 44;
        let verdict = scheme.verify_all(&bad, &labeling);
        assert!(!verdict.accepted());
        assert!(verdict.rejecting.contains(&NodeId(4)));
    }

    #[test]
    fn uniform_forged_labels_also_fail() {
        // Adversary labels everyone with the same value: condition
        // label == state fails somewhere.
        let scheme = AgreementScheme::new(4);
        let mut cfg = agreeing_cfg(6, 1, 4);
        *cfg.state_mut(NodeId(2)) = 2;
        for forged in 0..16u64 {
            let labeling = Labeling::from_labels(vec![forged; 6]);
            assert!(
                !scheme.verify_all(&cfg, &labeling).accepted(),
                "forged={forged}"
            );
        }
    }

    #[test]
    fn pigeonhole_forgery_exists_for_short_labels() {
        // The honest scheme truncated to m/2 - 1 bits per label must be
        // forgeable (Lemma 2.2's lower bound, executably).
        let m = 8;
        let label_bits = 3; // 2 * 3 < 8
        let truncating_marker = |i: u64| (i & 0b111, i & 0b111);
        let forgery = forge_agreement(m, label_bits, truncating_marker)
            .expect("pigeonhole collision must exist");
        assert_ne!(forgery.state_u, forgery.state_v);
        let (cfg, labeling) = forgery.instantiate();
        let scheme = AgreementScheme::new(m);
        // The *honest* verifier rejects (labels don't match states)…
        assert!(!scheme.verify_all(&cfg, &labeling).accepted());
        // …but the natural short-label verifier (compare labels only, as any
        // sub-m-bit scheme must in effect do across the edge) accepts:
        assert_eq!(forgery.label_u, forgery.label_v & 0b111);
    }

    #[test]
    fn forge_rejects_overwide_markers() {
        // A marker that uses more bits than allowed escapes pigeonhole.
        let wide_marker = |i: u64| (i, i);
        assert_eq!(forge_agreement(8, 3, wide_marker), None);
    }

    #[test]
    fn single_node_accepts() {
        let scheme = AgreementScheme::new(8);
        let g = Graph::new(1);
        let cfg = ConfigGraph::new(g, vec![5u64]).unwrap();
        let labeling = scheme.marker(&cfg).unwrap();
        assert!(scheme.verify_all(&cfg, &labeling).accepted());
    }

    #[test]
    fn label_size_is_theta_m() {
        for m in [1u32, 4, 16, 64] {
            let scheme = AgreementScheme::new(m);
            let mut rng = StdRng::seed_from_u64(5);
            let g = gen::random_connected(6, 4, gen::WeightDist::Uniform { max: 3 }, &mut rng);
            let state = if m == 64 { u64::MAX } else { (1u64 << m) - 1 };
            let cfg = ConfigGraph::new(g, vec![state; 6]).unwrap();
            let labeling = scheme.marker(&cfg).unwrap();
            assert_eq!(labeling.max_label_bits(), m as usize);
        }
        let _ = Weight(1); // keep import used
    }
}
