//! A generic round-protocol engine with synchronous and α-synchronized
//! asynchronous execution.
//!
//! Protocols are written once against [`RoundProtocol`] — per-node state
//! machines that consume a round's inbox and emit per-port messages — and
//! can then run two ways:
//!
//! * [`run_synchronous`] — the classic lockstep model: every round, all
//!   outboxes are delivered before the next round begins;
//! * [`run_alpha_synchronized`] — the same protocol over an asynchronous
//!   event queue with arbitrary per-message delays, made safe by the
//!   α-synchronizer: every node sends a message to *every* neighbor every
//!   round (empty payloads where the protocol is silent) and advances to
//!   round `r + 1` only after hearing round-`r` traffic from all
//!   neighbors. The protocol's observable behavior is identical; the
//!   engine additionally counts the synchronizer's padding messages — the
//!   textbook price of asynchrony.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use mstv_graph::{Graph, NodeId, Port, Weight};
use rand::Rng;

use crate::RunStats;

/// What a node sees about one incident edge at initialization.
#[derive(Debug, Clone, Copy)]
pub struct PortInfo {
    /// The local port.
    pub port: Port,
    /// The edge weight.
    pub weight: Weight,
}

/// Immutable per-node context handed to protocols.
#[derive(Debug, Clone)]
pub struct NodeCtx {
    /// The node's unique identity (its index, in this engine).
    pub id: u64,
    /// The node's incident edges, in port order.
    pub ports: Vec<PortInfo>,
}

/// A message queued for sending through a local port.
#[derive(Debug, Clone)]
pub struct Send<M> {
    /// The port to send through.
    pub port: Port,
    /// The payload.
    pub payload: M,
}

/// A per-node state machine executed round by round.
pub trait RoundProtocol {
    /// Message payload type.
    type Msg: Clone;

    /// Payload size in bits, for cost accounting.
    fn msg_bits(&self, msg: &Self::Msg) -> usize;

    /// Called once before round 0; returns the first outbox.
    fn init(&mut self, ctx: &NodeCtx) -> Vec<Send<Self::Msg>>;

    /// Called each round with the messages that arrived (port they came
    /// in on, payload); returns the next outbox.
    fn round(
        &mut self,
        ctx: &NodeCtx,
        round: usize,
        inbox: &[(Port, Self::Msg)],
    ) -> Vec<Send<Self::Msg>>;

    /// Whether this node has halted (the run stops when all halt and no
    /// messages are in flight).
    fn halted(&self) -> bool;
}

fn contexts(graph: &Graph) -> Vec<NodeCtx> {
    graph
        .nodes()
        .map(|v| NodeCtx {
            id: u64::from(v.0),
            ports: graph
                .neighbors(v)
                .map(|nb| PortInfo {
                    port: nb.port,
                    weight: nb.weight,
                })
                .collect(),
        })
        .collect()
}

/// Runs a protocol in lockstep until every node halts and no messages are
/// in flight, or `max_rounds` elapses.
///
/// # Panics
///
/// Panics if `nodes.len()` differs from the node count, or the round
/// budget is exhausted (a protocol bug).
pub fn run_synchronous<P: RoundProtocol>(
    graph: &Graph,
    mut nodes: Vec<P>,
    max_rounds: usize,
) -> (Vec<P>, RunStats) {
    let n = graph.num_nodes();
    assert_eq!(nodes.len(), n, "one protocol instance per node");
    let ctxs = contexts(graph);
    let mut stats = RunStats::new();
    // inboxes[v] = messages arriving at v next round.
    let mut inboxes: Vec<Vec<(Port, P::Msg)>> = vec![Vec::new(); n];
    let deliver = |from: usize,
                   sends: Vec<Send<P::Msg>>,
                   inboxes: &mut Vec<Vec<(Port, P::Msg)>>,
                   stats: &mut RunStats,
                   proto: &P| {
        for s in sends {
            let v = NodeId::from_index(from);
            let to = graph.neighbor_at_port(v, s.port);
            let back = graph.port_towards(to, v).expect("edges are symmetric");
            stats.add_messages(1, proto.msg_bits(&s.payload) as u64);
            inboxes[to.index()].push((back, s.payload));
        }
    };
    for (i, node) in nodes.iter_mut().enumerate() {
        let sends = node.init(&ctxs[i]);
        let snapshot = &*node;
        deliver(i, sends, &mut inboxes, &mut stats, snapshot);
    }
    for round in 0..max_rounds {
        let in_flight: usize = inboxes.iter().map(Vec::len).sum();
        if in_flight == 0 && nodes.iter().all(P::halted) {
            return (nodes, stats);
        }
        stats.rounds += 1;
        let current = std::mem::replace(&mut inboxes, vec![Vec::new(); n]);
        for (i, inbox) in current.into_iter().enumerate() {
            let sends = nodes[i].round(&ctxs[i], round, &inbox);
            let snapshot = &nodes[i];
            deliver(i, sends, &mut inboxes, &mut stats, snapshot);
        }
    }
    let in_flight: usize = inboxes.iter().map(Vec::len).sum();
    assert!(
        in_flight == 0 && nodes.iter().all(P::halted),
        "protocol did not terminate within {max_rounds} rounds"
    );
    (nodes, stats)
}

/// Runs the same protocol over an asynchronous event queue using the
/// α-synchronizer, for exactly `rounds` rounds (typically the round count
/// of the synchronous run). Every node sends a message to every neighbor
/// every round — the protocol's payload where it has one, synchronizer
/// padding where it is silent — and executes round `r` only once all its
/// round-`r` traffic has arrived, so the protocol's observable behavior
/// is *identical* to the synchronous run regardless of delays.
///
/// Returns the nodes, the protocol's own cost, and the synchronizer's
/// padding-message count (the price of asynchrony).
///
/// # Panics
///
/// Panics if `nodes.len()` differs from the node count or
/// `max_delay == 0`.
pub fn run_alpha_synchronized<P: RoundProtocol>(
    graph: &Graph,
    mut nodes: Vec<P>,
    rounds: usize,
    max_delay: u64,
    rng: &mut impl Rng,
) -> (Vec<P>, RunStats, usize) {
    let n = graph.num_nodes();
    assert_eq!(nodes.len(), n, "one protocol instance per node");
    assert!(max_delay >= 1, "delays must be positive");
    let ctxs = contexts(graph);
    let mut stats = RunStats::new();
    stats.rounds = rounds as u64;
    let mut padding = 0usize;

    struct Event<M> {
        to: u32,
        in_port: Port,
        round: u32,
        payload: Option<M>,
    }
    let mut queue: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
    let mut events: Vec<Option<Event<P::Msg>>> = Vec::new();
    let mut seq = 0u64;

    use std::collections::HashMap;
    type RoundInbox<M> = HashMap<u32, Vec<(Port, M)>>;
    let mut buffered: Vec<RoundInbox<P::Msg>> = (0..n).map(|_| HashMap::new()).collect();
    let mut received: Vec<HashMap<u32, usize>> = (0..n).map(|_| HashMap::new()).collect();
    let mut next_round: Vec<u32> = vec![0; n];

    // Emits node i's full round-`round` traffic (payloads + padding).
    #[allow(clippy::too_many_arguments)]
    fn emit<P: RoundProtocol>(
        graph: &Graph,
        proto: &P,
        i: usize,
        round: u32,
        sends: Vec<Send<P::Msg>>,
        queue: &mut BinaryHeap<Reverse<(u64, u64)>>,
        events: &mut Vec<Option<Event<P::Msg>>>,
        seq: &mut u64,
        stats: &mut RunStats,
        padding: &mut usize,
        now: u64,
        max_delay: u64,
        rng: &mut impl Rng,
    ) {
        let v = NodeId::from_index(i);
        let deg = graph.degree(v);
        let mut payloads: Vec<Option<P::Msg>> = vec![None; deg];
        for s in sends {
            stats.add_messages(1, proto.msg_bits(&s.payload) as u64);
            payloads[s.port.index()] = Some(s.payload);
        }
        for (p, payload) in payloads.into_iter().enumerate() {
            if payload.is_none() {
                *padding += 1;
            }
            let port = Port(p as u32);
            let to = graph.neighbor_at_port(v, port);
            let back = graph.port_towards(to, v).expect("edges are symmetric");
            let delay = rng.gen_range(1..=max_delay);
            queue.push(Reverse((now + delay, *seq)));
            events.push(Some(Event {
                to: to.0,
                in_port: back,
                round,
                payload,
            }));
            *seq += 1;
        }
    }

    for i in 0..n {
        let sends = nodes[i].init(&ctxs[i]);
        emit(
            graph,
            &nodes[i],
            i,
            0,
            sends,
            &mut queue,
            &mut events,
            &mut seq,
            &mut stats,
            &mut padding,
            0,
            max_delay,
            rng,
        );
    }
    while let Some(Reverse((t, id))) = queue.pop() {
        let ev = events[id as usize].take().expect("event delivered once");
        let i = ev.to as usize;
        if let Some(payload) = ev.payload {
            buffered[i]
                .entry(ev.round)
                .or_default()
                .push((ev.in_port, payload));
        }
        *received[i].entry(ev.round).or_insert(0) += 1;
        while (next_round[i] as usize) < rounds
            && received[i].get(&next_round[i]).copied().unwrap_or(0)
                == graph.degree(NodeId::from_index(i))
        {
            let r = next_round[i];
            received[i].remove(&r);
            let inbox = buffered[i].remove(&r).unwrap_or_default();
            let sends = nodes[i].round(&ctxs[i], r as usize, &inbox);
            next_round[i] += 1;
            if (next_round[i] as usize) <= rounds {
                emit(
                    graph,
                    &nodes[i],
                    i,
                    next_round[i],
                    sends,
                    &mut queue,
                    &mut events,
                    &mut seq,
                    &mut stats,
                    &mut padding,
                    t,
                    max_delay,
                    rng,
                );
            }
        }
    }
    (nodes, stats, padding)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstv_graph::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Min-id flooding: every node learns the smallest identity in the
    /// network; halts when its value is stable for a round.
    #[derive(Debug, Clone)]
    struct MinFlood {
        value: u64,
        changed: bool,
        quiet_rounds: usize,
    }

    impl MinFlood {
        fn new() -> Self {
            MinFlood {
                value: u64::MAX,
                changed: true,
                quiet_rounds: 0,
            }
        }
    }

    impl RoundProtocol for MinFlood {
        type Msg = u64;

        fn msg_bits(&self, _: &u64) -> usize {
            64
        }

        fn init(&mut self, ctx: &NodeCtx) -> Vec<Send<u64>> {
            self.value = ctx.id;
            broadcast(ctx, self.value)
        }

        fn round(&mut self, ctx: &NodeCtx, _round: usize, inbox: &[(Port, u64)]) -> Vec<Send<u64>> {
            let before = self.value;
            for &(_, v) in inbox {
                self.value = self.value.min(v);
            }
            self.changed = self.value != before;
            if self.changed {
                self.quiet_rounds = 0;
                broadcast(ctx, self.value)
            } else {
                self.quiet_rounds += 1;
                Vec::new()
            }
        }

        fn halted(&self) -> bool {
            !self.changed && self.quiet_rounds >= 1
        }
    }

    fn broadcast(ctx: &NodeCtx, v: u64) -> Vec<Send<u64>> {
        ctx.ports
            .iter()
            .map(|p| Send {
                port: p.port,
                payload: v,
            })
            .collect()
    }

    #[test]
    fn synchronous_min_flood_converges() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [2usize, 10, 60] {
            let g = gen::random_connected(n, n, gen::WeightDist::Constant(1), &mut rng);
            let nodes = (0..n).map(|_| MinFlood::new()).collect();
            let (nodes, stats) = run_synchronous(&g, nodes, 10 * n + 10);
            for node in &nodes {
                assert_eq!(node.value, 0, "n={n}");
            }
            assert!(stats.msgs > 0);
            assert!(stats.rounds >= 1);
        }
    }

    #[test]
    fn alpha_synchronizer_matches_synchronous() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = gen::random_connected(25, 30, gen::WeightDist::Constant(1), &mut rng);
        let sync_nodes = (0..25).map(|_| MinFlood::new()).collect();
        let (sync_nodes, sync_stats) = run_synchronous(&g, sync_nodes, 300);
        for max_delay in [1u64, 13, 97] {
            let nodes = (0..25).map(|_| MinFlood::new()).collect();
            let (nodes, stats, padding) =
                run_alpha_synchronized(&g, nodes, sync_stats.rounds as usize, max_delay, &mut rng);
            for (a, b) in nodes.iter().zip(sync_nodes.iter()) {
                assert_eq!(a.value, b.value, "delay={max_delay}");
            }
            // Protocol traffic matches; the synchronizer pays extra.
            assert_eq!(stats.msgs, sync_stats.msgs);
            assert!(padding > 0, "padding must be accounted");
        }
    }

    #[test]
    fn min_flood_on_path_takes_diameter_rounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = gen::path(20, gen::WeightDist::Constant(1), &mut rng);
        let nodes = (0..20).map(|_| MinFlood::new()).collect();
        let (_, stats) = run_synchronous(&g, nodes, 100);
        // Information from node 0 needs 19 hops.
        assert!(stats.rounds >= 19, "{} rounds", stats.rounds);
    }

    #[test]
    #[should_panic(expected = "did not terminate")]
    fn round_budget_enforced() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = gen::path(30, gen::WeightDist::Constant(1), &mut rng);
        let nodes = (0..30).map(|_| MinFlood::new()).collect();
        let _ = run_synchronous(&g, nodes, 3);
    }
}
