//! Cost accounting for synchronous protocols.
//!
//! Historically this crate had its own `RunStats` struct while the
//! concurrent runtime (`mstv-net`) grew a second, slightly different
//! counter — and the two counted bits inconsistently. Both now share
//! [`mstv_core::MessageCost`] (`msgs`, `bits`, `rounds`), re-exported
//! here under the old `RunStats` name so existing call sites keep
//! reading naturally.

pub use mstv_core::MessageCost;

/// The synchronous simulator's historical name for [`MessageCost`].
pub type RunStats = MessageCost;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_stats_is_message_cost() {
        let mut s = RunStats::new();
        s.add_messages(10, 32);
        s.rounds += 1;
        assert_eq!(s.msgs, 10);
        assert_eq!(s.bits, 320);
        let mut t = MessageCost {
            msgs: 5,
            bits: 50,
            rounds: 2,
        };
        t += s;
        assert_eq!(t.rounds, 3);
        assert_eq!(t.msgs, 15);
        assert_eq!(t.bits, 370);
        assert_eq!(t.to_string(), "3 rounds, 15 messages, 370 bits");
    }
}
