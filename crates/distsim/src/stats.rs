//! Cost accounting for synchronous protocols.

use std::fmt;
use std::ops::AddAssign;

/// Communication costs of a protocol run in the synchronous model:
/// rounds, point-to-point messages, and total bits on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Synchronous rounds elapsed.
    pub rounds: usize,
    /// Point-to-point messages sent (one per edge direction per send).
    pub messages: usize,
    /// Total payload bits carried by those messages.
    pub bits: u128,
}

impl RunStats {
    /// The zero cost.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `count` messages of `bits_each` bits within the current
    /// round structure.
    pub fn add_messages(&mut self, count: usize, bits_each: usize) {
        self.messages += count;
        self.bits += count as u128 * bits_each as u128;
    }
}

impl AddAssign for RunStats {
    fn add_assign(&mut self, rhs: RunStats) {
        self.rounds += rhs.rounds;
        self.messages += rhs.messages;
        self.bits += rhs.bits;
    }
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rounds, {} messages, {} bits",
            self.rounds, self.messages, self.bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate() {
        let mut s = RunStats::new();
        s.add_messages(10, 32);
        s.rounds += 1;
        assert_eq!(s.messages, 10);
        assert_eq!(s.bits, 320);
        let mut t = RunStats {
            rounds: 2,
            messages: 5,
            bits: 50,
        };
        t += s;
        assert_eq!(t.rounds, 3);
        assert_eq!(t.messages, 15);
        assert_eq!(t.bits, 370);
        assert_eq!(t.to_string(), "3 rounds, 15 messages, 370 bits");
    }
}
