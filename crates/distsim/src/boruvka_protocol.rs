//! Distributed Borůvka as a pure [`crate::RoundProtocol`] state machine.
//!
//! Unlike [`crate::distributed_boruvka`] — whose harness advances
//! subphases when the network quiesces (an omniscient scheduler) — this
//! version is *fully distributed*: every node drives itself from the
//! round number alone, using the standard fixed schedule built from the
//! known network size `n`. Each of the `⌈log₂ n⌉ + 1` phases spends
//!
//! * rounds `0 .. n` flooding fragment identities along tree edges,
//! * round `n` exchanging `(identity, fragment)` with all neighbors,
//! * rounds `n + 1 ..= 2n + 1` min-flooding the fragment's lightest
//!   outgoing edge, and
//! * round `2n + 2` announcing merges across the winning edges,
//!
//! so the whole construction takes `Θ(n log n)` rounds without any global
//! coordination — the conservative price of not detecting quiescence.
//! Because it is a `RoundProtocol`, the same node code also runs under
//! the α-synchronizer with arbitrary message delays.

use std::collections::BTreeSet;

use mstv_graph::{EdgeId, Graph, NodeId, Port};

use crate::engine::{NodeCtx, RoundProtocol, Send};

/// Message alphabet of the protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoruvkaMsg {
    /// Fragment-identity flood along tree edges.
    Frag(u64),
    /// Frontier exchange: `(identity, fragment)` to every neighbor.
    Frontier {
        /// Sender identity.
        id: u64,
        /// Sender fragment.
        frag: u64,
    },
    /// MWOE min-flood along tree edges: `(weight, lo id, hi id)`.
    Best(BKey),
    /// Merge announcement across the chosen edge.
    Merge,
}

/// Strict total order key of an edge: weight then endpoint identities.
pub type BKey = (u64, u64, u64);

/// Per-node state of the distributed Borůvka protocol.
#[derive(Debug, Clone)]
pub struct BoruvkaNode {
    n: usize,
    id: u64,
    frag: u64,
    tree_ports: BTreeSet<Port>,
    neighbor_id: Vec<Option<u64>>,
    neighbor_frag: Vec<Option<u64>>,
    best: Option<BKey>,
    own_candidate: Option<(BKey, Port)>,
    phases_total: usize,
}

impl BoruvkaNode {
    /// Creates the node for a network of `n` nodes; `id` must be the
    /// node's unique identity (its index, in this engine).
    pub fn new(n: usize, id: u64) -> Self {
        let phases_total = if n <= 1 {
            0
        } else {
            (usize::BITS - (n - 1).leading_zeros()) as usize + 1
        };
        BoruvkaNode {
            n,
            id,
            frag: id,
            tree_ports: BTreeSet::new(),
            neighbor_id: Vec::new(),
            neighbor_frag: Vec::new(),
            best: None,
            own_candidate: None,
            phases_total,
        }
    }

    /// Rounds per phase for a network of this size.
    fn phase_len(&self) -> usize {
        2 * self.n + 3
    }

    /// Total rounds the protocol runs.
    pub fn total_rounds(n: usize) -> usize {
        let node = BoruvkaNode::new(n, 0);
        node.phases_total * node.phase_len() + 1
    }

    /// The node's final fragment identity (all equal on a connected
    /// graph once the protocol ends).
    pub fn fragment(&self) -> u64 {
        self.frag
    }

    /// The ports this node marked as tree edges.
    pub fn tree_ports(&self) -> &BTreeSet<Port> {
        &self.tree_ports
    }

    fn send_on_tree_ports(&self, msg: BoruvkaMsg) -> Vec<Send<BoruvkaMsg>> {
        self.tree_ports
            .iter()
            .map(|&port| Send {
                port,
                payload: msg.clone(),
            })
            .collect()
    }
}

impl RoundProtocol for BoruvkaNode {
    type Msg = BoruvkaMsg;

    fn msg_bits(&self, msg: &BoruvkaMsg) -> usize {
        // Generous fixed-width accounting: ids/log n bits, weights/64.
        let id_bits = (usize::BITS - self.n.leading_zeros()) as usize;
        match msg {
            BoruvkaMsg::Frag(_) => id_bits,
            BoruvkaMsg::Frontier { .. } => 2 * id_bits,
            BoruvkaMsg::Best(_) => 64 + 2 * id_bits,
            BoruvkaMsg::Merge => 1,
        }
    }

    fn init(&mut self, ctx: &NodeCtx) -> Vec<Send<BoruvkaMsg>> {
        self.neighbor_id = vec![None; ctx.ports.len()];
        self.neighbor_frag = vec![None; ctx.ports.len()];
        // Phase 0, subround 0 happens in round 0; nothing to send yet —
        // the schedule starts with the (empty) fragment flood.
        Vec::new()
    }

    fn round(
        &mut self,
        ctx: &NodeCtx,
        round: usize,
        inbox: &[(Port, BoruvkaMsg)],
    ) -> Vec<Send<BoruvkaMsg>> {
        if self.halted_at(round) {
            return Vec::new();
        }
        let r = round % self.phase_len();
        let n = self.n;
        // Absorb incoming messages (they were sent at subround r - 1, or
        // at the previous phase's merge subround when r == 0).
        for (port, msg) in inbox {
            match msg {
                BoruvkaMsg::Frag(f) => self.frag = self.frag.min(*f),
                BoruvkaMsg::Frontier { id, frag } => {
                    self.neighbor_id[port.index()] = Some(*id);
                    self.neighbor_frag[port.index()] = Some(*frag);
                }
                BoruvkaMsg::Best(k) => {
                    if self.best.is_none_or(|b| *k < b) {
                        self.best = Some(*k);
                    }
                }
                BoruvkaMsg::Merge => {
                    self.tree_ports.insert(*port);
                }
            }
        }
        // Act according to the schedule.
        if r < n {
            // Fragment flood.
            self.send_on_tree_ports(BoruvkaMsg::Frag(self.frag))
        } else if r == n {
            // Frontier exchange on all ports.
            ctx.ports
                .iter()
                .map(|p| Send {
                    port: p.port,
                    payload: BoruvkaMsg::Frontier {
                        id: self.id,
                        frag: self.frag,
                    },
                })
                .collect()
        } else if r == n + 1 {
            // Pick the local candidate and start the min-flood.
            self.own_candidate = ctx
                .ports
                .iter()
                .filter_map(|p| {
                    let nid = self.neighbor_id[p.port.index()]?;
                    let nfrag = self.neighbor_frag[p.port.index()]?;
                    if nfrag == self.frag {
                        return None;
                    }
                    let key = (p.weight.0, self.id.min(nid), self.id.max(nid));
                    Some((key, p.port))
                })
                .min();
            self.best = self.own_candidate.map(|(k, _)| k);
            match self.best {
                Some(k) => self.send_on_tree_ports(BoruvkaMsg::Best(k)),
                None => Vec::new(),
            }
        } else if r < 2 * n + 2 {
            // Continue the min-flood.
            match self.best {
                Some(k) => self.send_on_tree_ports(BoruvkaMsg::Best(k)),
                None => Vec::new(),
            }
        } else {
            // Merge subround: the owner of the winning edge announces.
            debug_assert_eq!(r, 2 * n + 2);
            if let (Some(best), Some((own, port))) = (self.best, self.own_candidate) {
                if best == own {
                    self.tree_ports.insert(port);
                    return vec![Send {
                        port,
                        payload: BoruvkaMsg::Merge,
                    }];
                }
            }
            Vec::new()
        }
    }

    fn halted(&self) -> bool {
        // The protocol runs a fixed schedule (`halted_at` silences nodes
        // after the last phase); executions therefore use the fixed-round
        // α-synchronized runner rather than quiescence detection.
        false
    }
}

impl BoruvkaNode {
    fn halted_at(&self, round: usize) -> bool {
        self.phases_total == 0 || round >= self.phases_total * self.phase_len()
    }
}

/// Runs the protocol synchronously and extracts the constructed tree.
///
/// # Panics
///
/// Panics if the graph is not connected or empty.
pub fn boruvka_protocol_run(graph: &Graph) -> (Vec<EdgeId>, crate::RunStats) {
    let n = graph.num_nodes();
    assert!(n > 0, "empty graph");
    let nodes: Vec<BoruvkaNode> = (0..n).map(|i| BoruvkaNode::new(n, i as u64)).collect();
    let budget = BoruvkaNode::total_rounds(n) + 2;
    // The protocol never self-reports halt (see `halted`), so run for the
    // exact schedule length.
    let (nodes, stats) = run_for_schedule(graph, nodes, budget);
    let mut edges = BTreeSet::new();
    for (i, node) in nodes.iter().enumerate() {
        let v = NodeId::from_index(i);
        for &p in node.tree_ports() {
            edges.insert(graph.edge_at_port(v, p));
        }
    }
    let edges: Vec<EdgeId> = edges.into_iter().collect();
    assert!(
        graph.is_spanning_tree(&edges) || n == 1,
        "schedule must produce a spanning tree on a connected graph"
    );
    (edges, stats)
}

/// Like `run_synchronous` but runs for a fixed number of rounds (the
/// protocol's schedule) rather than until quiescence.
fn run_for_schedule(
    graph: &Graph,
    nodes: Vec<BoruvkaNode>,
    rounds: usize,
) -> (Vec<BoruvkaNode>, crate::RunStats) {
    // Reuse the α-synchronizer with unit delays: with `max_delay == 1` it
    // degenerates to exact lockstep execution for `rounds` rounds.
    let mut rng = rand::rngs::mock::StepRng::new(0, 0);
    let (nodes, mut stats, _padding) =
        crate::engine::run_alpha_synchronized(graph, nodes, rounds, 1, &mut rng);
    stats.rounds = rounds as u64;
    (nodes, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstv_graph::gen;
    use mstv_mst::{kruskal, mst_weight};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn builds_an_mst_small_networks() {
        let mut rng = StdRng::seed_from_u64(1);
        for (n, extra) in [(2usize, 0usize), (5, 4), (12, 15), (24, 30)] {
            let g = gen::random_connected(n, extra, gen::WeightDist::Uniform { max: 40 }, &mut rng);
            let (edges, stats) = boruvka_protocol_run(&g);
            assert!(g.is_spanning_tree(&edges), "n={n}");
            assert_eq!(
                mst_weight(&g, &edges),
                mst_weight(&g, &kruskal(&g)),
                "n={n}"
            );
            // Fixed schedule: Θ(n log n) rounds.
            assert_eq!(stats.rounds, (BoruvkaNode::total_rounds(n) + 2) as u64);
        }
    }

    #[test]
    fn handles_ties() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = gen::random_connected(15, 25, gen::WeightDist::Constant(3), &mut rng);
        let (edges, _) = boruvka_protocol_run(&g);
        assert!(g.is_spanning_tree(&edges));
    }

    #[test]
    fn async_run_builds_the_same_tree() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = gen::random_connected(10, 12, gen::WeightDist::Uniform { max: 25 }, &mut rng);
        let (sync_edges, _) = boruvka_protocol_run(&g);
        let n = g.num_nodes();
        let nodes: Vec<BoruvkaNode> = (0..n).map(|i| BoruvkaNode::new(n, i as u64)).collect();
        let (nodes, _, padding) = crate::engine::run_alpha_synchronized(
            &g,
            nodes,
            BoruvkaNode::total_rounds(n) + 2,
            17,
            &mut rng,
        );
        let mut edges = BTreeSet::new();
        for (i, node) in nodes.iter().enumerate() {
            let v = NodeId::from_index(i);
            for &p in node.tree_ports() {
                edges.insert(g.edge_at_port(v, p));
            }
        }
        let edges: Vec<EdgeId> = edges.into_iter().collect();
        assert_eq!(edges, sync_edges, "delays must not change the tree");
        assert!(padding > 0);
    }

    #[test]
    fn all_nodes_agree_on_final_fragment() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = gen::random_connected(20, 20, gen::WeightDist::Uniform { max: 9 }, &mut rng);
        let n = g.num_nodes();
        let nodes: Vec<BoruvkaNode> = (0..n).map(|i| BoruvkaNode::new(n, i as u64)).collect();
        let mut mock = rand::rngs::mock::StepRng::new(0, 0);
        let (nodes, _, _) = crate::engine::run_alpha_synchronized(
            &g,
            nodes,
            BoruvkaNode::total_rounds(n) + 2,
            1,
            &mut mock,
        );
        // After the last fragment flood every node knows fragment 0.
        // (The final phase's flood runs after the last merge.)
        let frags: BTreeSet<u64> = nodes.iter().map(BoruvkaNode::fragment).collect();
        assert_eq!(frags.len(), 1, "fragments: {frags:?}");
        assert_eq!(frags.into_iter().next(), Some(0));
    }

    #[test]
    fn single_node() {
        let g = Graph::new(1);
        let (edges, _) = boruvka_protocol_run(&g);
        assert!(edges.is_empty());
    }
}
