//! The one-round distributed verification protocol.
//!
//! Every node transmits its label through every port; after this single
//! round, each node holds exactly the paper's verifier input `N_L(v)` and
//! runs the local verifier. This is what makes proof labeling schemes
//! attractive for self-stabilization: the whole check costs one round and
//! `2·|E|` messages of label size.

use mstv_core::{local_view, Labeling, ProofLabelingScheme, Verdict};
use mstv_graph::{ConfigGraph, NodeId};

use crate::RunStats;

/// Runs the one-round verification protocol and accounts its cost: one
/// round, one message per edge direction, each carrying the sender's
/// encoded label.
pub fn verification_round<P: ProofLabelingScheme>(
    scheme: &P,
    cfg: &ConfigGraph<P::State>,
    labeling: &Labeling<P::Label>,
) -> (Verdict, RunStats) {
    let g = cfg.graph();
    let mut stats = RunStats::new();
    stats.rounds = 1;
    // Each node sends its label through each port.
    for v in g.nodes() {
        stats.add_messages(g.degree(v) as u64, labeling.encoded(v).len() as u64);
    }
    // Labels delivered: run the local verifier everywhere.
    let mut rejecting = Vec::new();
    for i in 0..g.num_nodes() {
        let v = NodeId::from_index(i);
        let view = local_view(cfg, labeling.labels(), v);
        if !scheme.verify(&view) {
            rejecting.push(v);
        }
    }
    (
        Verdict {
            rejecting,
            num_nodes: g.num_nodes(),
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstv_core::{mst_configuration, MstScheme};
    use mstv_graph::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn one_round_two_m_messages() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = gen::random_connected(30, 45, gen::WeightDist::Uniform { max: 100 }, &mut rng);
        let m = g.num_edges();
        let cfg = mst_configuration(g);
        let scheme = MstScheme::new();
        let labeling = scheme.marker(&cfg).unwrap();
        let (verdict, stats) = verification_round(&scheme, &cfg, &labeling);
        assert!(verdict.accepted());
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.msgs, 2 * m as u64);
        assert!(stats.bits > 0);
        // Each message carries at most the scheme's max label size.
        assert!(stats.bits <= (2 * m) as u128 * labeling.max_label_bits() as u128);
    }

    #[test]
    fn detects_fault_in_one_round() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = gen::random_connected(25, 50, gen::WeightDist::Uniform { max: 100 }, &mut rng);
        let mut cfg = mst_configuration(g);
        let scheme = MstScheme::new();
        let labeling = scheme.marker(&cfg).unwrap();
        if mstv_core::faults::break_minimality(&mut cfg, &mut rng).is_some() {
            let (verdict, stats) = verification_round(&scheme, &cfg, &labeling);
            assert!(!verdict.accepted());
            assert_eq!(stats.rounds, 1);
        }
    }
}
