//! Distributed Bellman–Ford as a [`crate::RoundProtocol`]: every node
//! relaxes its distance estimate from its neighbors' announcements and,
//! after `n` rounds, its best predecessor port encodes a shortest-path
//! tree — which the `SptScheme` proof labels can then certify. Together
//! with the Borůvka protocol this gives the simulator distributed
//! *construction* counterparts for both tree predicates the proof
//! labeling schemes verify.

use mstv_graph::Port;

use crate::engine::{NodeCtx, RoundProtocol, Send};

/// Per-node state of the distributed Bellman–Ford protocol.
#[derive(Debug, Clone)]
pub struct BellmanFordNode {
    root_id: u64,
    dist: u64,
    parent_port: Option<Port>,
    changed: bool,
    rounds_total: usize,
}

impl BellmanFordNode {
    /// Creates the node for a network of `n` nodes, growing the SPT from
    /// the node whose identity is `root_id`.
    pub fn new(n: usize, root_id: u64) -> Self {
        BellmanFordNode {
            root_id,
            dist: u64::MAX,
            parent_port: None,
            changed: false,
            rounds_total: n,
        }
    }

    /// The node's final distance estimate.
    pub fn dist(&self) -> u64 {
        self.dist
    }

    /// The port towards the parent in the constructed tree (`None` at the
    /// root).
    pub fn parent_port(&self) -> Option<Port> {
        self.parent_port
    }
}

impl RoundProtocol for BellmanFordNode {
    type Msg = u64;

    fn msg_bits(&self, _msg: &u64) -> usize {
        64
    }

    fn init(&mut self, ctx: &NodeCtx) -> Vec<Send<u64>> {
        if ctx.id == self.root_id {
            self.dist = 0;
            broadcast(ctx, 0)
        } else {
            Vec::new()
        }
    }

    fn round(&mut self, ctx: &NodeCtx, round: usize, inbox: &[(Port, u64)]) -> Vec<Send<u64>> {
        if round >= self.rounds_total {
            return Vec::new();
        }
        self.changed = false;
        for &(port, their_dist) in inbox {
            let w = ctx.ports[port.index()].weight.0;
            let candidate = their_dist.saturating_add(w);
            // Deterministic tie-break: smaller distance, then smaller port.
            let better = candidate < self.dist
                || (candidate == self.dist && self.parent_port.is_some_and(|p| port < p));
            if better {
                self.dist = candidate;
                self.parent_port = Some(port);
                self.changed = true;
            }
        }
        if self.changed {
            broadcast(ctx, self.dist)
        } else {
            Vec::new()
        }
    }

    fn halted(&self) -> bool {
        !self.changed
    }
}

fn broadcast(ctx: &NodeCtx, dist: u64) -> Vec<Send<u64>> {
    ctx.ports
        .iter()
        .map(|p| Send {
            port: p.port,
            payload: dist,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_alpha_synchronized, run_synchronous};
    use mstv_core::{ProofLabelingScheme, SptScheme};
    use mstv_graph::{gen, ConfigGraph, NodeId, TreeState};
    use mstv_mst::shortest_path_tree;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_and_extract(g: &mstv_graph::Graph) -> (Vec<BellmanFordNode>, ConfigGraph<TreeState>) {
        let n = g.num_nodes();
        let nodes: Vec<BellmanFordNode> = (0..n).map(|_| BellmanFordNode::new(n, 0)).collect();
        let (nodes, _) = run_synchronous(g, nodes, 5 * n + 5);
        let states: Vec<TreeState> = nodes
            .iter()
            .enumerate()
            .map(|(i, node)| TreeState {
                id: i as u64,
                parent_port: node.parent_port(),
            })
            .collect();
        let cfg = ConfigGraph::new(g.clone(), states).unwrap();
        (nodes, cfg)
    }

    #[test]
    fn distances_match_dijkstra() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [2usize, 12, 50] {
            let g = gen::random_connected(n, 2 * n, gen::WeightDist::Uniform { max: 60 }, &mut rng);
            let (nodes, _) = run_and_extract(&g);
            let (_, dist) = shortest_path_tree(&g, NodeId(0));
            for (i, node) in nodes.iter().enumerate() {
                assert_eq!(node.dist(), dist[i], "n={n} node={i}");
            }
        }
    }

    #[test]
    fn constructed_tree_is_certified_by_spt_scheme() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = gen::random_connected(30, 60, gen::WeightDist::Uniform { max: 100 }, &mut rng);
        let (_, cfg) = run_and_extract(&g);
        assert!(cfg.induces_spanning_tree());
        let scheme = SptScheme::new();
        let labeling = scheme.marker(&cfg).expect("Bellman-Ford builds an SPT");
        assert!(scheme.verify_all(&cfg, &labeling).accepted());
    }

    #[test]
    fn async_run_matches_lockstep() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = gen::random_connected(18, 30, gen::WeightDist::Uniform { max: 40 }, &mut rng);
        let n = g.num_nodes();
        let (sync_nodes, _) = run_and_extract(&g);
        let nodes: Vec<BellmanFordNode> = (0..n).map(|_| BellmanFordNode::new(n, 0)).collect();
        let (nodes, _, _) = run_alpha_synchronized(&g, nodes, n, 23, &mut rng);
        for (a, b) in nodes.iter().zip(sync_nodes.iter()) {
            assert_eq!(a.dist(), b.dist());
        }
    }

    #[test]
    fn single_node() {
        let g = mstv_graph::Graph::new(1);
        let (nodes, _) = run_and_extract(&g);
        assert_eq!(nodes[0].dist(), 0);
        assert_eq!(nodes[0].parent_port(), None);
    }
}
