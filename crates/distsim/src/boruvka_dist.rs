//! Synchronous distributed Borůvka — the MST *construction* the paper
//! contrasts verification against.
//!
//! The protocol follows the classic GHS outline in a synchronous setting.
//! Each phase consists of message-driven subphases, every one of which is
//! simulated round by round with explicit per-port sends:
//!
//! 1. **fragment flood** — fragment identities (minimum member identity)
//!    propagate along the already-chosen tree edges until stable;
//! 2. **frontier exchange** — every node tells all neighbors its fragment,
//!    so outgoing edges become locally recognizable;
//! 3. **MWOE flood** — each node proposes its lightest outgoing edge; the
//!    fragment-wide minimum floods along tree edges until stable;
//! 4. **merge** — the endpoint owning the winning edge announces the merge
//!    across it; both endpoints add the edge to the tree.
//!
//! Phases repeat until no fragment has an outgoing edge (one fragment =
//! spanning tree). Ties are broken by endpoint identities, so the run is
//! deterministic and cycle-free. The returned [`RunStats`] count every
//! round and every message with its payload size — the numbers behind
//! experiment E9.

use std::collections::BTreeSet;

use mstv_graph::{EdgeId, Graph, NodeId, Port, Weight};
use mstv_mst::EdgeKey;

use crate::RunStats;

/// Result of a distributed Borůvka run.
#[derive(Debug, Clone)]
pub struct BoruvkaRun {
    /// The constructed spanning tree.
    pub edges: Vec<EdgeId>,
    /// Communication costs of the whole run.
    pub stats: RunStats,
    /// Number of Borůvka phases executed (including the final, empty one
    /// that detects termination).
    pub phases: usize,
}

fn key_of(g: &Graph, e: EdgeId) -> EdgeKey {
    let edge = g.edge(e);
    let (lo, hi) = edge.normalized();
    EdgeKey {
        weight: edge.w,
        class: 0,
        lo: u64::from(lo.0),
        hi: u64::from(hi.0),
    }
}

/// Runs the synchronous distributed Borůvka protocol.
///
/// # Panics
///
/// Panics if the graph is not connected or is empty.
pub fn distributed_boruvka(g: &Graph) -> BoruvkaRun {
    let n = g.num_nodes();
    assert!(n > 0, "distributed Borůvka needs at least one node");
    let id_bits = Weight(n as u64).bit_width() as usize;
    let key_bits = g.max_weight().bit_width() as usize + 2 * id_bits;

    let mut stats = RunStats::new();
    let mut frag: Vec<u64> = (0..n as u64).collect();
    let mut tree_ports: Vec<BTreeSet<Port>> = vec![BTreeSet::new(); n];
    let mut tree_edges: BTreeSet<EdgeId> = BTreeSet::new();
    let mut phases = 0usize;

    loop {
        phases += 1;
        // Subphase 1: fragment-identity flood along tree edges until no
        // node's fragment changes. Every flood round, every node sends on
        // every tree port (it cannot know stability in advance).
        loop {
            stats.rounds += 1;
            let mut next = frag.clone();
            let mut changed = false;
            for ports in &tree_ports {
                stats.add_messages(ports.len() as u64, id_bits as u64);
            }
            for v in 0..n {
                for &p in &tree_ports[v] {
                    let u = g.neighbor_at_port(NodeId::from_index(v), p);
                    if frag[u.index()] < next[v] {
                        next[v] = frag[u.index()];
                        changed = true;
                    }
                }
            }
            frag = next;
            if !changed {
                break;
            }
        }
        // Subphase 2: frontier exchange — every node announces (id, frag)
        // on every port.
        stats.rounds += 1;
        for v in 0..n {
            stats.add_messages(g.degree(NodeId::from_index(v)) as u64, 2 * id_bits as u64);
        }
        // Subphase 3: MWOE candidates + min-flood along tree edges.
        let mut best: Vec<Option<(EdgeKey, EdgeId)>> = (0..n)
            .map(|v| {
                g.neighbors(NodeId::from_index(v))
                    .filter(|nb| frag[nb.node.index()] != frag[v])
                    .map(|nb| (key_of(g, nb.edge), nb.edge))
                    .min_by_key(|&(k, _)| k)
            })
            .collect();
        loop {
            stats.rounds += 1;
            for ports in &tree_ports {
                stats.add_messages(ports.len() as u64, key_bits as u64);
            }
            let snapshot = best.clone();
            let mut changed = false;
            for v in 0..n {
                for &p in &tree_ports[v] {
                    let u = g.neighbor_at_port(NodeId::from_index(v), p);
                    if let Some(theirs) = snapshot[u.index()] {
                        if best[v].is_none_or(|mine| theirs.0 < mine.0) {
                            best[v] = Some(theirs);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Subphase 4: merge across winning edges. The endpoint whose own
        // incident edge realizes the fragment minimum announces the merge.
        stats.rounds += 1;
        let mut merged_any = false;
        for v in 0..n {
            let Some((fk, fe)) = best[v] else { continue };
            // Is the winning edge incident to v, pointing out of v's
            // fragment?
            let vid = NodeId::from_index(v);
            let Some(nb) = g
                .neighbors(vid)
                .find(|nb| nb.edge == fe && frag[nb.node.index()] != frag[v])
            else {
                continue;
            };
            debug_assert_eq!(key_of(g, fe), fk);
            stats.add_messages(1, key_bits as u64);
            if tree_edges.insert(fe) {
                merged_any = true;
            }
            tree_ports[v].insert(nb.port);
            let back = g.port_towards(nb.node, vid).expect("edges are symmetric");
            tree_ports[nb.node.index()].insert(back);
        }
        if !merged_any {
            break;
        }
    }
    assert!(
        g.is_spanning_tree(&tree_edges.iter().copied().collect::<Vec<_>>()) || n == 1,
        "distributed Borůvka requires a connected graph"
    );
    BoruvkaRun {
        edges: tree_edges.into_iter().collect(),
        stats,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstv_graph::gen;
    use mstv_mst::{kruskal, mst_weight};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn builds_an_mst() {
        let mut rng = StdRng::seed_from_u64(1);
        for (n, extra) in [(2usize, 0usize), (5, 5), (40, 80), (120, 240)] {
            let g = gen::random_connected(n, extra, gen::WeightDist::Uniform { max: 50 }, &mut rng);
            let run = distributed_boruvka(&g);
            assert!(g.is_spanning_tree(&run.edges), "n={n}");
            assert_eq!(
                mst_weight(&g, &run.edges),
                mst_weight(&g, &kruskal(&g)),
                "n={n}"
            );
        }
    }

    #[test]
    fn handles_ties_deterministically() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = gen::random_connected(30, 60, gen::WeightDist::Constant(7), &mut rng);
        let a = distributed_boruvka(&g);
        let b = distributed_boruvka(&g);
        assert_eq!(a.edges, b.edges);
        assert!(g.is_spanning_tree(&a.edges));
    }

    #[test]
    fn phase_count_logarithmic() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = gen::random_connected(256, 512, gen::WeightDist::Uniform { max: 10_000 }, &mut rng);
        let run = distributed_boruvka(&g);
        // ⌈log₂ 256⌉ = 8 merge phases + 1 terminal detection phase.
        assert!(run.phases <= 9, "{} phases", run.phases);
        assert!(run.stats.rounds > 1);
        assert!(run.stats.msgs > 2 * g.num_edges() as u64);
    }

    #[test]
    fn single_node() {
        let g = Graph::new(1);
        let run = distributed_boruvka(&g);
        assert!(run.edges.is_empty());
        assert_eq!(run.phases, 1);
    }

    #[test]
    fn construction_costs_dwarf_verification() {
        // The paper's motivating asymmetry, in numbers.
        use mstv_core::{mst_configuration, MstScheme, ProofLabelingScheme};
        let mut rng = StdRng::seed_from_u64(4);
        let g = gen::random_connected(100, 200, gen::WeightDist::Uniform { max: 1000 }, &mut rng);
        let run = distributed_boruvka(&g);
        let cfg = mst_configuration(g);
        let scheme = MstScheme::new();
        let labeling = scheme.marker(&cfg).unwrap();
        let (verdict, vstats) = crate::verification_round(&scheme, &cfg, &labeling);
        assert!(verdict.accepted());
        assert_eq!(vstats.rounds, 1);
        assert!(run.stats.rounds > 10 * vstats.rounds);
        assert!(run.stats.msgs > vstats.msgs);
    }
}
