//! The one-round verification protocol as a [`crate::RoundProtocol`].
//!
//! [`crate::verification_round`] computes the verdict and its cost
//! directly; this module instead *executes* the protocol message by
//! message on the generic engine, so it can run synchronously or under
//! the α-synchronizer with arbitrary delays — node code identical in
//! both, exactly the paper's claim that the verifier is a purely local,
//! one-shot computation.

use mstv_core::{LocalView, NeighborView, ProofLabelingScheme};
use mstv_graph::{NodeId, Port};

use crate::engine::{NodeCtx, RoundProtocol, Send};

/// Per-node instance of the verification protocol.
#[derive(Debug, Clone)]
pub struct VerifyNode<P: ProofLabelingScheme> {
    scheme: P,
    state: P::State,
    label: P::Label,
    label_bits: usize,
    verdict: Option<bool>,
}

impl<P: ProofLabelingScheme> VerifyNode<P> {
    /// Creates the node with its state, its label, and the label's
    /// encoded size (for message accounting).
    pub fn new(scheme: P, state: P::State, label: P::Label, label_bits: usize) -> Self {
        VerifyNode {
            scheme,
            state,
            label,
            label_bits,
            verdict: None,
        }
    }

    /// The node's decision, once round 0 has executed.
    pub fn verdict(&self) -> Option<bool> {
        self.verdict
    }
}

impl<P: ProofLabelingScheme> RoundProtocol for VerifyNode<P>
where
    P: Clone,
    P::State: Clone,
{
    type Msg = P::Label;

    fn msg_bits(&self, _msg: &P::Label) -> usize {
        self.label_bits
    }

    fn init(&mut self, ctx: &NodeCtx) -> Vec<Send<P::Label>> {
        ctx.ports
            .iter()
            .map(|p| Send {
                port: p.port,
                payload: self.label.clone(),
            })
            .collect()
    }

    fn round(
        &mut self,
        ctx: &NodeCtx,
        round: usize,
        inbox: &[(Port, P::Label)],
    ) -> Vec<Send<P::Label>> {
        if round > 0 || self.verdict.is_some() {
            return Vec::new();
        }
        // Assemble N_L(v) from the received labels, in port order.
        let mut by_port: Vec<Option<&P::Label>> = vec![None; ctx.ports.len()];
        for (port, label) in inbox {
            by_port[port.index()] = Some(label);
        }
        let neighbors: Vec<NeighborView<'_, P::Label>> = ctx
            .ports
            .iter()
            .map(|p| NeighborView {
                port: p.port,
                weight: p.weight,
                label: by_port[p.port.index()].expect("one label per neighbor"),
            })
            .collect();
        let view = LocalView {
            node: NodeId(ctx.id as u32),
            state: &self.state,
            label: &self.label,
            neighbors,
        };
        self.verdict = Some(self.scheme.verify(&view));
        Vec::new()
    }

    fn halted(&self) -> bool {
        self.verdict.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_alpha_synchronized, run_synchronous};
    use mstv_core::{faults, mst_configuration, Labeling, MstScheme};
    use mstv_graph::{gen, ConfigGraph, TreeState};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build_nodes(
        cfg: &ConfigGraph<TreeState>,
        labeling: &Labeling<mstv_core::MstLabel>,
    ) -> Vec<VerifyNode<MstScheme>> {
        cfg.graph()
            .nodes()
            .map(|v| {
                VerifyNode::new(
                    MstScheme::new(),
                    *cfg.state(v),
                    labeling.label(v).clone(),
                    labeling.encoded(v).len().max(1),
                )
            })
            .collect()
    }

    #[test]
    fn engine_run_matches_direct_verification() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = gen::random_connected(20, 35, gen::WeightDist::Uniform { max: 90 }, &mut rng);
        let cfg = mst_configuration(g);
        let scheme = MstScheme::new();
        let labeling = scheme.marker(&cfg).unwrap();
        let nodes = build_nodes(&cfg, &labeling);
        let (nodes, stats) = run_synchronous(cfg.graph(), nodes, 5);
        assert!(nodes.iter().all(|n| n.verdict() == Some(true)));
        assert_eq!(stats.msgs, 2 * cfg.graph().num_edges() as u64);
        assert_eq!(stats.rounds, 1);
    }

    #[test]
    fn faulty_network_rejected_on_engine_sync_and_async() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut exercised = 0;
        for seed in 0..8 {
            let g = gen::random_connected(
                18,
                30,
                gen::WeightDist::Uniform { max: 100 },
                &mut StdRng::seed_from_u64(seed),
            );
            let mut cfg = mst_configuration(g);
            let scheme = MstScheme::new();
            let labeling = scheme.marker(&cfg).unwrap();
            if faults::break_minimality(&mut cfg, &mut rng).is_none() {
                continue;
            }
            let expected = scheme.verify_all(&cfg, &labeling);
            // Synchronous engine run.
            let (nodes, _) = run_synchronous(cfg.graph(), build_nodes(&cfg, &labeling), 5);
            let sync_reject: Vec<u32> = nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| n.verdict() == Some(false))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(
                sync_reject,
                expected.rejecting.iter().map(|v| v.0).collect::<Vec<_>>()
            );
            // α-synchronized asynchronous run: identical outcome.
            let (nodes, _, padding) =
                run_alpha_synchronized(cfg.graph(), build_nodes(&cfg, &labeling), 1, 31, &mut rng);
            let async_reject: Vec<u32> = nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| n.verdict() == Some(false))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(async_reject, sync_reject);
            let _ = padding;
            exercised += 1;
        }
        assert!(exercised >= 5);
    }
}
