//! Self-stabilizing MST maintenance — the paper's flagship application.
//!
//! The network keeps (a) a distributed MST in its states and (b) the
//! `π_mst` labels proving it. Every cycle it runs the one-round
//! verification protocol; if any node rejects (a fault corrupted states,
//! labels, or edge weights changed), the network recomputes the MST with
//! the distributed Borůvka protocol and the marker refreshes the labels.
//! Verification is cheap and local; recomputation is global and
//! expensive — which is exactly why efficient verification labels matter.

use mstv_core::{mst_configuration, Labeling, MstLabel, MstScheme, ProofLabelingScheme};
use mstv_graph::{tree_states, ConfigGraph, Graph, NodeId, TreeState};

use crate::{distributed_boruvka, verification_round, RunStats};

/// What a maintenance cycle observed and did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StabilizationOutcome {
    /// All verifiers accepted; nothing to do.
    Clean {
        /// Cost of the verification round.
        verify_cost: RunStats,
    },
    /// Some verifier rejected; the MST was recomputed and relabelled.
    Recovered {
        /// Nodes that raised the alarm.
        detectors: Vec<NodeId>,
        /// Cost of the verification round.
        verify_cost: RunStats,
        /// Cost of the distributed recomputation.
        recompute_cost: RunStats,
    },
}

impl StabilizationOutcome {
    /// Whether the cycle found a fault.
    pub fn fault_detected(&self) -> bool {
        matches!(self, StabilizationOutcome::Recovered { .. })
    }
}

/// A network maintaining an MST with proof labels under faults.
/// # Example
///
/// ```
/// use mstv_distsim::SelfStabilizingMst;
/// use mstv_graph::gen;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let g = gen::random_connected(16, 24, gen::WeightDist::Uniform { max: 50 }, &mut rng);
/// let mut net = SelfStabilizingMst::new(g);
/// assert!(!net.maintenance_cycle().fault_detected()); // clean network
/// assert!(net.invariant_holds());
/// ```
#[derive(Debug, Clone)]
pub struct SelfStabilizingMst {
    scheme: MstScheme,
    cfg: ConfigGraph<TreeState>,
    labeling: Labeling<MstLabel>,
}

impl SelfStabilizingMst {
    /// Bootstraps the network: computes an MST of `graph`, installs the
    /// distributed representation, and labels it.
    ///
    /// # Panics
    ///
    /// Panics if the graph is not connected.
    pub fn new(graph: Graph) -> Self {
        let scheme = MstScheme::new();
        let cfg = mst_configuration(graph);
        let labeling = scheme.marker(&cfg).expect("fresh MST must label");
        SelfStabilizingMst {
            scheme,
            cfg,
            labeling,
        }
    }

    /// The current configuration (states + graph).
    pub fn config(&self) -> &ConfigGraph<TreeState> {
        &self.cfg
    }

    /// Mutable access for fault injection between cycles.
    pub fn config_mut(&mut self) -> &mut ConfigGraph<TreeState> {
        &mut self.cfg
    }

    /// The current labels.
    pub fn labeling(&self) -> &Labeling<MstLabel> {
        &self.labeling
    }

    /// Whether the current states encode an MST of the current graph.
    pub fn invariant_holds(&self) -> bool {
        let edges = self.cfg.induced_edges();
        mstv_mst::is_mst(self.cfg.graph(), &edges)
    }

    /// Repairs after a *known* single weight change without global
    /// recomputation: one O(n + m) swap (see
    /// `mstv_mst::repair_after_weight_change`) plus relabeling. Returns
    /// whether a swap was needed. This is the cheap recovery path a
    /// maintenance system can take when the fault is localized; the
    /// ablation experiment compares it against the full rebuild of
    /// [`SelfStabilizingMst::maintenance_cycle`].
    ///
    /// # Panics
    ///
    /// Panics if `changed` is out of range for the graph.
    pub fn repair_with_hint(&mut self, changed: mstv_graph::EdgeId) -> bool {
        let mut edges = self.cfg.induced_edges();
        let repair = mstv_mst::repair_after_weight_change(self.cfg.graph(), &mut edges, changed);
        let swapped = matches!(repair, mstv_mst::Repair::Swapped { .. });
        if swapped {
            let states = tree_states(self.cfg.graph(), &edges, NodeId(0))
                .expect("repair returns a spanning tree");
            let graph = self.cfg.graph().clone();
            self.cfg = ConfigGraph::new(graph, states).expect("one state per node");
        }
        // Relabel either way: weights changed, so ω fields may differ.
        self.labeling = self
            .scheme
            .marker(&self.cfg)
            .expect("repaired MST must label");
        swapped
    }

    /// Runs one maintenance cycle: verify; on rejection, recompute the MST
    /// distributively (costs counted), reinstall states rooted at node 0,
    /// and relabel.
    pub fn maintenance_cycle(&mut self) -> StabilizationOutcome {
        let (verdict, verify_cost) = verification_round(&self.scheme, &self.cfg, &self.labeling);
        if verdict.accepted() {
            return StabilizationOutcome::Clean { verify_cost };
        }
        let run = distributed_boruvka(self.cfg.graph());
        let states = tree_states(self.cfg.graph(), &run.edges, NodeId(0))
            .expect("distributed Borůvka returns a spanning tree");
        let graph = self.cfg.graph().clone();
        self.cfg = ConfigGraph::new(graph, states).expect("one state per node");
        self.labeling = self
            .scheme
            .marker(&self.cfg)
            .expect("recomputed MST must label");
        StabilizationOutcome::Recovered {
            detectors: verdict.rejecting,
            verify_cost,
            recompute_cost: run.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstv_core::faults;
    use mstv_graph::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn network(seed: u64) -> SelfStabilizingMst {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gen::random_connected(40, 80, gen::WeightDist::Uniform { max: 200 }, &mut rng);
        SelfStabilizingMst::new(g)
    }

    #[test]
    fn clean_network_stays_clean() {
        let mut net = network(1);
        assert!(net.invariant_holds());
        for _ in 0..3 {
            let outcome = net.maintenance_cycle();
            assert!(!outcome.fault_detected());
        }
        assert!(net.invariant_holds());
    }

    #[test]
    fn weight_fault_detected_and_recovered() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut recovered = 0;
        for seed in 0..8 {
            let mut net = network(100 + seed);
            if faults::break_minimality(net.config_mut(), &mut rng).is_none() {
                continue;
            }
            assert!(!net.invariant_holds());
            let outcome = net.maintenance_cycle();
            match outcome {
                StabilizationOutcome::Recovered {
                    detectors,
                    verify_cost,
                    recompute_cost,
                } => {
                    assert!(!detectors.is_empty());
                    assert_eq!(verify_cost.rounds, 1);
                    assert!(recompute_cost.rounds > 1);
                    recovered += 1;
                }
                other => panic!("fault not detected: {other:?}"),
            }
            assert!(net.invariant_holds());
            // Next cycle is clean again.
            assert!(!net.maintenance_cycle().fault_detected());
        }
        assert!(recovered >= 4);
    }

    #[test]
    fn pointer_fault_detected_and_recovered() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut exercised = 0;
        for seed in 0..8 {
            let mut net = network(200 + seed);
            if faults::retarget_pointer(net.config_mut(), &mut rng).is_none() {
                continue;
            }
            let outcome = net.maintenance_cycle();
            // A retargeted pointer may happen to still encode a valid MST
            // (pointing at the same edge is excluded, but pointing at
            // another MST-compatible edge is possible only if it yields
            // the same tree — it cannot, since the edge set changes), so
            // detection is required whenever the invariant broke.
            if !net.invariant_holds() {
                panic!("maintenance must restore the invariant");
            }
            if outcome.fault_detected() {
                exercised += 1;
            }
        }
        assert!(exercised >= 4);
    }

    #[test]
    fn hinted_repair_restores_invariant() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut exercised = 0;
        for seed in 0..10 {
            let mut net = network(300 + seed);
            let Some(mst_verification_fault) = faults::break_minimality(net.config_mut(), &mut rng)
            else {
                continue;
            };
            let mst_verification_edge = match mst_verification_fault {
                mstv_core::faults::Fault::WeightChange { edge, .. } => edge,
                other => panic!("unexpected fault {other:?}"),
            };
            assert!(!net.invariant_holds());
            let swapped = net.repair_with_hint(mst_verification_edge);
            assert!(swapped, "a minimality break needs a swap");
            assert!(net.invariant_holds());
            // Fresh labels verify clean.
            assert!(!net.maintenance_cycle().fault_detected());
            exercised += 1;
        }
        assert!(exercised >= 5);
    }

    #[test]
    fn hinted_repair_noop_on_harmless_change() {
        let mut net = network(400);
        // Raise a non-tree edge: the MST is untouched.
        let tree: std::collections::BTreeSet<_> =
            net.config().induced_edges().into_iter().collect();
        let e = net
            .config()
            .graph()
            .edge_ids()
            .find(|e| !tree.contains(e))
            .unwrap();
        let w = net.config().graph().weight(e);
        net.config_mut()
            .graph_mut()
            .set_weight(e, mstv_graph::Weight(w.0 + 1000));
        assert!(net.invariant_holds());
        assert!(!net.repair_with_hint(e));
        assert!(net.invariant_holds());
        assert!(!net.maintenance_cycle().fault_detected());
    }

    #[test]
    fn repeated_fault_cycles() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut net = network(5);
        for _ in 0..5 {
            let _ = faults::raise_tree_weight(net.config_mut(), &mut rng);
            net.maintenance_cycle();
            assert!(net.invariant_holds());
        }
    }
}
