//! A synchronous message-passing simulator for the distributed side of
//! the paper.
//!
//! The paper's motivation is the asymmetry between *computing* an MST
//! distributively (a global, multi-round affair) and *verifying* one (a
//! single round of label exchange between neighbors). This crate makes
//! that asymmetry measurable:
//!
//! * [`verification_round`] — the one-round distributed verification
//!   protocol: every node sends its label through every port, then runs
//!   the scheme's local verifier; message/bit/round costs are counted.
//! * [`distributed_boruvka`] — a synchronous Borůvka/GHS-style MST
//!   construction driven entirely by per-round message exchange
//!   (fragment-identity floods, MWOE min-floods, merge announcements),
//!   with the same cost accounting.
//! * [`SelfStabilizingMst`] — the classic application: a network that
//!   re-verifies its MST every cycle, detects injected faults locally,
//!   and recomputes + relabels when the proof breaks.

mod async_engine;
mod bellman_ford;
mod boruvka_dist;
mod boruvka_protocol;
mod engine;
mod protocols;
mod selfstab;
mod stats;
mod verify_protocol;

pub use async_engine::{async_verification, AsyncReport};
pub use bellman_ford::BellmanFordNode;
pub use boruvka_dist::{distributed_boruvka, BoruvkaRun};
pub use boruvka_protocol::{boruvka_protocol_run, BoruvkaMsg, BoruvkaNode};
pub use engine::{run_alpha_synchronized, run_synchronous, NodeCtx, PortInfo, RoundProtocol, Send};
pub use protocols::VerifyNode;
pub use selfstab::{SelfStabilizingMst, StabilizationOutcome};
pub use stats::{MessageCost, RunStats};
pub use verify_protocol::verification_round;
