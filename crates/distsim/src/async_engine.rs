//! Asynchronous execution of the verification protocol.
//!
//! Proof labeling schemes compose naturally with asynchrony: labels are
//! static data, so the one-round protocol ("send your label everywhere,
//! decide when you have heard from everyone") needs no synchronizer. This
//! event-driven engine delivers each label message after an independent
//! random delay and records when every node decides — demonstrating that
//! verdicts are delay-independent and measuring detection latency, the
//! quantity a self-stabilizing system actually waits for.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use mstv_core::{local_view, Labeling, MessageCost, ProofLabelingScheme, Verdict};
use mstv_graph::{ConfigGraph, NodeId};
use rand::Rng;

/// Outcome of an asynchronous verification run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsyncReport {
    /// The (delay-independent) verdict.
    pub verdict: Verdict,
    /// Time at which each node decided (received all neighbor labels).
    pub decision_times: Vec<u64>,
    /// Time at which the *last* node decided.
    pub makespan: u64,
    /// Time at which the first rejecting node decided, if any — the
    /// network's fault-detection latency.
    pub first_detection: Option<u64>,
    /// Communication cost: one label message per edge direction, one
    /// logical round.
    pub cost: MessageCost,
}

/// Runs verification asynchronously: every label message is delayed
/// independently and uniformly in `1..=max_delay` time units; a node
/// decides the moment the last of its neighbors' labels arrives.
///
/// # Panics
///
/// Panics if `max_delay == 0`.
pub fn async_verification<P: ProofLabelingScheme>(
    scheme: &P,
    cfg: &ConfigGraph<P::State>,
    labeling: &Labeling<P::Label>,
    max_delay: u64,
    rng: &mut impl Rng,
) -> AsyncReport {
    assert!(max_delay >= 1, "delays must be at least one time unit");
    let g = cfg.graph();
    let n = g.num_nodes();
    // Event queue of (arrival time, receiving node).
    let mut queue: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    let mut pending = vec![0usize; n];
    let mut cost = MessageCost::new();
    cost.rounds = 1;
    for v in g.nodes() {
        for nb in g.neighbors(v) {
            // v's label travels to nb.node.
            let delay = rng.gen_range(1..=max_delay);
            queue.push(Reverse((delay, nb.node.0)));
            pending[nb.node.index()] += 1;
            cost.add_messages(1, labeling.encoded(v).len() as u64);
        }
    }
    let mut decision_times = vec![0u64; n];
    let mut decided = vec![false; n];
    while let Some(Reverse((t, to))) = queue.pop() {
        let to = to as usize;
        debug_assert!(!decided[to], "no arrivals after the last one");
        pending[to] -= 1;
        if pending[to] == 0 {
            decided[to] = true;
            decision_times[to] = t;
        }
    }
    // Isolated nodes (degree 0) decide immediately.
    for v in 0..n {
        if pending[v] == 0 && !decided[v] {
            decided[v] = true;
        }
    }
    // Verdicts are computed exactly as in the synchronous run: the labels
    // a node saw are the same regardless of arrival order.
    let mut rejecting = Vec::new();
    for i in 0..n {
        let v = NodeId::from_index(i);
        let view = local_view(cfg, labeling.labels(), v);
        if !scheme.verify(&view) {
            rejecting.push(v);
        }
    }
    let first_detection = rejecting.iter().map(|v| decision_times[v.index()]).min();
    let makespan = decision_times.iter().copied().max().unwrap_or(0);
    AsyncReport {
        verdict: Verdict {
            rejecting,
            num_nodes: n,
        },
        decision_times,
        makespan,
        first_detection,
        cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verification_round;
    use mstv_core::{faults, mst_configuration, MstScheme};
    use mstv_graph::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn verdict_is_delay_independent() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = gen::random_connected(30, 60, gen::WeightDist::Uniform { max: 200 }, &mut rng);
        let cfg = mst_configuration(g);
        let scheme = MstScheme::new();
        let labeling = scheme.marker(&cfg).unwrap();
        let (sync_verdict, _) = verification_round(&scheme, &cfg, &labeling);
        for max_delay in [1u64, 7, 100] {
            let report = async_verification(&scheme, &cfg, &labeling, max_delay, &mut rng);
            assert_eq!(report.verdict, sync_verdict, "delay={max_delay}");
            assert!(report.makespan <= max_delay);
            assert!(report.makespan >= 1);
            assert_eq!(report.cost.msgs, 2 * cfg.graph().num_edges() as u64);
            assert_eq!(report.cost.rounds, 1);
            assert!(report.cost.bits > 0);
        }
    }

    #[test]
    fn detection_latency_bounded_by_makespan() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut exercised = 0;
        for seed in 0..10 {
            let g = gen::random_connected(
                25,
                50,
                gen::WeightDist::Uniform { max: 100 },
                &mut StdRng::seed_from_u64(seed),
            );
            let mut cfg = mst_configuration(g);
            let scheme = MstScheme::new();
            let labeling = scheme.marker(&cfg).unwrap();
            if faults::break_minimality(&mut cfg, &mut rng).is_none() {
                continue;
            }
            let report = async_verification(&scheme, &cfg, &labeling, 50, &mut rng);
            assert!(!report.verdict.accepted());
            let first = report.first_detection.expect("a rejection exists");
            assert!(first <= report.makespan);
            assert!(first >= 1);
            exercised += 1;
        }
        assert!(exercised >= 5);
    }

    #[test]
    fn decision_times_respect_arrivals() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = gen::random_connected(15, 20, gen::WeightDist::Uniform { max: 9 }, &mut rng);
        let cfg = mst_configuration(g);
        let scheme = MstScheme::new();
        let labeling = scheme.marker(&cfg).unwrap();
        let report = async_verification(&scheme, &cfg, &labeling, 10, &mut rng);
        for &t in &report.decision_times {
            assert!((1..=10).contains(&t));
        }
    }
}
