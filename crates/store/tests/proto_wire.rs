//! Wire protocol coverage: encode/decode round-trips over every
//! `Query`/`Answer`/`ErrorCode` variant, rejection of truncated and
//! trailing-byte frames, and golden fixtures pinning the v1 byte
//! layout so a future refactor cannot silently change what is on the
//! wire.

use mstv_graph::{NodeId, Weight};
use mstv_store::proto::{
    AdminReply, AdminRequest, ErrorCode, Frame, ProtoError, Request, Response, SectionKind,
    FRAME_HEADER_LEN, PROTO_MAGIC, PROTO_VERSION,
};
use mstv_store::{Answer, Query};
use proptest::prelude::*;

fn query_strategy() -> impl Strategy<Value = Query> {
    prop_oneof![
        (any::<u32>(), any::<u32>()).prop_map(|(u, v)| Query::Max {
            u: NodeId(u),
            v: NodeId(v)
        }),
        (any::<u32>(), any::<u32>()).prop_map(|(u, v)| Query::Flow {
            u: NodeId(u),
            v: NodeId(v)
        }),
        (any::<u32>(), any::<u32>()).prop_map(|(u, v)| Query::Dist {
            u: NodeId(u),
            v: NodeId(v)
        }),
        (any::<u32>(), any::<u32>(), any::<u64>()).prop_map(|(u, v, w)| Query::VerifyEdge {
            u: NodeId(u),
            v: NodeId(v),
            w: Weight(w)
        }),
    ]
}

fn answer_strategy() -> impl Strategy<Value = Answer> {
    prop_oneof![
        any::<u64>().prop_map(|w| Answer::Max(Weight(w))),
        any::<u64>().prop_map(|w| Answer::Flow(Weight(w))),
        any::<u64>().prop_map(Answer::Dist),
        (any::<bool>(), any::<u64>()).prop_map(|(accept, w)| Answer::VerifyEdge {
            accept,
            max_on_path: Weight(w)
        }),
    ]
}

fn section_strategy() -> impl Strategy<Value = SectionKind> {
    prop_oneof![
        Just(SectionKind::Max),
        Just(SectionKind::Flow),
        Just(SectionKind::Dist),
    ]
}

fn error_strategy() -> impl Strategy<Value = ErrorCode> {
    prop_oneof![
        (any::<u32>(), any::<u32>())
            .prop_map(|(node, nodes)| ErrorCode::UnknownNode { node, nodes }),
        (section_strategy(), any::<u32>())
            .prop_map(|(section, node)| ErrorCode::CorruptLabel { section, node }),
        (any::<u32>(), any::<u32>()).prop_map(|(u, v)| ErrorCode::LabelMismatch { u, v }),
        section_strategy().prop_map(|section| ErrorCode::MissingSection { section }),
        any::<u32>().prop_map(|shard| ErrorCode::ShardPoisoned { shard }),
        (any::<u32>(), any::<u32>())
            .prop_map(|(pending, limit)| ErrorCode::Overloaded { pending, limit }),
        Just(ErrorCode::Internal),
    ]
}

fn result_strategy() -> impl Strategy<Value = Result<Answer, ErrorCode>> {
    prop_oneof![
        answer_strategy().prop_map(Ok),
        error_strategy().prop_map(Err),
    ]
}

fn frame_strategy() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (
            any::<u64>(),
            proptest::collection::vec(query_strategy(), 0..20)
        )
            .prop_map(|(id, batch)| Frame::Request(Request { id, batch })),
        (
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec(result_strategy(), 0..20)
        )
            .prop_map(|(id, server_epoch, results)| Frame::Response(Response {
                id,
                server_epoch,
                results
            })),
        Just(Frame::Admin(AdminRequest::Stats)),
        Just(Frame::Admin(AdminRequest::Shutdown)),
        (0usize..40).prop_map(|n| Frame::Admin(AdminRequest::SwapSnapshot {
            path: "p/".repeat(n)
        })),
        proptest::collection::vec(any::<u8>(), 0..64)
            .prop_map(|bytes| Frame::Admin(AdminRequest::ApplyDelta { bytes })),
        any::<u64>().prop_map(|epoch| Frame::AdminReply(AdminReply::Ok { epoch })),
        (0usize..40).prop_map(|n| Frame::AdminReply(AdminReply::Stats {
            json: "{}".repeat(n)
        })),
        (0usize..40).prop_map(|n| Frame::AdminReply(AdminReply::Err {
            message: "e!".repeat(n)
        })),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_frame_roundtrips(frame in frame_strategy()) {
        let bytes = frame.encode().expect("test frames fit the bound");
        prop_assert!(bytes.len() >= FRAME_HEADER_LEN);
        prop_assert_eq!(&bytes[..4], &PROTO_MAGIC[..]);
        let back = Frame::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(back, frame);
    }

    #[test]
    fn every_truncation_is_a_typed_error(frame in frame_strategy(), cut_pick in any::<u64>()) {
        let bytes = frame.encode().expect("test frames fit the bound");
        let cut = (cut_pick % bytes.len() as u64) as usize;
        prop_assert!(
            Frame::decode(&bytes[..cut]).is_err(),
            "frame cut to {} of {} bytes still decoded",
            cut, bytes.len()
        );
    }

    #[test]
    fn trailing_bytes_are_rejected(frame in frame_strategy(), extra in 1usize..9) {
        let mut bytes = frame.encode().expect("test frames fit the bound");
        bytes.extend(std::iter::repeat_n(0xAAu8, extra));
        prop_assert_eq!(
            Frame::decode(&bytes),
            Err(ProtoError::TrailingBytes { extra })
        );
    }
}

/// Golden fixture for a v1 request frame: byte-for-byte layout pinned
/// independently of the encoder, so any change to the wire format
/// breaks this test instead of silently breaking old clients.
#[test]
fn golden_v1_request_layout() {
    let frame = Frame::Request(Request {
        id: 0x0102_0304_0506_0708,
        batch: vec![
            Query::Max {
                u: NodeId(1),
                v: NodeId(2),
            },
            Query::VerifyEdge {
                u: NodeId(3),
                v: NodeId(4),
                w: Weight(500),
            },
        ],
    });
    #[rustfmt::skip]
    let want: Vec<u8> = vec![
        // header: magic "MSQP" | version 1 LE | kind 1 (request) | payload len 38 LE
        0x4D, 0x53, 0x51, 0x50,  0x01, 0x00,  0x01,  0x26, 0x00, 0x00, 0x00,
        // id (u64 LE)
        0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,
        // query count (u32 LE)
        0x02, 0x00, 0x00, 0x00,
        // Max { u: 1, v: 2 }: tag 1 | u LE | v LE
        0x01,  0x01, 0x00, 0x00, 0x00,  0x02, 0x00, 0x00, 0x00,
        // VerifyEdge { u: 3, v: 4, w: 500 }: tag 4 | u | v | w (u64 LE)
        0x04,  0x03, 0x00, 0x00, 0x00,  0x04, 0x00, 0x00, 0x00,
        0xF4, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    ];
    assert_eq!(frame.encode().unwrap(), want);
    assert_eq!(Frame::decode(&want).unwrap(), frame);
    assert_eq!(PROTO_VERSION, 1, "bump requires a new golden fixture");
}

/// Golden fixture for a v1 response frame, covering both a success
/// result and a typed error result.
#[test]
fn golden_v1_response_layout() {
    let frame = Frame::Response(Response {
        id: 7,
        server_epoch: 2,
        results: vec![
            Ok(Answer::VerifyEdge {
                accept: true,
                max_on_path: Weight(9),
            }),
            Err(ErrorCode::Overloaded {
                pending: 3,
                limit: 4,
            }),
        ],
    });
    #[rustfmt::skip]
    let want: Vec<u8> = vec![
        // header: magic | version 1 | kind 2 (response) | payload len 40 LE
        0x4D, 0x53, 0x51, 0x50,  0x01, 0x00,  0x02,  0x28, 0x00, 0x00, 0x00,
        // id 7 | server_epoch 2 (u64 LE each)
        0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
        0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
        // result count (u32 LE)
        0x02, 0x00, 0x00, 0x00,
        // Ok(VerifyEdge { accept: true, max: 9 }): status 0 | tag 4 | accept 1 | max LE
        0x00,  0x04,  0x01,  0x09, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
        // Err(Overloaded { pending: 3, limit: 4 }): status 6 | pending LE | limit LE
        0x06,  0x03, 0x00, 0x00, 0x00,  0x04, 0x00, 0x00, 0x00,
    ];
    assert_eq!(frame.encode().unwrap(), want);
    assert_eq!(Frame::decode(&want).unwrap(), frame);
}

/// Unknown tags inside a structurally complete payload are `Malformed`,
/// not panics or misreads.
#[test]
fn unknown_interior_tags_are_malformed() {
    let mut bytes = Frame::Request(Request {
        id: 1,
        batch: vec![Query::Max {
            u: NodeId(0),
            v: NodeId(0),
        }],
    })
    .encode()
    .unwrap();
    // The query tag byte sits right after id (8) + count (4).
    bytes[FRAME_HEADER_LEN + 12] = 0x7F;
    assert_eq!(
        Frame::decode(&bytes),
        Err(ProtoError::Malformed {
            context: "query tag"
        })
    );

    // A version from the future is refused up front.
    let mut future = Frame::Admin(AdminRequest::Stats).encode().unwrap();
    future[4] = 9;
    assert_eq!(
        Frame::decode(&future),
        Err(ProtoError::UnsupportedVersion { found: 9 })
    );
}
