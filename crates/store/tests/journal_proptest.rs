//! Property tests for the MSTVJRNL delta journal: serialization is a
//! round-trip identity on arbitrary record streams, every single-bit
//! flip or truncation of a journal file is rejected with a typed error,
//! and compaction over snapshot-diff records reproduces the target
//! snapshot byte-for-byte.

use mstv_graph::{NodeId, Weight};
use mstv_labels::{BitString, SepFieldCodec};
use mstv_store::{
    DeltaOutcome, DeltaRecord, Journal, JournalMutation, LabelDelta, Snapshot, StoreError,
    TreeDelta,
};
use mstv_trees::RootedTree;
use proptest::prelude::*;

const N: u32 = 24;

fn base_snapshot() -> Snapshot {
    let parents = (0..N)
        .map(|i| (i > 0).then(|| (NodeId(i / 3), Weight(u64::from(i) * 41 % 500 + 1))))
        .collect();
    let tree = RootedTree::from_parents(NodeId(0), parents).unwrap();
    Snapshot::build(&tree, SepFieldCodec::EliasGamma)
}

fn bits_strategy() -> impl Strategy<Value = BitString> {
    proptest::collection::vec(any::<bool>(), 0..80).prop_map(|bools| {
        let mut b = BitString::new();
        for x in bools {
            b.push(x);
        }
        b
    })
}

fn mutation_strategy() -> impl Strategy<Value = JournalMutation> {
    prop_oneof![
        (0..N, 0..N, 1u64..1000).prop_map(|(u, v, w)| JournalMutation::SetWeight { u, v, w }),
        (0..N, 0..N, 0..N, 0..N).prop_map(|(u1, v1, u2, v2)| JournalMutation::SwapWeights {
            u1,
            v1,
            u2,
            v2
        }),
    ]
}

fn label_deltas_strategy() -> impl Strategy<Value = Vec<LabelDelta>> {
    proptest::collection::vec((0..N, bits_strategy()), 0..6).prop_map(|v| {
        v.into_iter()
            .map(|(node, bits)| LabelDelta { node, bits })
            .collect()
    })
}

/// An arbitrary well-formed record (content need not be semantically
/// sound — these tests exercise the container, not the marker).
fn record_strategy() -> impl Strategy<Value = DeltaRecord> {
    (
        mutation_strategy(),
        (0u8..4, 1u64..2000, 1u32..16, 1u32..16),
        proptest::collection::vec((0..N, any::<bool>(), 0..N, 1u64..1000), 0..4),
        label_deltas_strategy(),
        label_deltas_strategy(),
        label_deltas_strategy(),
    )
        .prop_map(
            |(mutation, (outcome, max_w, ob, db), tree, max, flow, dist)| {
                let outcome = match outcome {
                    0 => DeltaOutcome::NoOp,
                    1 => DeltaOutcome::WeightsOnly,
                    2 => DeltaOutcome::TreeSwap,
                    _ => DeltaOutcome::Reencode,
                };
                let tree = tree
                    .into_iter()
                    .map(|(node, is_root, parent, w)| TreeDelta {
                        node,
                        parent: (!is_root).then_some((parent, w)),
                    })
                    .collect();
                DeltaRecord {
                    seq: 0, // assigned by the journal-assembly step below
                    mutation,
                    outcome,
                    new_max_weight: Weight(max_w),
                    new_omega_bits: ob,
                    new_delta_bits: db,
                    tree,
                    max,
                    flow,
                    dist,
                }
            },
        )
}

fn journal_strategy() -> impl Strategy<Value = Journal> {
    proptest::collection::vec(record_strategy(), 0..8).prop_map(|records| {
        let mut j = Journal::new(&base_snapshot());
        for (i, mut r) in records.into_iter().enumerate() {
            r.seq = i as u64 + 1;
            j.append(r);
        }
        j
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_is_identity(journal in journal_strategy()) {
        let back = Journal::from_bytes(&journal.to_bytes()).expect("own bytes parse");
        prop_assert_eq!(back, journal);
    }

    #[test]
    fn record_roundtrip_is_identity(record in record_strategy(), seq in 1u64..1000) {
        let mut record = record;
        record.seq = seq;
        let back = DeltaRecord::from_bytes(&record.to_bytes(), N).expect("own bytes parse");
        prop_assert_eq!(back, record);
    }

    #[test]
    fn every_single_bit_flip_is_rejected(
        journal in journal_strategy(),
        byte_pick in any::<u64>(),
        bit in 0u8..8,
    ) {
        let bytes = journal.to_bytes();
        let mut tampered = bytes.clone();
        let pos = (byte_pick % bytes.len() as u64) as usize;
        tampered[pos] ^= 1 << bit;
        prop_assert!(
            Journal::from_bytes(&tampered).is_err(),
            "flip at byte {} bit {} of {} went unnoticed",
            pos, bit, bytes.len()
        );
    }

    #[test]
    fn every_truncation_is_rejected(journal in journal_strategy(), cut_pick in any::<u64>()) {
        let bytes = journal.to_bytes();
        let cut = (cut_pick % bytes.len() as u64) as usize;
        prop_assert!(
            Journal::from_bytes(&bytes[..cut]).is_err(),
            "file cut to {} of {} bytes still parsed",
            cut, bytes.len()
        );
    }

    #[test]
    fn trailing_garbage_is_rejected(journal in journal_strategy(), garbage in 1usize..6) {
        let mut bytes = journal.to_bytes();
        bytes.extend(vec![0xAAu8; garbage]);
        // Extra bytes read as a half record at best: typed error either way.
        prop_assert!(Journal::from_bytes(&bytes).is_err());
    }

    /// Compacting a journal built from snapshot *diffs* lands exactly on
    /// the target snapshot — the byte-identity contract `mstv-dyn` relies
    /// on, checked here against an independent witness (two full builds).
    #[test]
    fn compaction_over_diff_records_reproduces_the_target(
        reweights in proptest::collection::vec((1..N, 1u64..5000), 1..6),
    ) {
        let mut parents: Vec<Option<(NodeId, Weight)>> = (0..N)
            .map(|i| (i > 0).then(|| (NodeId(i / 3), Weight(u64::from(i) * 41 % 500 + 1))))
            .collect();
        let base = base_snapshot();
        let mut journal = Journal::new(&base);
        let mut prev = base.clone();
        for (seq0, &(node, w)) in reweights.iter().enumerate() {
            let parent = parents[node as usize].unwrap().0;
            parents[node as usize] = Some((parent, Weight(w)));
            let tree = RootedTree::from_parents(NodeId(0), parents.clone()).unwrap();
            let next = Snapshot::build(&tree, SepFieldCodec::EliasGamma);
            journal.append(diff_record(
                seq0 as u64 + 1,
                JournalMutation::SetWeight { u: parent.0, v: node, w },
                &prev,
                &next,
            ));
            prev = next;
        }
        let compacted = journal.compact(&base).expect("journal applies");
        prop_assert_eq!(compacted.to_bytes(), prev.to_bytes());
        let (records, report) = journal.fsck(&base, 32).expect("journal fscks");
        prop_assert_eq!(records, reweights.len());
        prop_assert_eq!(report.nodes, N);
    }
}

/// The full row-diff between two snapshots of the same node set, as a
/// journal record.
fn diff_record(
    seq: u64,
    mutation: JournalMutation,
    prev: &Snapshot,
    next: &Snapshot,
) -> DeltaRecord {
    let (pt, nt) = (prev.tree().unwrap(), next.tree().unwrap());
    let tree = (0..N)
        .filter_map(|i| {
            let v = NodeId(i);
            let entry = nt.parent(v).map(|p| (p.0, nt.parent_weight(v).0));
            let old = pt.parent(v).map(|p| (p.0, pt.parent_weight(v).0));
            (entry != old).then_some(TreeDelta {
                node: i,
                parent: entry,
            })
        })
        .collect();
    let diff_labels = |a: &[BitString], b: &[BitString]| -> Vec<LabelDelta> {
        a.iter()
            .zip(b)
            .enumerate()
            .filter(|(_, (x, y))| x != y)
            .map(|(i, (_, y))| LabelDelta {
                node: i as u32,
                bits: y.clone(),
            })
            .collect()
    };
    DeltaRecord {
        seq,
        mutation,
        outcome: DeltaOutcome::WeightsOnly,
        new_max_weight: next.max_weight(),
        new_omega_bits: next.codec().omega_bits,
        new_delta_bits: next.dist().map_or(1, |d| d.delta_bits),
        tree,
        max: diff_labels(prev.max_labels(), next.max_labels()),
        flow: diff_labels(prev.flow_labels(), next.flow_labels()),
        dist: diff_labels(&prev.dist().unwrap().labels, &next.dist().unwrap().labels),
    }
}

#[test]
fn sequence_gap_is_malformed() {
    let base = base_snapshot();
    let mut j = Journal::new(&base);
    j.append(DeltaRecord {
        seq: 1,
        mutation: JournalMutation::SetWeight { u: 0, v: 1, w: 7 },
        outcome: DeltaOutcome::NoOp,
        new_max_weight: base.max_weight(),
        new_omega_bits: base.codec().omega_bits,
        new_delta_bits: base.dist().unwrap().delta_bits,
        tree: vec![],
        max: vec![],
        flow: vec![],
        dist: vec![],
    });
    let mut bytes = j.to_bytes();
    bytes[32] = 3; // record seq lives right after the 32-byte preamble
    assert!(matches!(
        Journal::from_bytes(&bytes),
        Err(StoreError::Malformed {
            context: "journal record",
            ..
        })
    ));
}

#[test]
fn out_of_range_node_is_malformed() {
    let base = base_snapshot();
    let mut j = Journal::new(&base);
    j.append(DeltaRecord {
        seq: 1,
        mutation: JournalMutation::SetWeight { u: 0, v: N, w: 7 }, // v == N is out of range
        outcome: DeltaOutcome::NoOp,
        new_max_weight: base.max_weight(),
        new_omega_bits: base.codec().omega_bits,
        new_delta_bits: base.dist().unwrap().delta_bits,
        tree: vec![],
        max: vec![],
        flow: vec![],
        dist: vec![],
    });
    // to_bytes happily writes it; the reader is the gatekeeper.
    assert!(matches!(
        Journal::from_bytes(&j.to_bytes()),
        Err(StoreError::Malformed {
            context: "journal record",
            ..
        })
    ));
}
