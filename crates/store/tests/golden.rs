//! Golden-fixture test: the snapshot encoding of a fixed seeded tree is
//! committed to the repo and checked byte-for-byte, so any accidental
//! change to the container layout (or to the label encodings underneath
//! it) fails CI instead of silently orphaning existing snapshot files.
//!
//! To bless a deliberate format change, bump `VERSION` and run
//! `MSTV_BLESS=1 cargo test -p mstv-store --test golden`.

use mstv_graph::{gen, NodeId};
use mstv_labels::SepFieldCodec;
use mstv_store::{EngineConfig, Query, QueryEngine, Snapshot, VERSION};
use mstv_trees::{PathMaxIndex, RootedTree};
use rand::rngs::StdRng;
use rand::SeedableRng;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden.snap");
const GOLDEN_NODES: usize = 96;

fn golden_tree() -> RootedTree {
    let mut rng = StdRng::seed_from_u64(0x00C0_FFEE);
    let g = gen::random_tree(
        GOLDEN_NODES,
        gen::WeightDist::Uniform { max: 5000 },
        &mut rng,
    );
    RootedTree::from_graph(&g, NodeId(0)).unwrap()
}

#[test]
fn golden_fixture_matches_byte_for_byte() {
    let bytes = Snapshot::build(&golden_tree(), SepFieldCodec::EliasGamma).to_bytes();
    if std::env::var_os("MSTV_BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &bytes).unwrap();
    }
    let golden = std::fs::read(GOLDEN_PATH)
        .expect("fixture missing; create with MSTV_BLESS=1 cargo test -p mstv-store --test golden");
    assert_eq!(
        bytes, golden,
        "snapshot encoding drifted from the committed golden fixture; \
         if the change is deliberate, bump mstv_store::VERSION and re-bless \
         with MSTV_BLESS=1 (version is currently {VERSION})"
    );
}

#[test]
fn golden_fixture_loads_fscks_and_serves() {
    let snap = Snapshot::read_file(GOLDEN_PATH).expect("committed fixture parses");
    assert_eq!(snap.num_nodes() as usize, GOLDEN_NODES);
    assert_eq!(snap.root(), NodeId(0));
    let report = snap
        .fsck(128)
        .expect("committed fixture is self-consistent");
    assert_eq!(report.nodes as usize, GOLDEN_NODES);
    assert!(report.has_dist);

    // The served answers must match a fresh path oracle on the same tree.
    let tree = golden_tree();
    let idx = PathMaxIndex::new(&tree);
    let engine = QueryEngine::new(snap, EngineConfig::default());
    for (u, v) in [(0u32, 95u32), (3, 42), (17, 71), (94, 1)] {
        let (u, v) = (NodeId(u), NodeId(v));
        let got = engine.query(Query::Max { u, v }).unwrap();
        assert_eq!(
            got,
            mstv_store::Answer::Max(idx.max_on_path(u, v)),
            "MAX({u}, {v})"
        );
    }
}
