//! Golden-fixture test: the snapshot encoding of a fixed seeded tree is
//! committed to the repo and checked byte-for-byte, so any accidental
//! change to the container layout (or to the label encodings underneath
//! it) fails CI instead of silently orphaning existing snapshot files.
//!
//! To bless a deliberate format change, bump `VERSION` and run
//! `MSTV_BLESS=1 cargo test -p mstv-store --test golden`.

use mstv_graph::{gen, NodeId};
use mstv_labels::SepFieldCodec;
use mstv_store::{
    EngineConfig, MappedSnapshot, Query, QueryEngine, Snapshot, SnapshotFormat, VERSION, VERSION_V2,
};
use mstv_trees::{PathMaxIndex, RootedTree};
use rand::rngs::StdRng;
use rand::SeedableRng;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden.snap");
const GOLDEN_V2_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden_v2.snap");
const GOLDEN_NODES: usize = 96;

fn golden_tree() -> RootedTree {
    let mut rng = StdRng::seed_from_u64(0x00C0_FFEE);
    let g = gen::random_tree(
        GOLDEN_NODES,
        gen::WeightDist::Uniform { max: 5000 },
        &mut rng,
    );
    RootedTree::from_graph(&g, NodeId(0)).unwrap()
}

#[test]
fn golden_fixture_matches_byte_for_byte() {
    let bytes = Snapshot::build(&golden_tree(), SepFieldCodec::EliasGamma).to_bytes();
    if std::env::var_os("MSTV_BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &bytes).unwrap();
    }
    let golden = std::fs::read(GOLDEN_PATH)
        .expect("fixture missing; create with MSTV_BLESS=1 cargo test -p mstv-store --test golden");
    assert_eq!(
        bytes, golden,
        "snapshot encoding drifted from the committed golden fixture; \
         if the change is deliberate, bump mstv_store::VERSION and re-bless \
         with MSTV_BLESS=1 (version is currently {VERSION})"
    );
}

#[test]
fn golden_v2_fixture_matches_byte_for_byte() {
    let bytes = Snapshot::build(&golden_tree(), SepFieldCodec::EliasGamma)
        .to_bytes_format(SnapshotFormat::V2);
    if std::env::var_os("MSTV_BLESS").is_some() {
        std::fs::write(GOLDEN_V2_PATH, &bytes).unwrap();
    }
    let golden = std::fs::read(GOLDEN_V2_PATH)
        .expect("fixture missing; create with MSTV_BLESS=1 cargo test -p mstv-store --test golden");
    assert_eq!(
        bytes, golden,
        "columnar snapshot encoding drifted from the committed golden \
         fixture; if the change is deliberate, bump mstv_store::VERSION_V2 \
         and re-bless with MSTV_BLESS=1 (version is currently {VERSION_V2})"
    );
}

#[test]
fn golden_v1_and_v2_fixtures_cross_read() {
    // Both containers carry the same snapshot: they parse back equal,
    // and re-encoding one fixture in the other's format reproduces the
    // other fixture's bytes exactly.
    let v1 = Snapshot::read_file(GOLDEN_PATH).expect("v1 fixture parses");
    let v2 = Snapshot::read_file(GOLDEN_V2_PATH).expect("v2 fixture parses");
    assert_eq!(v1, v2, "v1 and v2 fixtures decode to different snapshots");
    assert_eq!(
        v1.to_bytes_format(SnapshotFormat::V2),
        std::fs::read(GOLDEN_V2_PATH).unwrap(),
        "re-encoding the v1 fixture as v2 does not reproduce the v2 fixture"
    );
    assert_eq!(
        v2.to_bytes(),
        std::fs::read(GOLDEN_PATH).unwrap(),
        "re-encoding the v2 fixture as v1 does not reproduce the v1 fixture"
    );
}

#[test]
fn golden_v2_fixture_serves_zero_copy() {
    // The mmap reader must serve the committed columnar fixture without
    // repacking, and its answers must match a fresh path oracle.
    let mapped = MappedSnapshot::open(GOLDEN_V2_PATH).expect("v2 fixture maps");
    assert_eq!(mapped.version(), VERSION_V2);
    assert!(mapped.is_zero_copy(), "v2 fixture should serve zero-copy");
    assert_eq!(mapped.num_nodes() as usize, GOLDEN_NODES);
    mapped.fsck(128).expect("mapped fixture is self-consistent");

    let tree = golden_tree();
    let idx = PathMaxIndex::new(&tree);
    let codec = mapped.codec();
    for (u, v) in [(0usize, 95usize), (3, 42), (17, 71), (94, 1)] {
        let got = codec
            .try_decode_max_pair(mapped.max_slice(u), mapped.max_slice(v))
            .expect("mapped labels decode");
        assert_eq!(got, idx.max_on_path(NodeId(u as u32), NodeId(v as u32)));
    }
}

#[test]
fn golden_fixture_loads_fscks_and_serves() {
    let snap = Snapshot::read_file(GOLDEN_PATH).expect("committed fixture parses");
    assert_eq!(snap.num_nodes() as usize, GOLDEN_NODES);
    assert_eq!(snap.root(), NodeId(0));
    let report = snap
        .fsck(128)
        .expect("committed fixture is self-consistent");
    assert_eq!(report.nodes as usize, GOLDEN_NODES);
    assert!(report.has_dist);

    // The served answers must match a fresh path oracle on the same tree.
    let tree = golden_tree();
    let idx = PathMaxIndex::new(&tree);
    let engine = QueryEngine::new(snap, EngineConfig::default());
    for (u, v) in [(0u32, 95u32), (3, 42), (17, 71), (94, 1)] {
        let (u, v) = (NodeId(u), NodeId(v));
        let got = engine.query(Query::Max { u, v }).unwrap();
        assert_eq!(
            got,
            mstv_store::Answer::Max(idx.max_on_path(u, v)),
            "MAX({u}, {v})"
        );
    }
}
