//! Property tests for the snapshot container: serialization is a
//! round-trip identity on arbitrary trees, and *every* single-bit flip
//! or truncation of a snapshot file is rejected with a typed error —
//! never a panic, never a silently wrong snapshot.

use mstv_graph::{NodeId, Weight};
use mstv_labels::SepFieldCodec;
use mstv_store::{Snapshot, SnapshotFormat, StoreError};
use mstv_trees::RootedTree;
use proptest::prelude::*;

/// An arbitrary rooted tree: node `i > 0` hangs off a uniformly random
/// earlier node, so every parent array drawn this way is a valid tree.
fn tree_strategy() -> impl Strategy<Value = RootedTree> {
    (
        1usize..60,
        proptest::collection::vec(any::<u64>(), 60),
        proptest::collection::vec(1u64..100_000, 60),
    )
        .prop_map(|(n, parent_picks, weights)| {
            let parents = (0..n)
                .map(|i| {
                    (i > 0).then(|| {
                        (
                            NodeId((parent_picks[i] % i as u64) as u32),
                            Weight(weights[i]),
                        )
                    })
                })
                .collect();
            RootedTree::from_parents(NodeId(0), parents).expect("construction is valid")
        })
}

fn codec_strategy() -> impl Strategy<Value = SepFieldCodec> {
    prop_oneof![
        Just(SepFieldCodec::EliasGamma),
        (7u32..20).prop_map(|bits| SepFieldCodec::FixedWidth { bits }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn roundtrip_is_identity(tree in tree_strategy(), codec in codec_strategy()) {
        let snap = Snapshot::build(&tree, codec);
        let back = Snapshot::from_bytes(&snap.to_bytes()).expect("own bytes parse");
        prop_assert_eq!(&back, &snap);
        prop_assert_eq!(back.tree().expect("tree reconstructs"), tree);
    }

    #[test]
    fn every_single_bit_flip_is_rejected(
        tree in tree_strategy(),
        byte_pick in any::<u64>(),
        bit in 0u8..8,
    ) {
        let bytes = Snapshot::build(&tree, SepFieldCodec::EliasGamma).to_bytes();
        let mut tampered = bytes.clone();
        let pos = (byte_pick % bytes.len() as u64) as usize;
        tampered[pos] ^= 1 << bit;
        prop_assert!(
            Snapshot::from_bytes(&tampered).is_err(),
            "flip at byte {} bit {} of {} went unnoticed",
            pos, bit, bytes.len()
        );
    }

    #[test]
    fn every_truncation_is_rejected(tree in tree_strategy(), cut_pick in any::<u64>()) {
        let bytes = Snapshot::build(&tree, SepFieldCodec::EliasGamma).to_bytes();
        let cut = (cut_pick % bytes.len() as u64) as usize;
        prop_assert!(
            Snapshot::from_bytes(&bytes[..cut]).is_err(),
            "file cut to {} of {} bytes still parsed",
            cut, bytes.len()
        );
    }

    #[test]
    fn fsck_passes_on_honest_snapshots(tree in tree_strategy(), codec in codec_strategy()) {
        let snap = Snapshot::build(&tree, codec);
        let report = snap.fsck(64).expect("honest snapshot");
        prop_assert_eq!(report.nodes as usize, tree.num_nodes());
    }

    #[test]
    fn v2_roundtrip_is_identity_and_equals_v1(
        tree in tree_strategy(),
        codec in codec_strategy(),
    ) {
        let snap = Snapshot::build(&tree, codec);
        let v2 = snap.to_bytes_format(SnapshotFormat::V2);
        let back = Snapshot::from_bytes(&v2).expect("own v2 bytes parse");
        prop_assert_eq!(&back, &snap);
        // Both containers carry bit-identical label streams.
        let via_v1 = Snapshot::from_bytes(&snap.to_bytes()).expect("v1 parses");
        prop_assert_eq!(&back, &via_v1);
        // Re-encoding the parsed-back snapshot is byte-stable.
        prop_assert_eq!(back.to_bytes_format(SnapshotFormat::V2), v2);
    }

    #[test]
    fn every_single_bit_flip_is_rejected_v2(
        tree in tree_strategy(),
        byte_pick in any::<u64>(),
        bit in 0u8..8,
    ) {
        let bytes = Snapshot::build(&tree, SepFieldCodec::EliasGamma)
            .to_bytes_format(SnapshotFormat::V2);
        let mut tampered = bytes.clone();
        let pos = (byte_pick % bytes.len() as u64) as usize;
        tampered[pos] ^= 1 << bit;
        prop_assert!(
            Snapshot::from_bytes(&tampered).is_err(),
            "v2 flip at byte {} bit {} of {} went unnoticed",
            pos, bit, bytes.len()
        );
    }

    #[test]
    fn every_truncation_is_rejected_v2(tree in tree_strategy(), cut_pick in any::<u64>()) {
        let bytes = Snapshot::build(&tree, SepFieldCodec::EliasGamma)
            .to_bytes_format(SnapshotFormat::V2);
        let cut = (cut_pick % bytes.len() as u64) as usize;
        prop_assert!(
            Snapshot::from_bytes(&bytes[..cut]).is_err(),
            "v2 file cut to {} of {} bytes still parsed",
            cut, bytes.len()
        );
    }
}

fn sample_bytes() -> Vec<u8> {
    let parents = (0..40)
        .map(|i: u32| (i > 0).then(|| (NodeId(i / 2), Weight(u64::from(i) * 37 % 1000 + 1))))
        .collect();
    let tree = RootedTree::from_parents(NodeId(0), parents).unwrap();
    Snapshot::build(&tree, SepFieldCodec::EliasGamma).to_bytes()
}

#[test]
fn wrong_magic_is_bad_magic() {
    let mut bytes = sample_bytes();
    bytes[0] ^= 0xFF;
    assert!(matches!(
        Snapshot::from_bytes(&bytes),
        Err(StoreError::BadMagic)
    ));
}

#[test]
fn future_version_is_unsupported_version() {
    let mut bytes = sample_bytes();
    bytes[8] = 0x2A; // version field, little-endian low byte
    bytes[9] = 0x00;
    assert!(matches!(
        Snapshot::from_bytes(&bytes),
        Err(StoreError::UnsupportedVersion { found: 0x2A })
    ));
}

#[test]
fn flipped_header_byte_is_header_crc_mismatch() {
    let mut bytes = sample_bytes();
    bytes[20] ^= 0x01; // first byte of the header payload (node count)
    assert!(matches!(
        Snapshot::from_bytes(&bytes),
        Err(StoreError::CrcMismatch {
            section: "header",
            ..
        })
    ));
}

#[test]
fn flipped_stored_crc_byte_is_crc_mismatch() {
    let mut bytes = sample_bytes();
    bytes[16] ^= 0x01; // the header's stored CRC32 itself
    assert!(matches!(
        Snapshot::from_bytes(&bytes),
        Err(StoreError::CrcMismatch {
            section: "header",
            ..
        })
    ));
}

#[test]
fn flipped_payload_byte_is_section_crc_mismatch() {
    let mut bytes = sample_bytes();
    let last = bytes.len() - 1; // inside the final (dist) section payload
    bytes[last] ^= 0x80;
    assert!(matches!(
        Snapshot::from_bytes(&bytes),
        Err(StoreError::CrcMismatch {
            section: "dist",
            ..
        })
    ));
}

#[test]
fn hard_truncations_are_truncated_errors() {
    let bytes = sample_bytes();
    for cut in [0, 4, 12, 19, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            matches!(
                Snapshot::from_bytes(&bytes[..cut]),
                Err(StoreError::Truncated { .. }) | Err(StoreError::CrcMismatch { .. })
            ),
            "cut at {cut} not reported as truncation/corruption"
        );
    }
}

#[test]
fn trailing_garbage_is_malformed() {
    let mut bytes = sample_bytes();
    bytes.push(0xAA);
    assert!(matches!(
        Snapshot::from_bytes(&bytes),
        Err(StoreError::Malformed {
            context: "container",
            ..
        })
    ));
}
