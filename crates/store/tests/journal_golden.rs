//! Golden-fixture test for the MSTVJRNL container: a journal cut from a
//! fixed seeded mutation sequence is committed to the repo and checked
//! byte-for-byte, so any accidental change to the journal layout (or to
//! the snapshot rows it carries) fails CI instead of silently orphaning
//! existing journal files.
//!
//! To bless a deliberate format change, bump `JOURNAL_VERSION` and run
//! `MSTV_BLESS=1 cargo test -p mstv-store --test journal_golden`.

use mstv_graph::{gen, NodeId, Weight};
use mstv_labels::{BitString, SepFieldCodec};
use mstv_store::{
    DeltaOutcome, DeltaRecord, Journal, JournalMutation, LabelDelta, Snapshot, TreeDelta,
    JOURNAL_VERSION,
};
use mstv_trees::RootedTree;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden.jrnl");
const GOLDEN_NODES: usize = 96;
const GOLDEN_MUTATIONS: usize = 8;

/// The fixed seeded base tree (same shape generator as the snapshot
/// golden, different seed so the two fixtures are independent).
fn golden_parents() -> Vec<Option<(NodeId, Weight)>> {
    let mut rng = StdRng::seed_from_u64(0x005E_ED0B);
    let g = gen::random_tree(
        GOLDEN_NODES,
        gen::WeightDist::Uniform { max: 5000 },
        &mut rng,
    );
    let tree = RootedTree::from_graph(&g, NodeId(0)).unwrap();
    (0..GOLDEN_NODES)
        .map(|i| {
            let v = NodeId(i as u32);
            tree.parent(v).map(|p| (p, tree.parent_weight(v)))
        })
        .collect()
}

/// The deterministic golden journal: eight seeded parent-edge reweights,
/// each journaled as the exact row diff between consecutive full builds
/// (sound by construction, independent of the incremental marker).
fn golden_journal() -> (Snapshot, Journal, Snapshot) {
    let mut parents = golden_parents();
    let tree = RootedTree::from_parents(NodeId(0), parents.clone()).unwrap();
    let base = Snapshot::build(&tree, SepFieldCodec::EliasGamma);
    let mut journal = Journal::new(&base);
    let mut prev = base.clone();
    let mut rng = StdRng::seed_from_u64(0xD317A);
    for seq0 in 0..GOLDEN_MUTATIONS {
        let node = rng.gen_range(1..GOLDEN_NODES as u32);
        let w = Weight(rng.gen_range(1..5000));
        let parent = parents[node as usize].unwrap().0;
        parents[node as usize] = Some((parent, w));
        let tree = RootedTree::from_parents(NodeId(0), parents.clone()).unwrap();
        let next = Snapshot::build(&tree, SepFieldCodec::EliasGamma);
        journal.append(diff_record(
            seq0 as u64 + 1,
            JournalMutation::SetWeight {
                u: parent.0,
                v: node,
                w: w.0,
            },
            &prev,
            &next,
        ));
        prev = next;
    }
    (base, journal, prev)
}

fn diff_record(
    seq: u64,
    mutation: JournalMutation,
    prev: &Snapshot,
    next: &Snapshot,
) -> DeltaRecord {
    let (pt, nt) = (prev.tree().unwrap(), next.tree().unwrap());
    let tree = (0..prev.num_nodes())
        .filter_map(|i| {
            let v = NodeId(i);
            let entry = nt.parent(v).map(|p| (p.0, nt.parent_weight(v).0));
            let old = pt.parent(v).map(|p| (p.0, pt.parent_weight(v).0));
            (entry != old).then_some(TreeDelta {
                node: i,
                parent: entry,
            })
        })
        .collect();
    let diff_labels = |a: &[BitString], b: &[BitString]| -> Vec<LabelDelta> {
        a.iter()
            .zip(b)
            .enumerate()
            .filter(|(_, (x, y))| x != y)
            .map(|(i, (_, y))| LabelDelta {
                node: i as u32,
                bits: y.clone(),
            })
            .collect()
    };
    DeltaRecord {
        seq,
        mutation,
        outcome: DeltaOutcome::WeightsOnly,
        new_max_weight: next.max_weight(),
        new_omega_bits: next.codec().omega_bits,
        new_delta_bits: next.dist().map_or(1, |d| d.delta_bits),
        tree,
        max: diff_labels(prev.max_labels(), next.max_labels()),
        flow: diff_labels(prev.flow_labels(), next.flow_labels()),
        dist: diff_labels(&prev.dist().unwrap().labels, &next.dist().unwrap().labels),
    }
}

#[test]
fn golden_journal_matches_byte_for_byte() {
    let (_, journal, _) = golden_journal();
    let bytes = journal.to_bytes();
    if std::env::var_os("MSTV_BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &bytes).unwrap();
    }
    let golden = std::fs::read(GOLDEN_PATH).expect(
        "fixture missing; create with MSTV_BLESS=1 cargo test -p mstv-store --test journal_golden",
    );
    assert_eq!(
        bytes, golden,
        "journal encoding drifted from the committed golden fixture; \
         if the change is deliberate, bump mstv_store::JOURNAL_VERSION and \
         re-bless with MSTV_BLESS=1 (version is currently {JOURNAL_VERSION})"
    );
}

#[test]
fn golden_journal_loads_compacts_and_fscks() {
    let journal = Journal::read_file(GOLDEN_PATH).expect("committed fixture parses");
    assert_eq!(journal.base_nodes() as usize, GOLDEN_NODES);
    assert_eq!(journal.base_root(), 0);
    assert_eq!(journal.records().len(), GOLDEN_MUTATIONS);

    let (base, _, target) = golden_journal();
    journal.verify_base(&base).expect("anchored to its base");
    let compacted = journal.compact(&base).expect("records apply");
    assert_eq!(
        compacted.to_bytes(),
        target.to_bytes(),
        "compaction must land byte-identically on the mutated snapshot"
    );
    let (records, report) = journal.fsck(&base, 128).expect("compacted state is sound");
    assert_eq!(records, GOLDEN_MUTATIONS);
    assert_eq!(report.nodes as usize, GOLDEN_NODES);
}
