//! `mstv-store`: persistent label snapshots and a sharded query service.
//!
//! The paper's labeling schemes ([`mstv_labels`]) assign every vertex a
//! short label such that `MAX(u, v)` — the heaviest edge on the tree
//! path — is computable from the two labels alone. That definition is
//! *made for serving*: once the marker has run, the labels are the whole
//! database. This crate takes that observation to its operational
//! conclusion in two layers:
//!
//! 1. **[`Snapshot`]** — a versioned little-endian container
//!    (`MSTVSNAP`) persisting one marked tree plus its full label stack
//!    (`MAX`, `FLOW`, and optionally `DIST` labels) with a CRC32 per
//!    section. The reader is paranoid: bad magic, future versions,
//!    truncation, bit flips, duplicate sections, trailing bytes, and
//!    undecodable records each surface as their own typed
//!    [`StoreError`]. `Snapshot::fsck` goes further and cross-checks
//!    decoded answers against a fresh path oracle on the stored tree,
//!    catching the one corruption CRCs cannot: intact labels belonging
//!    to a *different* tree.
//!
//! 2. **[`QueryEngine`]** — a multi-threaded serving layer that
//!    partitions node-id space across shards, fronts the bit-level
//!    decoders with per-shard [`LruCache`]s of decoded labels, and
//!    answers `Max`/`Flow`/`Dist`/`VerifyEdge` batches in input order.
//!    Serving counters (queries, cache hits/misses, throughput, latency
//!    percentiles) are reported as [`mstv_core::ServeMetrics`].
//!
//! 3. **[`proto`]** — the versioned wire protocol over the same
//!    [`Query`]/[`Answer`] vocabulary: length-prefixed
//!    [`proto::Request`]/[`proto::Response`] frames with typed
//!    per-query [`proto::ErrorCode`]s, shared by the in-process
//!    [`QueryEngine::run_batch_response`] and the `mstv-serve` network
//!    tier.
//!
//! ```
//! use mstv_graph::{gen, NodeId, Weight};
//! use mstv_labels::SepFieldCodec;
//! use mstv_store::{EngineConfig, Query, QueryEngine, Snapshot};
//! use mstv_trees::RootedTree;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let g = gen::random_tree(64, gen::WeightDist::Uniform { max: 100 }, &mut rng);
//! let tree = RootedTree::from_graph(&g, NodeId(0)).unwrap();
//!
//! // Marker side: label once, persist.
//! let snap = Snapshot::build(&tree, SepFieldCodec::EliasGamma);
//! let bytes = snap.to_bytes();
//!
//! // Serving side: load, verify integrity, answer queries.
//! let snap = Snapshot::from_bytes(&bytes).unwrap();
//! snap.fsck(100).unwrap();
//! let config = EngineConfig::builder().shards(2).build()?;
//! let engine = QueryEngine::new(snap, config);
//! let response = engine.run_batch_response(&[Query::VerifyEdge {
//!     u: NodeId(3),
//!     v: NodeId(42),
//!     w: Weight(1_000),
//! }]);
//! assert!(response.results[0].is_ok());
//! assert_eq!(response.metrics.queries, 1);
//! # Ok::<(), mstv_store::EngineConfigError>(())
//! ```

mod crc;
mod engine;
mod error;
mod format;
mod journal;
mod lru;
mod mmap;
pub mod proto;

pub use crc::crc32;
pub use engine::{
    Answer, BatchMetrics, BatchResponse, EngineConfig, EngineConfigBuilder, EngineConfigError,
    Query, QueryEngine, SnapshotStore, MAX_SHARDS,
};
pub use error::StoreError;
pub use format::{
    fsck_pair, DistSection, FsckReport, Snapshot, SnapshotFormat, MAGIC, VERSION, VERSION_V2,
};
pub use journal::{
    DeltaOutcome, DeltaRecord, Journal, JournalMutation, LabelDelta, TreeDelta, JOURNAL_MAGIC,
    JOURNAL_VERSION,
};
pub use lru::LruCache;
pub use mmap::MappedSnapshot;
