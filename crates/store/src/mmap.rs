//! Zero-copy snapshot serving from a memory map.
//!
//! [`Snapshot::from_bytes`] materializes every label as an owned
//! [`mstv_labels::BitString`] — `n` heap blocks per family before the
//! first query runs. A [`MappedSnapshot`] instead keeps the file bytes
//! mapped read-only and serves each label as a borrowed
//! [`BitSlice`] pointing straight into the map; nothing is decoded or
//! copied until a query actually touches a node, and the query engine's
//! LRU then caches the *decoded view* ([`mstv_labels::MaxView`] and
//! friends), never an owned copy of the encoded bits.
//!
//! This is only possible for version-2 (columnar) files, whose label
//! sections are one contiguous bit payload plus an offsets table (see
//! the [`crate::format`] module docs). Version-1 files are still
//! accepted — their length-prefixed records cannot be sliced in place,
//! so they are repacked once at open into a [`PackedLabels`] arena (one
//! allocation per family, not `n`).
//!
//! Integrity is checked *once*, at [`MappedSnapshot::open`]: magic,
//! version, header CRC, every section CRC, tree structure, and the
//! columnar offset tables. After that the serving path trusts the
//! bytes. The trade-off versus owned snapshots: the map is read-only,
//! so the delta journal cannot be applied to it —
//! [`StoreError::ReadOnlySnapshot`] — and the file must not be
//! truncated or rewritten in place while mapped (replace snapshots
//! atomically via rename, as `mstv-serve` already does).

use std::fmt;
use std::ops::Deref;
use std::path::Path;

use mstv_graph::{NodeId, Weight};
use mstv_labels::{BitSlice, BitString, LabelCodec, PackedLabels};
use mstv_trees::RootedTree;

use crate::crc::crc32;
use crate::format::{
    parse_columnar, parse_label_payload, parse_prelude, parse_tree_payload, read_delta_bits,
    reject_duplicate, section_name, tag, ByteReader, SnapHeader,
};
use crate::{DistSection, Snapshot, StoreError};

/// The bytes backing a mapped snapshot: a real `mmap` on Unix, a heap
/// read everywhere else (and for empty files, where `mmap` is not
/// defined). Either way, `Deref<Target = [u8]>`.
enum MapBuf {
    #[cfg(unix)]
    Mmap {
        ptr: *const u8,
        len: usize,
    },
    Heap(Vec<u8>),
}

// The mapping is private (MAP_PRIVATE) and read-only for the lifetime
// of the value; sharing &[u8] views across threads is as safe as for a
// Vec<u8>.
unsafe impl Send for MapBuf {}
unsafe impl Sync for MapBuf {}

#[cfg(unix)]
mod sys {
    use core::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void
    }
}

impl MapBuf {
    #[cfg(unix)]
    fn open(path: &Path) -> std::io::Result<MapBuf> {
        use std::os::unix::io::AsRawFd;
        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len() as usize;
        if len == 0 {
            return Ok(MapBuf::Heap(Vec::new()));
        }
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::map_failed() {
            return Err(std::io::Error::last_os_error());
        }
        // The fd can close now; the mapping outlives it.
        Ok(MapBuf::Mmap {
            ptr: ptr as *const u8,
            len,
        })
    }

    #[cfg(not(unix))]
    fn open(path: &Path) -> std::io::Result<MapBuf> {
        Ok(MapBuf::Heap(std::fs::read(path)?))
    }
}

impl Deref for MapBuf {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            MapBuf::Mmap { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            MapBuf::Heap(v) => v,
        }
    }
}

impl Drop for MapBuf {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let MapBuf::Mmap { ptr, len } = self {
            unsafe {
                sys::munmap(*ptr as *mut core::ffi::c_void, *len);
            }
        }
    }
}

impl fmt::Debug for MapBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            #[cfg(unix)]
            MapBuf::Mmap { len, .. } => write!(f, "MapBuf::Mmap({len} bytes)"),
            MapBuf::Heap(v) => write!(f, "MapBuf::Heap({} bytes)", v.len()),
        }
    }
}

/// Where one family's labels live.
#[derive(Debug)]
enum LabelColumn {
    /// A validated v2 columnar section, still in the file bytes:
    /// absolute byte offsets of the offsets table and the bit payload.
    InFile {
        offsets_at: usize,
        payload_at: usize,
        payload_len: usize,
    },
    /// A v1 section repacked into one contiguous arena at open.
    Repacked(PackedLabels),
}

/// A read-only snapshot served from a memory-mapped file. See the
/// module docs for what this buys and what it forbids.
#[derive(Debug)]
pub struct MappedSnapshot {
    buf: MapBuf,
    version: u16,
    root: NodeId,
    max_weight: Weight,
    codec: LabelCodec,
    n: u32,
    parents: Vec<Option<(NodeId, Weight)>>,
    max: LabelColumn,
    flow: LabelColumn,
    dist: Option<(u32, LabelColumn)>,
}

impl MappedSnapshot {
    /// Maps `path` and validates the whole container: magic, version (1
    /// or 2), header CRC, every section CRC, and — for columnar
    /// sections — the offsets-table structure. Labels themselves are
    /// *not* decoded; that happens lazily per query.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the file cannot be opened or mapped,
    /// otherwise the same typed errors as [`Snapshot::from_bytes`].
    pub fn open(path: impl AsRef<Path>) -> Result<MappedSnapshot, StoreError> {
        let buf = MapBuf::open(path.as_ref())?;
        let (version, header, parents, max, flow, dist) = {
            let bytes: &[u8] = &buf;
            let mut r = ByteReader::new(bytes);
            let (version, header) = parse_prelude(&mut r)?;
            let n = header.n;

            let mut parents = None;
            let mut max = None;
            let mut flow = None;
            let mut dist = None;
            for _ in 0..header.section_count {
                let tag = r.read_u8("section tag")?;
                let len = r.read_u64("section length")? as usize;
                let stored = r.read_u32("section checksum")?;
                let section = section_name(version, tag)?;
                let payload_at = r.position();
                let payload = r.take(len, section)?;
                let computed = crc32(payload);
                if computed != stored {
                    return Err(StoreError::CrcMismatch {
                        section,
                        stored,
                        computed,
                    });
                }
                match tag {
                    tag::TREE => {
                        reject_duplicate(parents.is_some(), section)?;
                        parents = Some(parse_tree_payload(payload, n)?);
                    }
                    tag::MAX => {
                        reject_duplicate(max.is_some(), section)?;
                        max = Some(repack(payload, n, section)?);
                    }
                    tag::FLOW => {
                        reject_duplicate(flow.is_some(), section)?;
                        flow = Some(repack(payload, n, section)?);
                    }
                    tag::DIST => {
                        reject_duplicate(dist.is_some(), section)?;
                        let mut d = ByteReader::new(payload);
                        let delta_bits = read_delta_bits(&mut d)?;
                        dist = Some((delta_bits, repack(d.rest(), n, section)?));
                    }
                    tag::MAXC => {
                        reject_duplicate(max.is_some(), section)?;
                        parse_columnar(payload, n, section)?;
                        max = Some(in_file(payload_at, len, n));
                    }
                    tag::FLOWC => {
                        reject_duplicate(flow.is_some(), section)?;
                        parse_columnar(payload, n, section)?;
                        flow = Some(in_file(payload_at, len, n));
                    }
                    tag::DISTC => {
                        reject_duplicate(dist.is_some(), section)?;
                        let mut d = ByteReader::new(payload);
                        let delta_bits = read_delta_bits(&mut d)?;
                        parse_columnar(d.rest(), n, section)?;
                        dist = Some((delta_bits, in_file(payload_at + 4, len - 4, n)));
                    }
                    _ => unreachable!("section_name rejected unknown tags"),
                }
            }
            if !r.rest().is_empty() {
                return Err(StoreError::Malformed {
                    context: "container",
                    reason: format!("{} trailing bytes after last section", r.rest().len()),
                });
            }
            let missing = |section| StoreError::MissingSection { section };
            (
                version,
                header,
                parents.ok_or(missing("tree"))?,
                max.ok_or(missing("max"))?,
                flow.ok_or(missing("flow"))?,
                dist,
            )
        };
        let SnapHeader {
            n,
            root,
            max_weight,
            codec,
            ..
        } = header;
        Ok(MappedSnapshot {
            buf,
            version,
            root,
            max_weight,
            codec,
            n,
            parents,
            max,
            flow,
            dist,
        })
    }

    /// The container version of the underlying file (1 or 2). Version 2
    /// is served zero-copy; version 1 was repacked once at open.
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Whether labels are served directly out of the file bytes
    /// (columnar file on a real map) rather than from a repacked arena.
    pub fn is_zero_copy(&self) -> bool {
        matches!(self.max, LabelColumn::InFile { .. })
    }

    /// Number of labelled nodes.
    pub fn num_nodes(&self) -> u32 {
        self.n
    }

    /// The root the stored tree is hung from.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The largest tree-edge weight (`W`), as recorded in the header.
    pub fn max_weight(&self) -> Weight {
        self.max_weight
    }

    /// The codec all stored `MAX`/`FLOW` labels were encoded under.
    pub fn codec(&self) -> LabelCodec {
        self.codec
    }

    /// The stored parent entry of `v` (`None` at the root).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn parent_entry(&self, v: usize) -> Option<(NodeId, Weight)> {
        self.parents[v]
    }

    /// The `δ` field width of the dist section, if one is present.
    pub fn dist_delta_bits(&self) -> Option<u32> {
        self.dist.as_ref().map(|(bits, _)| *bits)
    }

    fn column_slice<'a>(&'a self, col: &'a LabelColumn, v: usize) -> BitSlice<'a> {
        match col {
            LabelColumn::InFile {
                offsets_at,
                payload_at,
                payload_len,
            } => {
                let off = |i: usize| {
                    let at = offsets_at + 8 * i;
                    u64::from_le_bytes(self.buf[at..at + 8].try_into().expect("8 bytes"))
                };
                let (start, end) = (off(v) as usize, off(v + 1) as usize);
                BitSlice::new(
                    &self.buf[*payload_at..payload_at + payload_len],
                    start,
                    end - start,
                )
            }
            LabelColumn::Repacked(arena) => arena.get(v),
        }
    }

    /// The encoded `MAX` label of `v`, borrowed from the map.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_nodes()`.
    pub fn max_slice(&self, v: usize) -> BitSlice<'_> {
        self.column_slice(&self.max, v)
    }

    /// The encoded `FLOW` label of `v`, borrowed from the map.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_nodes()`.
    pub fn flow_slice(&self, v: usize) -> BitSlice<'_> {
        self.column_slice(&self.flow, v)
    }

    /// The encoded dist label of `v`, borrowed from the map, or `None`
    /// if the snapshot has no dist section.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_nodes()`.
    pub fn dist_slice(&self, v: usize) -> Option<BitSlice<'_>> {
        self.dist.as_ref().map(|(_, col)| self.column_slice(col, v))
    }

    /// Reconstructs the stored tree (same contract as
    /// [`Snapshot::tree`]).
    ///
    /// # Errors
    ///
    /// [`StoreError::Malformed`] if the parent pointers do not form a
    /// tree rooted at the recorded root.
    pub fn tree(&self) -> Result<RootedTree, StoreError> {
        RootedTree::from_parents(self.root, self.parents.clone()).map_err(|e| {
            StoreError::Malformed {
                context: "tree section",
                reason: e.to_string(),
            }
        })
    }

    /// Materializes an owned [`Snapshot`] with the same contents —
    /// label streams bit-identical to what the map serves. The bridge
    /// back to every owned-only path (delta application, re-writing,
    /// [`Snapshot::fsck`]).
    pub fn to_snapshot(&self) -> Snapshot {
        let collect = |col: &LabelColumn| -> Vec<BitString> {
            (0..self.n as usize)
                .map(|v| self.column_slice(col, v).to_bitstring())
                .collect()
        };
        Snapshot::from_parts(
            self.root,
            self.max_weight,
            self.codec,
            self.parents.clone(),
            collect(&self.max),
            collect(&self.flow),
            self.dist.as_ref().map(|(delta_bits, col)| DistSection {
                delta_bits: *delta_bits,
                labels: collect(col),
            }),
        )
    }

    /// Deep-checks the mapped labels exactly as [`Snapshot::fsck`]
    /// does, by materializing an owned snapshot first.
    ///
    /// # Errors
    ///
    /// Whatever [`Snapshot::fsck`] reports.
    pub fn fsck(&self, pairs: usize) -> Result<crate::FsckReport, StoreError> {
        self.to_snapshot().fsck(pairs)
    }
}

impl Snapshot {
    /// Opens a snapshot file as a read-only [`MappedSnapshot`] — the
    /// zero-copy serving path. Both container versions are accepted;
    /// only version 2 (columnar) files serve labels directly from the
    /// map.
    ///
    /// # Errors
    ///
    /// See [`MappedSnapshot::open`].
    pub fn open_mmap(path: impl AsRef<Path>) -> Result<MappedSnapshot, StoreError> {
        MappedSnapshot::open(path)
    }
}

/// Repacks a v1 row-oriented label payload into one contiguous arena.
fn repack(payload: &[u8], n: u32, section: &'static str) -> Result<LabelColumn, StoreError> {
    let rows = parse_label_payload(payload, n, section)?;
    Ok(LabelColumn::Repacked(PackedLabels::from_bitstrings(&rows)))
}

/// Records where a validated columnar section's tables live in the
/// file: `payload_at` is the absolute byte offset of the offsets table
/// (any `delta_bits` prefix already skipped), `len` its byte length.
fn in_file(payload_at: usize, len: usize, n: u32) -> LabelColumn {
    let table = 8 * (n as usize + 1);
    LabelColumn::InFile {
        offsets_at: payload_at,
        payload_at: payload_at + table,
        payload_len: len - table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SnapshotFormat;
    use mstv_graph::gen;
    use mstv_labels::SepFieldCodec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build_snap(n: usize, seed: u64) -> Snapshot {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gen::random_tree(n, gen::WeightDist::Uniform { max: 500 }, &mut rng);
        let tree = RootedTree::from_graph(&g, NodeId(0)).unwrap();
        Snapshot::build(&tree, SepFieldCodec::EliasGamma)
    }

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mstv-mmap-test-{}-{name}.snap", std::process::id()));
        p
    }

    #[test]
    fn mapped_v2_serves_identical_labels_zero_copy() {
        let snap = build_snap(90, 40);
        let path = tmp_path("v2");
        snap.write_file_format(&path, SnapshotFormat::V2).unwrap();
        let mapped = Snapshot::open_mmap(&path).unwrap();
        assert_eq!(mapped.version(), 2);
        assert!(mapped.is_zero_copy());
        assert_eq!(mapped.num_nodes(), snap.num_nodes());
        assert_eq!(mapped.root(), snap.root());
        assert_eq!(mapped.codec(), snap.codec());
        assert_eq!(mapped.dist_delta_bits(), snap.dist().map(|d| d.delta_bits));
        for v in 0..snap.num_nodes() as usize {
            assert_eq!(mapped.max_slice(v), snap.max_labels()[v].as_slice());
            assert_eq!(mapped.flow_slice(v), snap.flow_labels()[v].as_slice());
            assert_eq!(
                mapped.dist_slice(v).unwrap(),
                snap.dist().unwrap().labels[v].as_slice()
            );
        }
        assert_eq!(mapped.to_snapshot(), snap);
        mapped.fsck(50).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mapped_v1_repacks_and_serves_identical_labels() {
        let snap = build_snap(70, 41);
        let path = tmp_path("v1");
        snap.write_file(&path).unwrap();
        let mapped = Snapshot::open_mmap(&path).unwrap();
        assert_eq!(mapped.version(), 1);
        assert!(!mapped.is_zero_copy());
        for v in 0..snap.num_nodes() as usize {
            assert_eq!(mapped.max_slice(v), snap.max_labels()[v].as_slice());
            assert_eq!(mapped.flow_slice(v), snap.flow_labels()[v].as_slice());
        }
        assert_eq!(mapped.to_snapshot(), snap);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mapped_open_rejects_corruption() {
        let snap = build_snap(40, 42);
        let path = tmp_path("corrupt");
        let mut bytes = snap.to_bytes_format(SnapshotFormat::V2);
        let at = bytes.len() - 3;
        bytes[at] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Snapshot::open_mmap(&path),
            Err(StoreError::CrcMismatch { .. })
        ));
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(Snapshot::open_mmap(&path), Err(StoreError::Io(_))));
    }

    #[test]
    fn mapped_snapshot_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MappedSnapshot>();
    }

    #[test]
    fn single_node_v2_maps() {
        let t = RootedTree::from_parents(NodeId(0), vec![None]).unwrap();
        let snap = Snapshot::build(&t, SepFieldCodec::EliasGamma);
        let path = tmp_path("single");
        snap.write_file_format(&path, SnapshotFormat::V2).unwrap();
        let mapped = Snapshot::open_mmap(&path).unwrap();
        assert_eq!(mapped.num_nodes(), 1);
        assert_eq!(mapped.to_snapshot(), snap);
        std::fs::remove_file(&path).unwrap();
    }
}
