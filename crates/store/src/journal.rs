//! The MSTVJRNL delta journal: a mutation stream as an append-only file.
//!
//! A journal turns "the graph changed" into an *append* instead of a
//! 100k-label rewrite: it names a base snapshot (by node count, root,
//! and CRC32 of the base file bytes) and carries one [`DeltaRecord`]
//! per mutation — the mutation itself plus exactly the tree rows and
//! encoded label records the incremental marker (`mstv-dyn`) rewrote.
//! Replaying the records over the base ([`Journal::compact`]) folds the
//! journal back into a full snapshot that is byte-identical to
//! `Snapshot::build` on the mutated tree, because the incremental
//! marker asserts that identity per mutation before the record is ever
//! emitted.
//!
//! The container mirrors the MSTVSNAP framing (same [`ByteReader`],
//! same paranoia): all integers little-endian, every record payload
//! CRC32-guarded, truncation mid-record rejected with a typed
//! [`StoreError::Truncated`], never a partial apply.
//!
//! ```text
//! offset size  field
//! 0      8     magic  "MSTVJRNL"
//! 8      2     version (= 1)
//! 10     2     reserved (= 0)
//! 12     4     header length H
//! 16     4     header CRC32
//! 20     H     header: base_nodes u32 · base_root u32 · base_crc u32
//! then, per record, to end of file:
//!        8     seq u64 (contiguous, starting at 1)
//!        8     payload length
//!        4     payload CRC32
//!        ...   payload
//! ```
//!
//! A record payload is: mutation tag `u8` (1 = set-weight `u u32 · v u32
//! · w u64`, 2 = swap-weights `u1 u32 · v1 u32 · u2 u32 · v2 u32`),
//! outcome `u8`, the post-mutation scheme widths (`max tree-edge weight
//! u64`, `omega_bits u32`, `delta_bits u32`), a tree-delta list
//! (`count u32`, then `node u32 · parent u32 · weight u64` rows,
//! `0xFFFF_FFFF` parent at the root), and three label-delta lists
//! (max, flow, dist; `count u32`, then `node u32 · bit_len u32 ·
//! ⌈bit_len/8⌉ bytes` records).

use std::path::Path;

use mstv_graph::{NodeId, Weight};
use mstv_labels::BitString;

use crate::crc::crc32;
use crate::format::{ByteReader, FsckReport, Snapshot, MAX_LABEL_BITS, NO_PARENT};
use crate::StoreError;

/// The 8-byte journal file magic.
pub const JOURNAL_MAGIC: [u8; 8] = *b"MSTVJRNL";

/// The journal container version this code writes and reads.
pub const JOURNAL_VERSION: u16 = 1;

mod mutation_tag {
    pub const SET_WEIGHT: u8 = 1;
    pub const SWAP_WEIGHTS: u8 = 2;
}

/// The graph mutation a record journals, in endpoint form (edge ids are
/// a property of one `Graph` instance; endpoints survive serialization).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalMutation {
    /// The edge between `u` and `v` took weight `w`.
    SetWeight {
        /// First endpoint.
        u: u32,
        /// Second endpoint.
        v: u32,
        /// The new weight.
        w: u64,
    },
    /// The edges `(u1, v1)` and `(u2, v2)` swapped weights atomically —
    /// the journal form of a `FlipTreeEdge`-style link flap.
    SwapWeights {
        /// First edge, first endpoint.
        u1: u32,
        /// First edge, second endpoint.
        v1: u32,
        /// Second edge, first endpoint.
        u2: u32,
        /// Second edge, second endpoint.
        v2: u32,
    },
}

/// What the incremental marker had to do for a mutation — informational
/// (the deltas alone determine the applied state), but kept in the
/// record so `mstv mutate` and the benches can report no-op rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaOutcome {
    /// The mutation crossed no sensitivity threshold and changed no
    /// scheme width: zero labels rewritten.
    NoOp = 0,
    /// The tree's edge set survived; only `ω`/`φ`/`δ` fields of the
    /// nodes on the changed edge's paths were rewritten.
    WeightsOnly = 1,
    /// The mutation swapped a tree edge; labels of the touched centroid
    /// subtrees were rewritten.
    TreeSwap = 2,
    /// A scheme-wide field width changed, forcing a re-encode of every
    /// label record (assembly is still incremental).
    Reencode = 3,
}

impl DeltaOutcome {
    fn from_tag(tag: u8) -> Result<DeltaOutcome, StoreError> {
        match tag {
            0 => Ok(DeltaOutcome::NoOp),
            1 => Ok(DeltaOutcome::WeightsOnly),
            2 => Ok(DeltaOutcome::TreeSwap),
            3 => Ok(DeltaOutcome::Reencode),
            other => Err(StoreError::Malformed {
                context: "journal record",
                reason: format!("unknown outcome tag {other}"),
            }),
        }
    }
}

/// One rewritten row of the tree section: `node`'s new parent pointer
/// (`None` when `node` became the root) and parent-edge weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeDelta {
    /// The node whose parent entry changed.
    pub node: u32,
    /// The new `(parent, weight)` entry, `None` for the root.
    pub parent: Option<(u32, u64)>,
}

/// One rewritten label record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelDelta {
    /// The node whose label was rewritten.
    pub node: u32,
    /// The new encoded label.
    pub bits: BitString,
}

/// Everything one mutation did to the snapshot: the mutation, the
/// marker's outcome, the post-mutation scheme widths, and the rewritten
/// rows of every section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaRecord {
    /// Position in the journal, contiguous from 1.
    pub seq: u64,
    /// The graph mutation this record journals.
    pub mutation: JournalMutation,
    /// What the incremental marker did.
    pub outcome: DeltaOutcome,
    /// The largest tree-edge weight after the mutation (the snapshot
    /// header's `max_weight`).
    pub new_max_weight: Weight,
    /// `ω` field width after the mutation.
    pub new_omega_bits: u32,
    /// `δ` field width after the mutation.
    pub new_delta_bits: u32,
    /// Rewritten tree rows.
    pub tree: Vec<TreeDelta>,
    /// Rewritten `MAX` label records.
    pub max: Vec<LabelDelta>,
    /// Rewritten `FLOW` label records.
    pub flow: Vec<LabelDelta>,
    /// Rewritten `DIST` label records.
    pub dist: Vec<LabelDelta>,
}

impl DeltaRecord {
    /// The union of node ids this record touches in any section, sorted
    /// and deduplicated — the set a serving tier must invalidate from
    /// its caches when applying the record in place.
    pub fn dirty_nodes(&self) -> Vec<u32> {
        let mut nodes: Vec<u32> = self
            .tree
            .iter()
            .map(|d| d.node)
            .chain(
                [&self.max, &self.flow, &self.dist]
                    .into_iter()
                    .flatten()
                    .map(|d| d.node),
            )
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// Serializes the record with its framing (`seq`, length, CRC32) —
    /// the exact bytes [`Journal::to_bytes`] appends per record, and the
    /// payload of a serve-tier apply-delta admin request.
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload = self.payload_bytes();
        let mut out = Vec::with_capacity(20 + payload.len());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Parses one standalone framed record (no trailing bytes allowed),
    /// validating the CRC and every node id against `n`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`], [`StoreError::CrcMismatch`], or
    /// [`StoreError::Malformed`] naming the defect.
    pub fn from_bytes(bytes: &[u8], n: u32) -> Result<DeltaRecord, StoreError> {
        let mut r = ByteReader::new(bytes);
        let record = Self::read_from(&mut r, n)?;
        if !r.rest().is_empty() {
            return Err(StoreError::Malformed {
                context: "journal record",
                reason: format!("{} trailing bytes after record", r.rest().len()),
            });
        }
        Ok(record)
    }

    fn payload_bytes(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(64);
        match self.mutation {
            JournalMutation::SetWeight { u, v, w } => {
                p.push(mutation_tag::SET_WEIGHT);
                p.extend_from_slice(&u.to_le_bytes());
                p.extend_from_slice(&v.to_le_bytes());
                p.extend_from_slice(&w.to_le_bytes());
            }
            JournalMutation::SwapWeights { u1, v1, u2, v2 } => {
                p.push(mutation_tag::SWAP_WEIGHTS);
                p.extend_from_slice(&u1.to_le_bytes());
                p.extend_from_slice(&v1.to_le_bytes());
                p.extend_from_slice(&u2.to_le_bytes());
                p.extend_from_slice(&v2.to_le_bytes());
            }
        }
        p.push(self.outcome as u8);
        p.extend_from_slice(&self.new_max_weight.0.to_le_bytes());
        p.extend_from_slice(&self.new_omega_bits.to_le_bytes());
        p.extend_from_slice(&self.new_delta_bits.to_le_bytes());
        p.extend_from_slice(&(self.tree.len() as u32).to_le_bytes());
        for d in &self.tree {
            let (parent, w) = match d.parent {
                Some((parent, w)) => (parent, w),
                None => (NO_PARENT, 0),
            };
            p.extend_from_slice(&d.node.to_le_bytes());
            p.extend_from_slice(&parent.to_le_bytes());
            p.extend_from_slice(&w.to_le_bytes());
        }
        for section in [&self.max, &self.flow, &self.dist] {
            p.extend_from_slice(&(section.len() as u32).to_le_bytes());
            for d in section {
                p.extend_from_slice(&d.node.to_le_bytes());
                p.extend_from_slice(&(d.bits.len() as u32).to_le_bytes());
                p.extend_from_slice(&d.bits.to_bytes());
            }
        }
        p
    }

    /// Reads one framed record from an open cursor; shared by the
    /// journal walker and the standalone parser.
    fn read_from(r: &mut ByteReader<'_>, n: u32) -> Result<DeltaRecord, StoreError> {
        let seq = r.read_u64("record seq")?;
        let len = r.read_u64("record length")? as usize;
        let stored = r.read_u32("record checksum")?;
        let payload = r.take(len, "record payload")?;
        let computed = crc32(payload);
        if computed != stored {
            return Err(StoreError::CrcMismatch {
                section: "journal record",
                stored,
                computed,
            });
        }
        let mut p = ByteReader::new(payload);
        let check_node = |node: u32| -> Result<u32, StoreError> {
            if node >= n {
                return Err(StoreError::Malformed {
                    context: "journal record",
                    reason: format!("node {node} out of range for {n} nodes"),
                });
            }
            Ok(node)
        };
        let mutation = match p.read_u8("mutation tag")? {
            mutation_tag::SET_WEIGHT => JournalMutation::SetWeight {
                u: check_node(p.read_u32("mutation endpoint")?)?,
                v: check_node(p.read_u32("mutation endpoint")?)?,
                w: p.read_u64("mutation weight")?,
            },
            mutation_tag::SWAP_WEIGHTS => JournalMutation::SwapWeights {
                u1: check_node(p.read_u32("mutation endpoint")?)?,
                v1: check_node(p.read_u32("mutation endpoint")?)?,
                u2: check_node(p.read_u32("mutation endpoint")?)?,
                v2: check_node(p.read_u32("mutation endpoint")?)?,
            },
            other => {
                return Err(StoreError::Malformed {
                    context: "journal record",
                    reason: format!("unknown mutation tag {other}"),
                })
            }
        };
        let outcome = DeltaOutcome::from_tag(p.read_u8("outcome tag")?)?;
        let new_max_weight = Weight(p.read_u64("max weight")?);
        let new_omega_bits = p.read_u32("omega field width")?;
        let new_delta_bits = p.read_u32("delta field width")?;
        if new_omega_bits == 0 || new_omega_bits > 64 || new_delta_bits == 0 || new_delta_bits > 64
        {
            return Err(StoreError::Malformed {
                context: "journal record",
                reason: format!("implausible field widths ω={new_omega_bits} δ={new_delta_bits}"),
            });
        }
        let tree_count = p.read_u32("tree delta count")?;
        if u64::from(tree_count) > u64::from(n) {
            return Err(StoreError::Malformed {
                context: "journal record",
                reason: format!("{tree_count} tree deltas for {n} nodes"),
            });
        }
        let mut tree = Vec::with_capacity(tree_count as usize);
        for _ in 0..tree_count {
            let node = check_node(p.read_u32("tree delta node")?)?;
            let parent = p.read_u32("tree delta parent")?;
            let w = p.read_u64("tree delta weight")?;
            let parent = if parent == NO_PARENT {
                None
            } else {
                Some((check_node(parent)?, w))
            };
            tree.push(TreeDelta { node, parent });
        }
        let mut sections = [Vec::new(), Vec::new(), Vec::new()];
        for section in &mut sections {
            let count = p.read_u32("label delta count")?;
            if u64::from(count) > u64::from(n) {
                return Err(StoreError::Malformed {
                    context: "journal record",
                    reason: format!("{count} label deltas for {n} nodes"),
                });
            }
            section.reserve(count as usize);
            for _ in 0..count {
                let node = check_node(p.read_u32("label delta node")?)?;
                let bit_len = p.read_u32("label delta length")?;
                if bit_len > MAX_LABEL_BITS {
                    return Err(StoreError::Malformed {
                        context: "journal record",
                        reason: format!("label delta claims {bit_len} bits"),
                    });
                }
                let bytes = p.take((bit_len as usize).div_ceil(8), "label delta bits")?;
                let bits = BitString::from_bytes(bytes, bit_len as usize).ok_or(
                    StoreError::CorruptLabel {
                        section: "journal record",
                        node,
                    },
                )?;
                section.push(LabelDelta { node, bits });
            }
        }
        if !p.rest().is_empty() {
            return Err(StoreError::Malformed {
                context: "journal record",
                reason: format!("{} trailing bytes in record payload", p.rest().len()),
            });
        }
        let [max, flow, dist] = sections;
        Ok(DeltaRecord {
            seq,
            mutation,
            outcome,
            new_max_weight,
            new_omega_bits,
            new_delta_bits,
            tree,
            max,
            flow,
            dist,
        })
    }

    /// Applies the record to a snapshot in place: scheme widths, tree
    /// rows, then label rows. Validation only concerns *shape* (node
    /// range, section presence) — the record's content is vouched for
    /// by its CRC plus the incremental marker's per-mutation rebuild
    /// assertion, and [`Snapshot::fsck`] can re-check the result.
    ///
    /// # Errors
    ///
    /// [`StoreError::Malformed`] when a node id is out of range for
    /// this snapshot or the record carries dist deltas for a snapshot
    /// without a dist section. The snapshot is unmodified on error.
    pub fn apply_to(&self, snap: &mut Snapshot) -> Result<(), StoreError> {
        let n = snap.num_nodes();
        let in_range = |node: u32| -> Result<usize, StoreError> {
            if node >= n {
                return Err(StoreError::Malformed {
                    context: "journal record",
                    reason: format!("node {node} out of range for {n} nodes"),
                });
            }
            Ok(node as usize)
        };
        // Validate everything before the first write: apply is atomic.
        for d in &self.tree {
            in_range(d.node)?;
            if let Some((p, _)) = d.parent {
                in_range(p)?;
            }
        }
        for section in [&self.max, &self.flow, &self.dist] {
            for d in section {
                in_range(d.node)?;
            }
        }
        if !self.dist.is_empty() && snap.dist().is_none() {
            return Err(StoreError::Malformed {
                context: "journal record",
                reason: "dist deltas for a snapshot without a dist section".into(),
            });
        }
        snap.set_scheme_widths(
            self.new_max_weight,
            self.new_omega_bits,
            self.new_delta_bits,
        );
        for d in &self.tree {
            let entry = d.parent.map(|(p, w)| (NodeId(p), Weight(w)));
            snap.set_parent_entry(d.node as usize, entry);
        }
        for d in &self.max {
            snap.set_max_label(d.node as usize, d.bits.clone());
        }
        for d in &self.flow {
            snap.set_flow_label(d.node as usize, d.bits.clone());
        }
        for d in &self.dist {
            snap.set_dist_label(d.node as usize, d.bits.clone());
        }
        Ok(())
    }
}

/// An in-memory delta journal: the base-snapshot reference plus the
/// record sequence, exactly what [`Journal::to_bytes`] persists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Journal {
    base_nodes: u32,
    base_root: u32,
    base_crc: u32,
    records: Vec<DeltaRecord>,
}

impl Journal {
    /// An empty journal anchored to `base` (node count, root, and the
    /// CRC32 of the base's serialized bytes).
    pub fn new(base: &Snapshot) -> Journal {
        Journal {
            base_nodes: base.num_nodes(),
            base_root: base.root().0,
            base_crc: crc32(&base.to_bytes()),
            records: Vec::new(),
        }
    }

    /// Nodes in the base snapshot.
    pub fn base_nodes(&self) -> u32 {
        self.base_nodes
    }

    /// Root of the base snapshot.
    pub fn base_root(&self) -> u32 {
        self.base_root
    }

    /// CRC32 of the base snapshot's file bytes.
    pub fn base_crc(&self) -> u32 {
        self.base_crc
    }

    /// The journaled records, in sequence order.
    pub fn records(&self) -> &[DeltaRecord] {
        &self.records
    }

    /// Appends a record.
    ///
    /// # Panics
    ///
    /// Panics if `record.seq` is not the next sequence number — the
    /// appender (not the file reader) owns contiguity, so a gap here is
    /// a caller bug, not data corruption.
    pub fn append(&mut self, record: DeltaRecord) {
        assert_eq!(
            record.seq,
            self.records.len() as u64 + 1,
            "journal records must be appended in sequence"
        );
        self.records.push(record);
    }

    /// Checks that `base` is the snapshot this journal was cut against.
    ///
    /// # Errors
    ///
    /// [`StoreError::Malformed`] naming the mismatched anchor field.
    pub fn verify_base(&self, base: &Snapshot) -> Result<(), StoreError> {
        let mismatch = |what: &str, got: String, want: String| StoreError::Malformed {
            context: "journal base reference",
            reason: format!("base {what} is {got}, journal expects {want}"),
        };
        if base.num_nodes() != self.base_nodes {
            return Err(mismatch(
                "node count",
                base.num_nodes().to_string(),
                self.base_nodes.to_string(),
            ));
        }
        if base.root().0 != self.base_root {
            return Err(mismatch(
                "root",
                base.root().0.to_string(),
                self.base_root.to_string(),
            ));
        }
        let crc = crc32(&base.to_bytes());
        if crc != self.base_crc {
            return Err(mismatch(
                "crc",
                format!("{crc:#010x}"),
                format!("{:#010x}", self.base_crc),
            ));
        }
        Ok(())
    }

    /// Folds the journal into a full snapshot: verifies the base
    /// anchor, then applies every record in sequence. The result is
    /// byte-identical to `Snapshot::build` on the mutated tree (the
    /// incremental marker asserts that identity before emitting each
    /// record).
    ///
    /// # Errors
    ///
    /// Whatever [`Journal::verify_base`] or [`DeltaRecord::apply_to`]
    /// report.
    pub fn compact(&self, base: &Snapshot) -> Result<Snapshot, StoreError> {
        self.verify_base(base)?;
        let mut snap = base.clone();
        for record in &self.records {
            record.apply_to(&mut snap)?;
        }
        Ok(snap)
    }

    /// Walks the journal the way `fsck` walks a snapshot: verifies the
    /// base anchor, applies every record (each CRC already enforced at
    /// parse time), and deep-checks the compacted result with
    /// [`Snapshot::fsck`]. Returns the records walked and the final
    /// snapshot's report.
    ///
    /// # Errors
    ///
    /// Whatever [`Journal::compact`] or [`Snapshot::fsck`] report.
    pub fn fsck(&self, base: &Snapshot, pairs: usize) -> Result<(usize, FsckReport), StoreError> {
        let compacted = self.compact(base)?;
        let report = compacted.fsck(pairs)?;
        Ok((self.records.len(), report))
    }

    /// Serializes the journal into the container format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + 64 * self.records.len());
        out.extend_from_slice(&JOURNAL_MAGIC);
        out.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes());
        let mut header = Vec::with_capacity(12);
        header.extend_from_slice(&self.base_nodes.to_le_bytes());
        header.extend_from_slice(&self.base_root.to_le_bytes());
        header.extend_from_slice(&self.base_crc.to_le_bytes());
        out.extend_from_slice(&(header.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&header).to_le_bytes());
        out.extend_from_slice(&header);
        for record in &self.records {
            out.extend_from_slice(&record.to_bytes());
        }
        out
    }

    /// Parses a journal, validating magic, version, the header CRC,
    /// every record CRC, and sequence contiguity. A file truncated
    /// mid-record is rejected ([`StoreError::Truncated`]) — an
    /// interrupted append never yields a silently shorter journal.
    ///
    /// # Errors
    ///
    /// The precise [`StoreError`] naming what was wrong.
    pub fn from_bytes(bytes: &[u8]) -> Result<Journal, StoreError> {
        let mut r = ByteReader::new(bytes);
        if r.take(8, "journal magic")? != JOURNAL_MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = r.read_u16("journal version")?;
        if version != JOURNAL_VERSION {
            return Err(StoreError::UnsupportedVersion { found: version });
        }
        let reserved = r.read_u16("journal reserved")?;
        if reserved != 0 {
            return Err(StoreError::Malformed {
                context: "journal container",
                reason: format!("reserved field is {reserved:#06x}, expected 0"),
            });
        }
        let header_len = r.read_u32("journal header length")? as usize;
        let header_crc = r.read_u32("journal header checksum")?;
        let header_bytes = r.take(header_len, "journal header")?;
        let computed = crc32(header_bytes);
        if computed != header_crc {
            return Err(StoreError::CrcMismatch {
                section: "journal header",
                stored: header_crc,
                computed,
            });
        }
        let mut h = ByteReader::new(header_bytes);
        let base_nodes = h.read_u32("base node count")?;
        let base_root = h.read_u32("base root")?;
        let base_crc = h.read_u32("base checksum")?;
        if !h.rest().is_empty() {
            return Err(StoreError::Malformed {
                context: "journal header",
                reason: format!("{} trailing header bytes", h.rest().len()),
            });
        }
        if base_root >= base_nodes.max(1) {
            return Err(StoreError::Malformed {
                context: "journal header",
                reason: format!("base root {base_root} out of range for {base_nodes} nodes"),
            });
        }
        let mut records = Vec::new();
        while !r.is_empty() {
            let record = DeltaRecord::read_from(&mut r, base_nodes)?;
            let expected = records.len() as u64 + 1;
            if record.seq != expected {
                return Err(StoreError::Malformed {
                    context: "journal record",
                    reason: format!(
                        "sequence gap: found seq {}, expected {expected}",
                        record.seq
                    ),
                });
            }
            records.push(record);
        }
        Ok(Journal {
            base_nodes,
            base_root,
            base_crc,
            records,
        })
    }

    /// Writes the journal to a file.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure.
    pub fn write_file(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        std::fs::write(path, self.to_bytes()).map_err(StoreError::from)
    }

    /// Reads and parses a journal file.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure, otherwise whatever
    /// [`Journal::from_bytes`] reports.
    pub fn read_file(path: impl AsRef<Path>) -> Result<Journal, StoreError> {
        Journal::from_bytes(&std::fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstv_labels::SepFieldCodec;
    use mstv_trees::RootedTree;

    fn small_base() -> Snapshot {
        let parents = vec![
            None,
            Some((NodeId(0), Weight(5))),
            Some((NodeId(0), Weight(3))),
            Some((NodeId(1), Weight(9))),
        ];
        let tree = RootedTree::from_parents(NodeId(0), parents).unwrap();
        Snapshot::build(&tree, SepFieldCodec::EliasGamma)
    }

    fn bits_of(pattern: &[bool]) -> BitString {
        let mut b = BitString::new();
        for &x in pattern {
            b.push(x);
        }
        b
    }

    fn sample_record(seq: u64) -> DeltaRecord {
        DeltaRecord {
            seq,
            mutation: JournalMutation::SetWeight { u: 1, v: 3, w: 2 },
            outcome: DeltaOutcome::WeightsOnly,
            new_max_weight: Weight(9),
            new_omega_bits: 4,
            new_delta_bits: 5,
            tree: vec![TreeDelta {
                node: 3,
                parent: Some((1, 2)),
            }],
            max: vec![LabelDelta {
                node: 1,
                bits: bits_of(&[true, false, true]),
            }],
            flow: vec![LabelDelta {
                node: 3,
                bits: bits_of(&[false; 9]),
            }],
            dist: vec![],
        }
    }

    #[test]
    fn journal_roundtrips() {
        let base = small_base();
        let mut j = Journal::new(&base);
        j.append(sample_record(1));
        let mut second = sample_record(2);
        second.mutation = JournalMutation::SwapWeights {
            u1: 0,
            v1: 1,
            u2: 0,
            v2: 2,
        };
        second.outcome = DeltaOutcome::TreeSwap;
        j.append(second);
        let back = Journal::from_bytes(&j.to_bytes()).expect("roundtrip");
        assert_eq!(back, j);
        back.verify_base(&base).expect("anchored to its base");
    }

    #[test]
    fn record_roundtrips_standalone() {
        let rec = sample_record(7);
        let back = DeltaRecord::from_bytes(&rec.to_bytes(), 4).expect("roundtrip");
        assert_eq!(back, rec);
        assert_eq!(back.dirty_nodes(), vec![1, 3]);
    }

    #[test]
    fn mid_record_truncation_is_rejected() {
        let base = small_base();
        let mut j = Journal::new(&base);
        j.append(sample_record(1));
        let bytes = j.to_bytes();
        // Every strict prefix that cuts into the record must fail with
        // a typed error, never parse short.
        let header_end = 20 + 12;
        for cut in header_end + 1..bytes.len() {
            let err = Journal::from_bytes(&bytes[..cut]).expect_err("truncated");
            assert!(
                matches!(err, StoreError::Truncated { .. }),
                "cut at {cut}: got {err}"
            );
        }
    }

    #[test]
    fn bit_flips_are_caught() {
        let base = small_base();
        let mut j = Journal::new(&base);
        j.append(sample_record(1));
        let bytes = j.to_bytes();
        for byte in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[byte] ^= 0x01;
            assert!(
                Journal::from_bytes(&bad).is_err(),
                "flip at byte {byte} went unnoticed"
            );
        }
    }

    #[test]
    fn sequence_gaps_are_rejected() {
        let base = small_base();
        let mut j = Journal::new(&base);
        j.append(sample_record(1));
        let mut bytes = j.to_bytes();
        // Rewrite the record's seq from 1 to 2 (first 8 bytes after the
        // 32-byte preamble), leaving its CRC intact (seq is outside the
        // payload, covered by contiguity instead).
        bytes[32] = 2;
        assert!(matches!(
            Journal::from_bytes(&bytes),
            Err(StoreError::Malformed {
                context: "journal record",
                ..
            })
        ));
    }

    #[test]
    #[should_panic(expected = "in sequence")]
    fn append_rejects_gaps() {
        let base = small_base();
        let mut j = Journal::new(&base);
        j.append(sample_record(2));
    }

    #[test]
    fn verify_base_catches_foreign_base() {
        let base = small_base();
        let mut j = Journal::new(&base);
        j.append(sample_record(1));
        let parents = vec![None, Some((NodeId(0), Weight(1)))];
        let other = Snapshot::build(
            &RootedTree::from_parents(NodeId(0), parents).unwrap(),
            SepFieldCodec::EliasGamma,
        );
        assert!(matches!(
            j.verify_base(&other),
            Err(StoreError::Malformed {
                context: "journal base reference",
                ..
            })
        ));
        // Same shape, different bytes: caught by the CRC anchor.
        let mut near = base.clone();
        near.set_max_label(0, bits_of(&[true]));
        assert!(matches!(
            j.verify_base(&near),
            Err(StoreError::Malformed {
                context: "journal base reference",
                ..
            })
        ));
    }

    #[test]
    fn apply_rewrites_exactly_the_dirty_rows() {
        let base = small_base();
        let rec = sample_record(1);
        let mut snap = base.clone();
        rec.apply_to(&mut snap).expect("in range");
        assert_eq!(snap.max_weight(), Weight(9));
        assert_eq!(snap.codec().omega_bits, 4);
        assert_eq!(snap.dist().unwrap().delta_bits, 5);
        assert_eq!(snap.max_labels()[1], bits_of(&[true, false, true]));
        assert_eq!(snap.flow_labels()[3], bits_of(&[false; 9]));
        // Untouched rows are bit-identical to the base.
        assert_eq!(snap.max_labels()[0], base.max_labels()[0]);
        assert_eq!(snap.flow_labels()[2], base.flow_labels()[2]);
        assert_eq!(snap.dist().unwrap().labels, base.dist().unwrap().labels);
    }

    #[test]
    fn apply_rejects_out_of_range_and_missing_dist() {
        let base = small_base();
        let mut rec = sample_record(1);
        rec.max[0].node = 99;
        let mut snap = base.clone();
        assert!(rec.apply_to(&mut snap).is_err());
        assert_eq!(snap, base, "failed apply must not modify the snapshot");

        let mut rec = sample_record(1);
        rec.dist.push(LabelDelta {
            node: 0,
            bits: bits_of(&[true]),
        });
        let mut stripped = base.clone();
        stripped.strip_dist();
        assert!(rec.apply_to(&mut stripped).is_err());
    }

    #[test]
    fn journal_magic_is_distinct_from_snapshot_magic() {
        assert_ne!(JOURNAL_MAGIC, crate::MAGIC);
        // A snapshot handed to the journal parser (and vice versa) is a
        // BadMagic, not a crash or a misparse.
        let base = small_base();
        assert!(matches!(
            Journal::from_bytes(&base.to_bytes()),
            Err(StoreError::BadMagic)
        ));
        let j = Journal::new(&base);
        assert!(matches!(
            Snapshot::from_bytes(&j.to_bytes()),
            Err(StoreError::BadMagic)
        ));
    }
}
