//! The versioned binary snapshot container.
//!
//! A snapshot persists everything the serving tier needs to answer
//! `MAX`/`FLOW`/`DIST`/`VerifyEdge` queries for one marked tree: the tree
//! itself plus the full encoded label stack. All integers are
//! little-endian; every section payload carries a CRC32 so bit flips are
//! rejected at load time with a typed [`StoreError`], never served as a
//! wrong answer.
//!
//! ```text
//! offset size  field
//! 0      8     magic  "MSTVSNAP"
//! 8      2     version (= 1)
//! 10     2     reserved (= 0)
//! 12     4     header length H
//! 16     4     header CRC32
//! 20     H     header: n u32 · root u32 · max_weight u64 · sep_codec u8
//!              · sep_bits u32 · omega_bits u32 · section count u32
//! then, per section:
//!        1     tag (1 = tree, 2 = max, 3 = flow, 4 = dist)
//!        8     payload length
//!        4     payload CRC32
//!        ...   payload
//! ```
//!
//! The tree payload is `n` records of `parent u32` (`0xFFFF_FFFF` at the
//! root) and `weight u64`. Label payloads are `n` length-prefixed records
//! (`bit_len u32`, then `⌈bit_len/8⌉` bytes from
//! [`BitString::to_bytes`]); the dist payload additionally opens with its
//! `delta_bits u32` field width. Tree, max, and flow sections are
//! mandatory; dist is optional. Unknown tags are rejected — version 1
//! files contain exactly these sections.
//!
//! # Version 2: columnar label sections
//!
//! Version 2 keeps the magic, prelude, header, tree section, and section
//! framing byte-for-byte, and replaces the three row-oriented label
//! sections with *columnar* ones (tags 5 = max, 6 = flow, 7 = dist)
//! whose payload is
//!
//! ```text
//! [delta_bits u32]            dist section only
//! offsets   (n+1) × u64 LE    bit offsets, offsets[0] = 0
//! payload   ⌈offsets[n]/8⌉    every label back-to-back, bit-packed
//! ```
//!
//! Label `v` is bits `offsets[v] .. offsets[v+1]` of the payload — the
//! exact same bits the v1 record for `v` carries, just without the `n`
//! length prefixes and the per-record byte padding. The layout is what
//! [`mstv_labels::PackedLabels`] holds in memory, which buys two things:
//! a sequential scan touches one contiguous buffer instead of `n`
//! heap-scattered records, and a memory-mapped file can serve a label as
//! a borrowed [`mstv_labels::BitSlice`] with zero copies (see
//! [`crate::MappedSnapshot`]). Both versions stay readable forever;
//! [`Snapshot::to_bytes`] keeps writing v1 so existing golden fixtures
//! and byte-comparison tooling are unaffected, and
//! [`Snapshot::to_bytes_format`] selects explicitly.

use std::path::Path;

use mstv_graph::{NodeId, Weight};
use mstv_labels::{
    BitString, ImplicitDistScheme, ImplicitFlowScheme, ImplicitMaxScheme, LabelCodec, PackedLabels,
    SepFieldCodec,
};
use mstv_trees::{centroid_decomposition_parallel, ParallelConfig, PathMaxIndex, RootedTree};

use crate::crc::crc32;
use crate::StoreError;

/// The 8-byte file magic.
pub const MAGIC: [u8; 8] = *b"MSTVSNAP";

/// The original (row-oriented) container version. This is what
/// [`Snapshot::to_bytes`] writes by default.
pub const VERSION: u16 = 1;

/// The columnar container version (see the module docs). Readable by
/// [`Snapshot::from_bytes`] and [`crate::MappedSnapshot`]; written on
/// request via [`Snapshot::to_bytes_format`].
pub const VERSION_V2: u16 = 2;

/// Which container version to write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SnapshotFormat {
    /// Version 1: row-oriented, length-prefixed label records.
    #[default]
    V1,
    /// Version 2: columnar label sections (offsets table + one
    /// contiguous bit payload per family), mmap-servable.
    V2,
}

impl SnapshotFormat {
    /// The version number this format stamps into the prelude.
    pub fn version(self) -> u16 {
        match self {
            SnapshotFormat::V1 => VERSION,
            SnapshotFormat::V2 => VERSION_V2,
        }
    }
}

impl std::str::FromStr for SnapshotFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "v1" | "1" => Ok(SnapshotFormat::V1),
            "v2" | "2" => Ok(SnapshotFormat::V2),
            other => Err(format!(
                "unknown snapshot format {other:?} (expected v1 or v2)"
            )),
        }
    }
}

/// Parent sentinel for the root node in the tree section (shared with
/// the delta-journal tree records).
pub(crate) const NO_PARENT: u32 = u32::MAX;

/// Largest label record accepted on read (bits). Labels are
/// `O(log n · log W)`, so even pathological trees stay far below this;
/// the cap keeps a corrupted length prefix from driving allocations.
pub(crate) const MAX_LABEL_BITS: u32 = 1 << 26;

pub(crate) mod tag {
    pub const TREE: u8 = 1;
    pub const MAX: u8 = 2;
    pub const FLOW: u8 = 3;
    pub const DIST: u8 = 4;
    // Version-2 columnar label sections.
    pub const MAXC: u8 = 5;
    pub const FLOWC: u8 = 6;
    pub const DISTC: u8 = 7;
}

/// The optional distance-label section: `δ` fields are wider than `ω`
/// fields (distances are bounded by `n·W`), so the section carries its
/// own field width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistSection {
    /// Width of each `δ` field in bits.
    pub delta_bits: u32,
    /// Encoded distance label per node.
    pub labels: Vec<BitString>,
}

/// What `fsck` verified, for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsckReport {
    /// Nodes in the snapshot.
    pub nodes: u32,
    /// Whether a dist section was present and checked.
    pub has_dist: bool,
    /// Largest encoded label across all sections, in bits.
    pub max_label_bits: usize,
    /// Total encoded label volume, in bits.
    pub total_label_bits: usize,
    /// Node pairs cross-checked against the tree oracle.
    pub pairs_checked: usize,
}

/// An in-memory label snapshot: one marked tree plus its full label
/// stack, exactly what [`Snapshot::to_bytes`] persists and
/// [`Snapshot::from_bytes`] restores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    root: NodeId,
    max_weight: Weight,
    codec: LabelCodec,
    parents: Vec<Option<(NodeId, Weight)>>,
    max_labels: Vec<BitString>,
    flow_labels: Vec<BitString>,
    dist: Option<DistSection>,
}

impl Snapshot {
    /// Runs the markers over `tree` and captures the full label stack:
    /// `MAX`, `FLOW`, and `DIST` labels under one shared centroid
    /// decomposition and the given separator-field codec.
    pub fn build(tree: &RootedTree, sep_codec: SepFieldCodec) -> Snapshot {
        Self::build_parallel(
            tree,
            sep_codec,
            ParallelConfig::with_threads(std::num::NonZeroUsize::MIN),
        )
    }

    /// [`Snapshot::build`] with the whole labeling pipeline — centroid
    /// decomposition, per-node `MAX`/`FLOW`/`DIST` label assembly, and
    /// bit-level encoding — fanned across a scoped thread pool.
    ///
    /// The output is byte-identical to the sequential builder for every
    /// thread count (`Snapshot::build` *is* this function pinned to one
    /// worker), so golden snapshot fixtures and checksums are stable no
    /// matter how a snapshot was produced.
    pub fn build_parallel(
        tree: &RootedTree,
        sep_codec: SepFieldCodec,
        config: ParallelConfig,
    ) -> Snapshot {
        let sep = centroid_decomposition_parallel(tree, config);
        let max_scheme =
            ImplicitMaxScheme::with_decomposition_parallel(tree, &sep, sep_codec, config);
        let flow_scheme =
            ImplicitFlowScheme::with_decomposition_parallel(tree, &sep, sep_codec, config);
        let dist_scheme =
            ImplicitDistScheme::with_decomposition_parallel(tree, &sep, sep_codec, config);
        let parents = tree
            .nodes()
            .map(|v| tree.parent(v).map(|p| (p, tree.parent_weight(v))))
            .collect();
        let collect = |enc: &dyn Fn(NodeId) -> BitString| tree.nodes().map(enc).collect();
        Snapshot {
            root: tree.root(),
            max_weight: tree.edges().map(|(_, _, w)| w).max().unwrap_or(Weight(1)),
            codec: max_scheme.codec(),
            parents,
            max_labels: collect(&|v| max_scheme.encoded(v).clone()),
            flow_labels: collect(&|v| flow_scheme.encoded(v).clone()),
            dist: Some(DistSection {
                delta_bits: dist_scheme.delta_bits(),
                labels: collect(&|v| dist_scheme.encoded(v).clone()),
            }),
        }
    }

    /// Assembles a snapshot directly from its parts, bypassing the
    /// marker. This is the constructor incremental relabelers
    /// (`mstv-dyn`) use to persist a label stack they maintained
    /// themselves; nothing is validated here — run [`Snapshot::fsck`]
    /// to vouch for the result.
    ///
    /// # Panics
    ///
    /// Panics if the per-node vectors disagree on length.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        root: NodeId,
        max_weight: Weight,
        codec: LabelCodec,
        parents: Vec<Option<(NodeId, Weight)>>,
        max_labels: Vec<BitString>,
        flow_labels: Vec<BitString>,
        dist: Option<DistSection>,
    ) -> Snapshot {
        assert_eq!(parents.len(), max_labels.len(), "per-node vectors differ");
        assert_eq!(parents.len(), flow_labels.len(), "per-node vectors differ");
        if let Some(d) = &dist {
            assert_eq!(parents.len(), d.labels.len(), "per-node vectors differ");
        }
        Snapshot {
            root,
            max_weight,
            codec,
            parents,
            max_labels,
            flow_labels,
            dist,
        }
    }

    /// Number of labelled nodes.
    pub fn num_nodes(&self) -> u32 {
        self.parents.len() as u32
    }

    /// The root the stored tree is hung from.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The largest tree-edge weight (`W`), as recorded in the header.
    pub fn max_weight(&self) -> Weight {
        self.max_weight
    }

    /// The codec all stored `MAX`/`FLOW` labels were encoded under.
    pub fn codec(&self) -> LabelCodec {
        self.codec
    }

    /// The encoded `MAX` label records.
    pub fn max_labels(&self) -> &[BitString] {
        &self.max_labels
    }

    /// The encoded `FLOW` label records.
    pub fn flow_labels(&self) -> &[BitString] {
        &self.flow_labels
    }

    /// The distance section, if the snapshot carries one.
    pub fn dist(&self) -> Option<&DistSection> {
        self.dist.as_ref()
    }

    /// Largest encoded label across all sections, in bits.
    pub fn max_label_bits(&self) -> usize {
        self.label_sections()
            .flat_map(|(_, labels)| labels.iter().map(BitString::len))
            .max()
            .unwrap_or(0)
    }

    /// Total encoded label volume across all sections, in bits.
    pub fn total_label_bits(&self) -> usize {
        self.label_sections()
            .flat_map(|(_, labels)| labels.iter().map(BitString::len))
            .sum()
    }

    fn label_sections(&self) -> impl Iterator<Item = (&'static str, &[BitString])> {
        [
            ("max", self.max_labels.as_slice()),
            ("flow", self.flow_labels.as_slice()),
        ]
        .into_iter()
        .chain(self.dist.iter().map(|d| ("dist", d.labels.as_slice())))
    }

    /// Drops the optional dist section; `MAX`/`FLOW`/`VerifyEdge`
    /// queries are unaffected and the written file shrinks accordingly.
    pub fn strip_dist(&mut self) {
        self.dist = None;
    }

    #[cfg(test)]
    pub(crate) fn corrupt_max_label_for_test(&mut self, v: NodeId) {
        self.max_labels[v.index()] = BitString::new();
    }

    /// In-place mutators for the delta-journal applier: a
    /// [`crate::DeltaRecord`] rewrites exactly the dirty rows of each
    /// section plus the scheme-wide header fields. Crate-private so
    /// every mutation path outside this crate goes through the
    /// journal's validation.
    pub(crate) fn set_scheme_widths(
        &mut self,
        max_weight: Weight,
        omega_bits: u32,
        delta_bits: u32,
    ) {
        self.max_weight = max_weight;
        self.codec.omega_bits = omega_bits;
        if let Some(d) = &mut self.dist {
            d.delta_bits = delta_bits;
        }
    }

    pub(crate) fn set_parent_entry(&mut self, v: usize, entry: Option<(NodeId, Weight)>) {
        self.parents[v] = entry;
    }

    pub(crate) fn set_max_label(&mut self, v: usize, bits: BitString) {
        self.max_labels[v] = bits;
    }

    pub(crate) fn set_flow_label(&mut self, v: usize, bits: BitString) {
        self.flow_labels[v] = bits;
    }

    pub(crate) fn set_dist_label(&mut self, v: usize, bits: BitString) {
        if let Some(d) = &mut self.dist {
            d.labels[v] = bits;
        }
    }

    /// Reconstructs the stored tree.
    ///
    /// # Errors
    ///
    /// [`StoreError::Malformed`] if the parent pointers do not form a
    /// tree rooted at the recorded root.
    pub fn tree(&self) -> Result<RootedTree, StoreError> {
        RootedTree::from_parents(self.root, self.parents.clone()).map_err(|e| {
            StoreError::Malformed {
                context: "tree section",
                reason: e.to_string(),
            }
        })
    }

    /// Serializes the snapshot into the default (version 1) container
    /// format. Byte-stable: golden fixtures and checksum tooling can
    /// compare this output across builds.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_bytes_format(SnapshotFormat::V1)
    }

    /// Serializes the snapshot in the requested container version. Both
    /// versions carry bit-identical label streams — a v1 and a v2 file
    /// written from the same snapshot parse back [`PartialEq`]-equal.
    pub fn to_bytes_format(&self, format: SnapshotFormat) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.total_label_bits() / 8);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&format.version().to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes());

        let (sep_id, sep_bits) = match self.codec.sep_codec {
            SepFieldCodec::EliasGamma => (0u8, 0u32),
            SepFieldCodec::FixedWidth { bits } => (1u8, bits),
        };
        let mut header = Vec::with_capacity(29);
        header.extend_from_slice(&self.num_nodes().to_le_bytes());
        header.extend_from_slice(&self.root.0.to_le_bytes());
        header.extend_from_slice(&self.max_weight.0.to_le_bytes());
        header.push(sep_id);
        header.extend_from_slice(&sep_bits.to_le_bytes());
        header.extend_from_slice(&self.codec.omega_bits.to_le_bytes());
        let section_count = 3 + u32::from(self.dist.is_some());
        header.extend_from_slice(&section_count.to_le_bytes());
        out.extend_from_slice(&(header.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&header).to_le_bytes());
        out.extend_from_slice(&header);

        let mut tree_payload = Vec::with_capacity(12 * self.parents.len());
        for entry in &self.parents {
            let (parent, w) = match entry {
                Some((p, w)) => (p.0, w.0),
                None => (NO_PARENT, 0),
            };
            tree_payload.extend_from_slice(&parent.to_le_bytes());
            tree_payload.extend_from_slice(&w.to_le_bytes());
        }
        push_section(&mut out, tag::TREE, &tree_payload);
        match format {
            SnapshotFormat::V1 => {
                push_section(&mut out, tag::MAX, &label_payload(&self.max_labels, &[]));
                push_section(&mut out, tag::FLOW, &label_payload(&self.flow_labels, &[]));
                if let Some(dist) = &self.dist {
                    let prefix = dist.delta_bits.to_le_bytes();
                    push_section(&mut out, tag::DIST, &label_payload(&dist.labels, &prefix));
                }
            }
            SnapshotFormat::V2 => {
                push_section(
                    &mut out,
                    tag::MAXC,
                    &columnar_payload(&self.max_labels, &[]),
                );
                push_section(
                    &mut out,
                    tag::FLOWC,
                    &columnar_payload(&self.flow_labels, &[]),
                );
                if let Some(dist) = &self.dist {
                    let prefix = dist.delta_bits.to_le_bytes();
                    push_section(
                        &mut out,
                        tag::DISTC,
                        &columnar_payload(&dist.labels, &prefix),
                    );
                }
            }
        }
        out
    }

    /// Parses a snapshot, validating magic, version, every CRC, and the
    /// framing of every record.
    ///
    /// # Errors
    ///
    /// The precise [`StoreError`] naming what was wrong: [`StoreError::BadMagic`],
    /// [`StoreError::UnsupportedVersion`], [`StoreError::Truncated`],
    /// [`StoreError::CrcMismatch`], or [`StoreError::Malformed`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, StoreError> {
        let mut r = ByteReader::new(bytes);
        let (version, header) = parse_prelude(&mut r)?;
        let SnapHeader {
            n,
            root,
            max_weight,
            codec,
            section_count,
        } = header;

        let mut parents = None;
        let mut max_labels = None;
        let mut flow_labels = None;
        let mut dist = None;
        for _ in 0..section_count {
            let tag = r.read_u8("section tag")?;
            let len = r.read_u64("section length")? as usize;
            let stored = r.read_u32("section checksum")?;
            let section_name = section_name(version, tag)?;
            let payload = r.take(len, section_name)?;
            let computed = crc32(payload);
            if computed != stored {
                return Err(StoreError::CrcMismatch {
                    section: section_name,
                    stored,
                    computed,
                });
            }
            match tag {
                tag::TREE => {
                    reject_duplicate(parents.is_some(), section_name)?;
                    parents = Some(parse_tree_payload(payload, n)?);
                }
                tag::MAX => {
                    reject_duplicate(max_labels.is_some(), section_name)?;
                    max_labels = Some(parse_label_payload(payload, n, section_name)?);
                }
                tag::FLOW => {
                    reject_duplicate(flow_labels.is_some(), section_name)?;
                    flow_labels = Some(parse_label_payload(payload, n, section_name)?);
                }
                tag::DIST => {
                    reject_duplicate(dist.is_some(), section_name)?;
                    let mut d = ByteReader::new(payload);
                    let delta_bits = read_delta_bits(&mut d)?;
                    let labels = parse_label_payload(d.rest(), n, section_name)?;
                    dist = Some(DistSection { delta_bits, labels });
                }
                tag::MAXC => {
                    reject_duplicate(max_labels.is_some(), section_name)?;
                    let col = parse_columnar(payload, n, section_name)?;
                    max_labels = Some(col.to_bitstrings());
                }
                tag::FLOWC => {
                    reject_duplicate(flow_labels.is_some(), section_name)?;
                    let col = parse_columnar(payload, n, section_name)?;
                    flow_labels = Some(col.to_bitstrings());
                }
                tag::DISTC => {
                    reject_duplicate(dist.is_some(), section_name)?;
                    let mut d = ByteReader::new(payload);
                    let delta_bits = read_delta_bits(&mut d)?;
                    let col = parse_columnar(d.rest(), n, section_name)?;
                    dist = Some(DistSection {
                        delta_bits,
                        labels: col.to_bitstrings(),
                    });
                }
                _ => unreachable!("section_name rejected unknown tags"),
            }
        }
        if !r.rest().is_empty() {
            return Err(StoreError::Malformed {
                context: "container",
                reason: format!("{} trailing bytes after last section", r.rest().len()),
            });
        }
        let missing = |section| StoreError::MissingSection { section };
        Ok(Snapshot {
            root,
            max_weight,
            codec,
            parents: parents.ok_or(missing("tree"))?,
            max_labels: max_labels.ok_or(missing("max"))?,
            flow_labels: flow_labels.ok_or(missing("flow"))?,
            dist,
        })
    }

    /// Writes the snapshot to a file in the default (version 1) format.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure.
    pub fn write_file(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        self.write_file_format(path, SnapshotFormat::V1)
    }

    /// Writes the snapshot to a file in the requested container version.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure.
    pub fn write_file_format(
        &self,
        path: impl AsRef<Path>,
        format: SnapshotFormat,
    ) -> Result<(), StoreError> {
        std::fs::write(path, self.to_bytes_format(format)).map_err(StoreError::from)
    }

    /// Reads and parses a snapshot file.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure, otherwise whatever
    /// [`Snapshot::from_bytes`] reports.
    pub fn read_file(path: impl AsRef<Path>) -> Result<Snapshot, StoreError> {
        Snapshot::from_bytes(&std::fs::read(path)?)
    }

    /// Deep-checks the snapshot: decodes every label record through the
    /// non-panicking codecs, reconstructs the tree, and cross-checks
    /// `pairs` deterministic node pairs against a fresh path oracle on
    /// the stored tree — so a snapshot whose labels belong to a
    /// *different* tree (every CRC intact) is still caught.
    ///
    /// # Errors
    ///
    /// [`StoreError::CorruptLabel`] naming the first undecodable record,
    /// [`StoreError::Malformed`] for a broken tree or an oracle
    /// disagreement, [`StoreError::LabelMismatch`] for label pairs from
    /// different schemes.
    pub fn fsck(&self, pairs: usize) -> Result<FsckReport, StoreError> {
        let n = self.num_nodes();
        let corrupt = |section, node: u32| StoreError::CorruptLabel { section, node };
        let mut max_decoded = Vec::with_capacity(n as usize);
        let mut flow_decoded = Vec::with_capacity(n as usize);
        for v in 0..n {
            max_decoded.push(
                self.codec
                    .try_decode_max_label(&self.max_labels[v as usize])
                    .ok_or_else(|| corrupt("max", v))?,
            );
            flow_decoded.push(
                self.codec
                    .try_decode_flow_label(&self.flow_labels[v as usize])
                    .ok_or_else(|| corrupt("flow", v))?,
            );
        }
        let mut dist_decoded = Vec::new();
        if let Some(dist) = &self.dist {
            for v in 0..n {
                dist_decoded.push(
                    self.codec
                        .try_decode_dist_label(&dist.labels[v as usize], dist.delta_bits)
                        .ok_or_else(|| corrupt("dist", v))?,
                );
            }
        }

        let tree = self.tree()?;
        let idx = PathMaxIndex::new(&tree);
        let mut wdepth = vec![0u64; tree.num_nodes()];
        for &v in tree.order() {
            if let Some(p) = tree.parent(v) {
                wdepth[v.index()] = wdepth[p.index()] + tree.parent_weight(v).0;
            }
        }
        let mut checked = 0;
        for i in 0..pairs {
            let Some((u, v)) = fsck_pair(i, n) else {
                break; // n < 2: path queries need distinct endpoints
            };
            let (nu, nv) = (NodeId(u), NodeId(v));
            let mismatch = |what: &str, got: String, want: String| StoreError::Malformed {
                context: "label cross-check",
                reason: format!("{what}({u}, {v}) decodes to {got}, tree oracle says {want}"),
            };
            let got =
                mstv_labels::try_decode_max(&max_decoded[u as usize], &max_decoded[v as usize])
                    .ok_or(StoreError::LabelMismatch { u, v })?;
            let want = idx
                .try_max_on_path(nu, nv)
                .expect("fsck pairs are in range");
            if got != want {
                return Err(mismatch("MAX", got.to_string(), want.to_string()));
            }
            let got =
                mstv_labels::try_decode_flow(&flow_decoded[u as usize], &flow_decoded[v as usize])
                    .ok_or(StoreError::LabelMismatch { u, v })?;
            let want = idx
                .try_min_on_path(nu, nv)
                .expect("fsck pairs are in range");
            if got != want {
                return Err(mismatch("FLOW", got.to_string(), want.to_string()));
            }
            if !dist_decoded.is_empty() {
                let got = mstv_labels::try_decode_dist(
                    &dist_decoded[u as usize],
                    &dist_decoded[v as usize],
                )
                .ok_or(StoreError::LabelMismatch { u, v })?;
                let x = idx.try_lca(nu, nv).expect("fsck pairs are in range");
                let want = wdepth[nu.index()] + wdepth[nv.index()] - 2 * wdepth[x.index()];
                if got != want {
                    return Err(mismatch("DIST", got.to_string(), want.to_string()));
                }
            }
            checked += 1;
        }
        Ok(FsckReport {
            nodes: n,
            has_dist: self.dist.is_some(),
            max_label_bits: self.max_label_bits(),
            total_label_bits: self.total_label_bits(),
            pairs_checked: checked,
        })
    }
}

/// The deterministic pair sampler behind [`Snapshot::fsck`]: maps a
/// check index `i` to a node pair `(u, v)` with `u ≠ v`, or `None` when
/// `n < 2` (path queries are only specified for distinct endpoints, so
/// a 0- or 1-node snapshot has no pairs to check).
///
/// Two properties the fsck depends on, by construction:
///
/// * **Full endpoint coverage** — `u = i mod n`, so any window of `n`
///   consecutive indices visits every node (and therefore every
///   `u mod s` residue class of an `s`-sharded query tier) as a first
///   endpoint. The earlier multiplicative sweep
///   (`i·0x9E37_79B9 mod n`) visited only `gcd`-reachable residues for
///   unlucky `n` and could pair a node with itself, silently skipping
///   the check.
/// * **Distinct endpoints** — the offset `1 + splitmix64(i) mod (n-1)`
///   lies in `[1, n-1]`, so `v` never wraps onto `u`. The
///   `mod (n-1)` of a 64-bit hash carries bias at most `(n-1)/2⁶⁴` per
///   offset — unobservable at any n a snapshot can hold, and the
///   price of keeping the sampler allocation-free and O(1) per index.
///
/// No RNG state: fsck results are reproducible byte-for-byte.
pub fn fsck_pair(i: usize, n: u32) -> Option<(u32, u32)> {
    if n < 2 {
        return None;
    }
    let u = (i as u64 % u64::from(n)) as u32;
    let offset = 1 + (splitmix64(i as u64) % u64::from(n - 1)) as u32;
    let v = (u + offset) % n;
    Some((u, v))
}

/// SplitMix64's finalizer: a fixed 64-bit mixing permutation
/// (Steele–Lea–Flood, the seeding function of the xoshiro family).
fn splitmix64(i: u64) -> u64 {
    let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The header fields shared by every container version, decoded and
/// validated. What [`parse_prelude`] hands back to both the owning
/// parser ([`Snapshot::from_bytes`]) and the mapping one
/// ([`crate::MappedSnapshot`]).
pub(crate) struct SnapHeader {
    pub n: u32,
    pub root: NodeId,
    pub max_weight: Weight,
    pub codec: LabelCodec,
    pub section_count: u32,
}

/// Parses and validates everything before the first section: magic,
/// version (1 or 2), reserved word, and the CRC-protected header. On
/// return the reader is positioned at the first section tag.
pub(crate) fn parse_prelude(r: &mut ByteReader<'_>) -> Result<(u16, SnapHeader), StoreError> {
    if r.take(8, "magic")? != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = r.read_u16("version")?;
    if version != VERSION && version != VERSION_V2 {
        return Err(StoreError::UnsupportedVersion { found: version });
    }
    let reserved = r.read_u16("reserved")?;
    if reserved != 0 {
        // Both versions write zero; insisting on it keeps every byte of
        // the file covered by some check.
        return Err(StoreError::Malformed {
            context: "container",
            reason: format!("reserved field is {reserved:#06x}, expected 0"),
        });
    }
    let header_len = r.read_u32("header length")? as usize;
    let header_crc = r.read_u32("header checksum")?;
    let header_bytes = r.take(header_len, "header")?;
    let computed = crc32(header_bytes);
    if computed != header_crc {
        return Err(StoreError::CrcMismatch {
            section: "header",
            stored: header_crc,
            computed,
        });
    }
    let mut h = ByteReader::new(header_bytes);
    let n = h.read_u32("node count")?;
    let root = NodeId(h.read_u32("root")?);
    let max_weight = Weight(h.read_u64("max weight")?);
    let sep_id = h.read_u8("separator codec id")?;
    let sep_bits = h.read_u32("separator field width")?;
    let omega_bits = h.read_u32("omega field width")?;
    let section_count = h.read_u32("section count")?;
    let sep_codec = match sep_id {
        0 => SepFieldCodec::EliasGamma,
        1 => SepFieldCodec::FixedWidth { bits: sep_bits },
        other => {
            return Err(StoreError::Malformed {
                context: "header",
                reason: format!("unknown separator codec id {other}"),
            })
        }
    };
    if root.0 >= n.max(1) {
        return Err(StoreError::Malformed {
            context: "header",
            reason: format!("root {} out of range for {n} nodes", root.0),
        });
    }
    if omega_bits == 0 || omega_bits > 64 || sep_bits > 64 {
        return Err(StoreError::Malformed {
            context: "header",
            reason: format!("implausible field widths ω={omega_bits} sep={sep_bits}"),
        });
    }
    Ok((
        version,
        SnapHeader {
            n,
            root,
            max_weight,
            codec: LabelCodec {
                sep_codec,
                omega_bits,
            },
            section_count,
        },
    ))
}

pub(crate) fn read_delta_bits(d: &mut ByteReader<'_>) -> Result<u32, StoreError> {
    let delta_bits = d.read_u32("delta field width")?;
    if delta_bits == 0 || delta_bits > 64 {
        return Err(StoreError::Malformed {
            context: "dist section",
            reason: format!("implausible delta width {delta_bits}"),
        });
    }
    Ok(delta_bits)
}

pub(crate) fn section_name(version: u16, tag: u8) -> Result<&'static str, StoreError> {
    let (name, version_ok) = match tag {
        tag::TREE => ("tree", true),
        tag::MAX => ("max", version == VERSION),
        tag::FLOW => ("flow", version == VERSION),
        tag::DIST => ("dist", version == VERSION),
        tag::MAXC => ("max", version == VERSION_V2),
        tag::FLOWC => ("flow", version == VERSION_V2),
        tag::DISTC => ("dist", version == VERSION_V2),
        other => {
            return Err(StoreError::Malformed {
                context: "container",
                reason: format!("unknown section tag {other}"),
            })
        }
    };
    if !version_ok {
        return Err(StoreError::Malformed {
            context: "container",
            reason: format!("section tag {tag} is not valid in a version {version} container"),
        });
    }
    Ok(name)
}

pub(crate) fn reject_duplicate(present: bool, section: &'static str) -> Result<(), StoreError> {
    if present {
        return Err(StoreError::Malformed {
            context: "container",
            reason: format!("duplicate {section} section"),
        });
    }
    Ok(())
}

fn push_section(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    out.push(tag);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

fn label_payload(labels: &[BitString], prefix: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(prefix.len() + labels.len() * 8);
    payload.extend_from_slice(prefix);
    for bits in labels {
        payload.extend_from_slice(&(bits.len() as u32).to_le_bytes());
        payload.extend_from_slice(&bits.to_bytes());
    }
    payload
}

/// The version-2 columnar payload: `prefix`, then `n + 1` little-endian
/// `u64` bit offsets, then the packed label bits. The heavy lifting is
/// [`PackedLabels`] — this serializes an arena verbatim.
fn columnar_payload(labels: &[BitString], prefix: &[u8]) -> Vec<u8> {
    let arena = PackedLabels::from_bitstrings(labels);
    let offsets = arena.offsets();
    let bits = arena.payload_bytes();
    let mut payload = Vec::with_capacity(prefix.len() + offsets.len() * 8 + bits.len());
    payload.extend_from_slice(prefix);
    for o in offsets {
        payload.extend_from_slice(&o.to_le_bytes());
    }
    payload.extend_from_slice(bits);
    payload
}

/// A validated borrowed view of one columnar label section: the offsets
/// table and the packed payload, both still in the container's bytes.
/// This is what [`crate::MappedSnapshot`] keeps per family — label `v`
/// is served as a [`mstv_labels::BitSlice`] straight out of `payload`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ColumnarSection<'a> {
    offsets: &'a [u8],
    payload: &'a [u8],
    n: u32,
}

impl<'a> ColumnarSection<'a> {
    /// Number of labels.
    pub(crate) fn len(&self) -> usize {
        self.n as usize
    }

    /// Bit offset `i` (`0 ..= n`), unaligned little-endian load.
    pub(crate) fn offset(&self, i: usize) -> u64 {
        u64::from_le_bytes(self.offsets[8 * i..8 * i + 8].try_into().expect("8 bytes"))
    }

    /// A borrowed window over label `v`'s bits.
    ///
    /// # Panics
    ///
    /// Panics if `v >= len()`.
    pub(crate) fn slice(&self, v: usize) -> mstv_labels::BitSlice<'a> {
        let start = self.offset(v) as usize;
        let end = self.offset(v + 1) as usize;
        mstv_labels::BitSlice::new(self.payload, start, end - start)
    }

    /// Materializes every label as an owned [`BitString`] (the owning
    /// v2 parse path).
    pub(crate) fn to_bitstrings(self) -> Vec<BitString> {
        (0..self.len())
            .map(|v| self.slice(v).to_bitstring())
            .collect()
    }
}

/// Validates a columnar payload (after any section-specific prefix) and
/// returns the borrowed view: offsets start at 0, never decrease, no
/// label exceeds [`MAX_LABEL_BITS`], the payload is exactly
/// `⌈offsets[n]/8⌉` bytes, and the final byte's padding bits are zero —
/// so every serving path downstream can slice without rechecking.
pub(crate) fn parse_columnar<'a>(
    payload: &'a [u8],
    n: u32,
    section: &'static str,
) -> Result<ColumnarSection<'a>, StoreError> {
    let mut r = ByteReader::new(payload);
    let offsets = r.take((n as usize + 1) * 8, "columnar offsets table")?;
    let bits = r.rest();
    let col = ColumnarSection {
        offsets,
        payload: bits,
        n,
    };
    let malformed = |reason: String| StoreError::Malformed {
        context: section,
        reason,
    };
    if col.offset(0) != 0 {
        return Err(malformed(format!(
            "columnar offsets start at {}, expected 0",
            col.offset(0)
        )));
    }
    for v in 0..n as usize {
        let (start, end) = (col.offset(v), col.offset(v + 1));
        if end < start {
            return Err(malformed(format!(
                "columnar offsets decrease at record {v} ({start} -> {end})"
            )));
        }
        if end - start > u64::from(MAX_LABEL_BITS) {
            return Err(malformed(format!("record {v} claims {} bits", end - start)));
        }
    }
    let total_bits = col.offset(n as usize);
    let expected_bytes = (total_bits as usize).div_ceil(8);
    if bits.len() != expected_bytes {
        return Err(malformed(format!(
            "columnar payload is {} bytes, {total_bits} bits need {expected_bytes}",
            bits.len()
        )));
    }
    if !total_bits.is_multiple_of(8) {
        let last = bits[bits.len() - 1];
        if last >> (total_bits % 8) != 0 {
            return Err(malformed(
                "columnar payload has dirty padding bits in its final byte".to_string(),
            ));
        }
    }
    Ok(col)
}

pub(crate) fn parse_tree_payload(
    payload: &[u8],
    n: u32,
) -> Result<Vec<Option<(NodeId, Weight)>>, StoreError> {
    let mut r = ByteReader::new(payload);
    let mut parents = Vec::with_capacity(n as usize);
    for v in 0..n {
        let parent = r.read_u32("tree record parent")?;
        let w = r.read_u64("tree record weight")?;
        if parent == NO_PARENT {
            parents.push(None);
        } else {
            if parent >= n {
                return Err(StoreError::Malformed {
                    context: "tree section",
                    reason: format!("node {v} points at out-of-range parent {parent}"),
                });
            }
            parents.push(Some((NodeId(parent), Weight(w))));
        }
    }
    if !r.rest().is_empty() {
        return Err(StoreError::Malformed {
            context: "tree section",
            reason: format!("{} trailing bytes after {n} records", r.rest().len()),
        });
    }
    Ok(parents)
}

pub(crate) fn parse_label_payload(
    payload: &[u8],
    n: u32,
    section: &'static str,
) -> Result<Vec<BitString>, StoreError> {
    let mut r = ByteReader::new(payload);
    let mut labels = Vec::with_capacity(n as usize);
    for v in 0..n {
        let bit_len = r.read_u32("label record length")?;
        if bit_len > MAX_LABEL_BITS {
            return Err(StoreError::Malformed {
                context: section,
                reason: format!("record {v} claims {bit_len} bits"),
            });
        }
        let bytes = r.take((bit_len as usize).div_ceil(8), "label record")?;
        labels.push(
            BitString::from_bytes(bytes, bit_len as usize)
                .ok_or(StoreError::CorruptLabel { section, node: v })?,
        );
    }
    if !r.rest().is_empty() {
        return Err(StoreError::Malformed {
            context: section,
            reason: format!("{} trailing bytes after {n} records", r.rest().len()),
        });
    }
    Ok(labels)
}

/// A bounds-checked little-endian cursor; every read that would run past
/// the end reports [`StoreError::Truncated`] with the offset it needed.
/// Shared with the delta-journal reader, which frames records the same
/// way the snapshot frames sections.
pub(crate) struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    pub(crate) fn take(
        &mut self,
        len: usize,
        context: &'static str,
    ) -> Result<&'a [u8], StoreError> {
        if self.buf.len() - self.pos < len {
            return Err(StoreError::Truncated {
                context,
                offset: self.pos,
            });
        }
        let slice = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    pub(crate) fn rest(&self) -> &'a [u8] {
        &self.buf[self.pos..]
    }

    /// Byte offset of the cursor from the start of the buffer.
    pub(crate) fn position(&self) -> usize {
        self.pos
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    pub(crate) fn read_u8(&mut self, context: &'static str) -> Result<u8, StoreError> {
        Ok(self.take(1, context)?[0])
    }

    pub(crate) fn read_u16(&mut self, context: &'static str) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(
            self.take(2, context)?.try_into().expect("2 bytes"),
        ))
    }

    pub(crate) fn read_u32(&mut self, context: &'static str) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(
            self.take(4, context)?.try_into().expect("4 bytes"),
        ))
    }

    pub(crate) fn read_u64(&mut self, context: &'static str) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(
            self.take(8, context)?.try_into().expect("8 bytes"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstv_graph::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tree_of(n: usize, max_w: u64, seed: u64) -> RootedTree {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gen::random_tree(n, gen::WeightDist::Uniform { max: max_w }, &mut rng);
        RootedTree::from_graph(&g, NodeId(0)).unwrap()
    }

    #[test]
    fn roundtrip_identity() {
        for (n, w, seed) in [(1usize, 1u64, 1u64), (2, 5, 2), (60, 900, 3), (257, 7, 4)] {
            let t = tree_of(n, w, seed);
            for codec in [
                SepFieldCodec::EliasGamma,
                SepFieldCodec::FixedWidth { bits: 12 },
            ] {
                let snap = Snapshot::build(&t, codec);
                let bytes = snap.to_bytes();
                let back = Snapshot::from_bytes(&bytes).expect("roundtrip");
                assert_eq!(back, snap, "n={n} codec={codec:?}");
                assert_eq!(back.tree().unwrap(), t);
            }
        }
    }

    #[test]
    fn parallel_build_is_byte_identical() {
        for (n, w, seed) in [(1usize, 1u64, 20u64), (70, 400, 21), (311, 90, 22)] {
            let t = tree_of(n, w, seed);
            for codec in [
                SepFieldCodec::EliasGamma,
                SepFieldCodec::FixedWidth { bits: 12 },
            ] {
                let baseline = Snapshot::build(&t, codec).to_bytes();
                for threads in [1usize, 2, 8] {
                    let cfg =
                        ParallelConfig::with_threads(std::num::NonZeroUsize::new(threads).unwrap());
                    let par = Snapshot::build_parallel(&t, codec, cfg).to_bytes();
                    assert_eq!(
                        par, baseline,
                        "n={n} codec={codec:?} threads={threads}: snapshot bytes diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn fsck_accepts_honest_snapshots() {
        let t = tree_of(120, 500, 5);
        let snap = Snapshot::build(&t, SepFieldCodec::EliasGamma);
        let report = snap.fsck(200).expect("honest snapshot");
        assert_eq!(report.nodes, 120);
        assert!(report.has_dist);
        assert_eq!(report.pairs_checked, 200);
        assert!(report.max_label_bits > 0);
        assert!(report.total_label_bits >= report.max_label_bits);
    }

    #[test]
    fn fsck_pair_covers_every_shard_residue_without_degenerate_pairs() {
        // The serving tier shards by node id mod shard count (default
        // 4): a sampler that never produces an endpoint in some residue
        // class would leave those shards' records uncrosschecked. 257
        // is prime (and 1 mod 4), the worst case for the old
        // multiplicative sweep's residue reachability.
        const SHARDS: u32 = 4;
        for n in [1u32, 2, 3, 257] {
            if n < 2 {
                assert_eq!(fsck_pair(0, n), None);
                assert_eq!(fsck_pair(17, n), None);
                continue;
            }
            let mut u_classes = vec![false; SHARDS as usize];
            let mut v_classes = vec![false; SHARDS as usize];
            let pairs = 4 * n as usize;
            for i in 0..pairs {
                let (u, v) = fsck_pair(i, n).expect("n >= 2 always yields a pair");
                assert!(u < n && v < n, "n={n} i={i}: ({u}, {v}) out of range");
                assert_ne!(u, v, "n={n} i={i}: degenerate pair");
                u_classes[(u % SHARDS) as usize] = true;
                v_classes[(v % SHARDS) as usize] = true;
            }
            // Every residue class a node of this instance can inhabit
            // must appear among the sampled endpoints.
            for c in 0..SHARDS.min(n) as usize {
                assert!(u_classes[c], "n={n}: no pair with u ≡ {c} (mod {SHARDS})");
                assert!(v_classes[c], "n={n}: no pair with v ≡ {c} (mod {SHARDS})");
            }
        }
    }

    #[test]
    fn fsck_on_single_node_snapshot_checks_zero_pairs() {
        let t = tree_of(1, 1, 9);
        let snap = Snapshot::build(&t, SepFieldCodec::EliasGamma);
        let report = snap.fsck(64).expect("single-node snapshot is honest");
        assert_eq!(report.pairs_checked, 0);
    }

    #[test]
    fn fsck_catches_labels_from_a_different_tree() {
        // Swap the max labels for another tree's: every CRC is intact,
        // only the semantic cross-check can notice.
        let t1 = tree_of(80, 300, 6);
        let t2 = tree_of(80, 300, 7);
        let mut snap = Snapshot::build(&t1, SepFieldCodec::EliasGamma);
        let foreign = Snapshot::build(&t2, SepFieldCodec::EliasGamma);
        snap.max_labels = foreign.max_labels.clone();
        let reparsed = Snapshot::from_bytes(&snap.to_bytes()).expect("structurally valid");
        assert!(matches!(
            reparsed.fsck(400),
            Err(StoreError::Malformed { context, .. }) if context == "label cross-check"
        ));
    }

    #[test]
    fn v2_roundtrips_equal_to_v1() {
        for (n, w, seed) in [
            (1usize, 1u64, 30u64),
            (2, 5, 31),
            (60, 900, 32),
            (257, 7, 33),
        ] {
            let t = tree_of(n, w, seed);
            for codec in [
                SepFieldCodec::EliasGamma,
                SepFieldCodec::FixedWidth { bits: 12 },
            ] {
                let snap = Snapshot::build(&t, codec);
                let v1 = snap.to_bytes_format(SnapshotFormat::V1);
                let v2 = snap.to_bytes_format(SnapshotFormat::V2);
                assert_eq!(v1, snap.to_bytes(), "default format must stay v1");
                assert_eq!(&v2[8..10], &2u16.to_le_bytes(), "v2 version stamp");
                let from_v1 = Snapshot::from_bytes(&v1).expect("v1 parse");
                let from_v2 = Snapshot::from_bytes(&v2).expect("v2 parse");
                assert_eq!(from_v1, snap, "n={n} codec={codec:?}");
                assert_eq!(from_v2, snap, "n={n} codec={codec:?}");
                from_v2.fsck(50).expect("v2 labels decode and cross-check");
            }
        }
    }

    #[test]
    fn v2_without_dist_roundtrips() {
        let t = tree_of(40, 100, 34);
        let mut snap = Snapshot::build(&t, SepFieldCodec::EliasGamma);
        snap.strip_dist();
        let back = Snapshot::from_bytes(&snap.to_bytes_format(SnapshotFormat::V2)).unwrap();
        assert_eq!(back, snap);
        assert!(back.dist().is_none());
    }

    #[test]
    fn columnar_tags_rejected_in_v1_and_row_tags_in_v2() {
        let t = tree_of(10, 20, 35);
        let snap = Snapshot::build(&t, SepFieldCodec::EliasGamma);
        // Splice each file's version stamp to the other version: every
        // label section now carries a tag foreign to the claimed
        // version, which must be a parse error, not a misread.
        for format in [SnapshotFormat::V1, SnapshotFormat::V2] {
            let mut bytes = snap.to_bytes_format(format);
            let other = match format {
                SnapshotFormat::V1 => VERSION_V2,
                SnapshotFormat::V2 => VERSION,
            };
            bytes[8..10].copy_from_slice(&other.to_le_bytes());
            assert!(
                matches!(
                    Snapshot::from_bytes(&bytes),
                    Err(StoreError::Malformed {
                        context: "container",
                        ..
                    })
                ),
                "{format:?} sections must be invalid under version {other}"
            );
        }
    }

    #[test]
    fn v2_corrupt_columnar_payloads_are_rejected() {
        let t = tree_of(30, 60, 36);
        let snap = Snapshot::build(&t, SepFieldCodec::EliasGamma);
        let good = snap.to_bytes_format(SnapshotFormat::V2);
        // Bit flips anywhere in the file trip a CRC; these aimed
        // corruptions instead rewrite a section payload *and* its CRC,
        // exercising the structural validation behind the checksum.
        let n = snap.num_nodes() as usize;
        let rewrite_first_columnar = |f: &mut dyn FnMut(&mut Vec<u8>)| {
            let mut bytes = good.clone();
            // Walk to the MAXC section: prelude, then tree section.
            let header_len = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
            let mut pos = 20 + header_len;
            assert_eq!(bytes[pos], tag::TREE);
            let tree_len = u64::from_le_bytes(bytes[pos + 1..pos + 9].try_into().unwrap()) as usize;
            pos += 13 + tree_len;
            assert_eq!(bytes[pos], tag::MAXC);
            let len = u64::from_le_bytes(bytes[pos + 1..pos + 9].try_into().unwrap()) as usize;
            let payload_at = pos + 13;
            let mut payload = bytes[payload_at..payload_at + len].to_vec();
            f(&mut payload);
            let mut out = bytes[..pos].to_vec();
            out.push(tag::MAXC);
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&crate::crc::crc32(&payload).to_le_bytes());
            out.extend_from_slice(&payload);
            out.extend_from_slice(&bytes[payload_at + len..]);
            bytes = out;
            bytes
        };
        // offsets[0] != 0
        let b = rewrite_first_columnar(&mut |p: &mut Vec<u8>| p[0] = 1);
        assert!(matches!(
            Snapshot::from_bytes(&b),
            Err(StoreError::Malformed { context: "max", .. })
        ));
        // decreasing offsets
        let b = rewrite_first_columnar(&mut |p: &mut Vec<u8>| {
            p[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        });
        assert!(matches!(
            Snapshot::from_bytes(&b),
            Err(StoreError::Malformed { context: "max", .. })
        ));
        // truncated payload
        let b = rewrite_first_columnar(&mut |p: &mut Vec<u8>| {
            p.pop();
        });
        assert!(matches!(
            Snapshot::from_bytes(&b),
            Err(StoreError::Malformed { context: "max", .. })
        ));
        // dirty padding in the final byte (only when padding exists)
        let total_bits = u64::from_le_bytes(good_offsets_last(&good, n));
        if !total_bits.is_multiple_of(8) {
            let b = rewrite_first_columnar(&mut |p: &mut Vec<u8>| {
                *p.last_mut().unwrap() |= 0x80;
            });
            assert!(matches!(
                Snapshot::from_bytes(&b),
                Err(StoreError::Malformed { context: "max", .. })
            ));
        }
    }

    /// Little helper for the corruption test: the last offset entry of
    /// the first columnar section of a v2 file.
    fn good_offsets_last(bytes: &[u8], n: usize) -> [u8; 8] {
        let header_len = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
        let mut pos = 20 + header_len;
        let tree_len = u64::from_le_bytes(bytes[pos + 1..pos + 9].try_into().unwrap()) as usize;
        pos += 13 + tree_len;
        let payload_at = pos + 13;
        bytes[payload_at + 8 * n..payload_at + 8 * (n + 1)]
            .try_into()
            .unwrap()
    }

    #[test]
    fn empty_input_is_truncated_not_panic() {
        assert!(matches!(
            Snapshot::from_bytes(&[]),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn single_node_tree_roundtrips() {
        let t = RootedTree::from_parents(NodeId(0), vec![None]).unwrap();
        let snap = Snapshot::build(&t, SepFieldCodec::EliasGamma);
        let back = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(back.num_nodes(), 1);
        back.fsck(10).unwrap();
    }
}
