//! CRC-32 (IEEE 802.3) over byte slices.
//!
//! The snapshot container checksums every section payload so bit flips
//! are caught at load time instead of surfacing as wrong query answers.
//! The polynomial is the ubiquitous reflected `0xEDB88320`; the table is
//! built at compile time, so there is no runtime initialisation and no
//! external dependency.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The CRC-32 checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"some snapshot payload");
        let mut tampered = b"some snapshot payload".to_vec();
        for byte in 0..tampered.len() {
            for bit in 0..8 {
                tampered[byte] ^= 1 << bit;
                assert_ne!(crc32(&tampered), base, "flip at {byte}.{bit} undetected");
                tampered[byte] ^= 1 << bit;
            }
        }
    }
}
