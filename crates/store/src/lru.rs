//! A fixed-capacity LRU cache with O(1) lookup, insert, and eviction.
//!
//! Each query-engine shard keeps one of these per label kind, mapping
//! node ids to decoded label views so hot nodes skip the bit-level
//! decode. The implementation is the textbook hash-map-plus-intrusive-
//! list, with the list nodes held in a slab so there is no unsafe code
//! and no pointer juggling.

use std::collections::HashMap;

const NIL: usize = usize::MAX;

struct Entry<V> {
    key: u32,
    value: V,
    prev: usize,
    next: usize,
}

/// A least-recently-used cache from node ids to values.
///
/// Capacity 0 is legal and means "caching disabled": every lookup
/// misses and inserts are dropped, which gives experiments an honest
/// no-cache baseline through the same code path.
pub struct LruCache<V> {
    map: HashMap<u32, usize>,
    slab: Vec<Entry<V>>,
    /// Slab slots freed by `invalidate`, reused before the slab grows.
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl<V: Clone> LruCache<V> {
    /// A cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            slab: Vec::with_capacity(capacity.min(1 << 20)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drops every cached entry, keeping the configured capacity. Used
    /// when a shard recovers from a poisoned lock and can no longer
    /// trust what a panicking worker may have half-written.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Drops the entry for `key` if present, returning whether one was
    /// cached. Unlike `clear`, every other entry keeps its slot and its
    /// recency, so applying a delta to a handful of dirty nodes does not
    /// cold-start the whole shard.
    pub fn invalidate(&mut self, key: u32) -> bool {
        let Some(i) = self.map.remove(&key) else {
            return false;
        };
        self.unlink(i);
        self.free.push(i);
        true
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slab[i].prev, self.slab[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slab[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slab[next].prev = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slab[i].prev = NIL;
        self.slab[i].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: u32) -> Option<V> {
        let &i = self.map.get(&key)?;
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
        Some(self.slab[i].value.clone())
    }

    /// Inserts `key → value`, evicting the least recently used entry if
    /// the cache is full. Re-inserting an existing key refreshes both
    /// its value and its recency.
    pub fn insert(&mut self, key: u32, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&i) = self.map.get(&key) {
            self.slab[i].value = value;
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            return;
        }
        let i = if self.map.len() == self.capacity {
            // Reuse the evicted tail's slab slot.
            let lru = self.tail;
            self.unlink(lru);
            self.map.remove(&self.slab[lru].key);
            self.slab[lru].key = key;
            self.slab[lru].value = value;
            lru
        } else if let Some(i) = self.free.pop() {
            // Reuse a slot freed by `invalidate`.
            self.slab[i].key = key;
            self.slab[i].value = value;
            i
        } else {
            self.slab.push(Entry {
                key,
                value,
                prev: NIL,
                next: NIL,
            });
            self.slab.len() - 1
        };
        self.push_front(i);
        self.map.insert(key, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss() {
        let mut c: LruCache<String> = LruCache::new(2);
        assert!(c.is_empty());
        assert_eq!(c.get(1), None);
        c.insert(1, "a".into());
        c.insert(2, "b".into());
        assert_eq!(c.get(1).as_deref(), Some("a"));
        assert_eq!(c.get(2).as_deref(), Some("b"));
        assert_eq!(c.len(), 2);
        assert_eq!(c.capacity(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u64> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        // Touch 1 so 2 becomes the LRU victim.
        assert_eq!(c.get(1), Some(10));
        c.insert(3, 30);
        assert_eq!(c.get(2), None, "2 should have been evicted");
        assert_eq!(c.get(1), Some(10));
        assert_eq!(c.get(3), Some(30));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let mut c: LruCache<u64> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11);
        c.insert(3, 30);
        assert_eq!(c.get(1), Some(11));
        assert_eq!(c.get(2), None);
    }

    #[test]
    fn clear_empties_but_keeps_capacity() {
        let mut c: LruCache<u64> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.get(1), None);
        assert_eq!(c.capacity(), 2);
        // The cache works normally after a clear.
        c.insert(3, 30);
        assert_eq!(c.get(3), Some(30));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c: LruCache<u64> = LruCache::new(0);
        c.insert(1, 10);
        assert_eq!(c.get(1), None);
        assert!(c.is_empty());
    }

    #[test]
    fn single_slot_cycles() {
        let mut c: LruCache<u64> = LruCache::new(1);
        for k in 0..100u32 {
            c.insert(k, u64::from(k));
            assert_eq!(c.get(k), Some(u64::from(k)));
            if k > 0 {
                assert_eq!(c.get(k - 1), None);
            }
        }
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn invalidate_drops_only_the_target() {
        let mut c: LruCache<u64> = LruCache::new(3);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(3, 30);
        assert!(c.invalidate(2));
        assert!(!c.invalidate(2), "second invalidate is a miss");
        assert!(!c.invalidate(99), "absent key is a miss");
        // The others survive with their values.
        assert_eq!(c.get(2), None);
        assert_eq!(c.get(1), Some(10));
        assert_eq!(c.get(3), Some(30));
        assert_eq!(c.len(), 2);
        // The freed slot is reused: the slab must not grow past capacity.
        c.insert(4, 40);
        c.insert(5, 50); // evicts the LRU (key 1)
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(1), None);
        assert_eq!(c.get(3), Some(30));
        assert_eq!(c.get(4), Some(40));
        assert_eq!(c.get(5), Some(50));
        assert!(c.slab.len() <= c.capacity(), "slab leaked a slot");
    }

    #[test]
    fn invalidate_head_and_tail_keep_list_consistent() {
        let mut c: LruCache<u64> = LruCache::new(4);
        for k in 0..4 {
            c.insert(k, u64::from(k));
        }
        assert!(c.invalidate(3)); // MRU head
        assert!(c.invalidate(0)); // LRU tail
        assert_eq!(c.len(), 2);
        c.insert(7, 70);
        c.insert(8, 80);
        c.insert(9, 90); // evicts key 1, the current tail
        assert_eq!(c.get(1), None);
        assert_eq!(c.get(2), Some(2));
        assert_eq!(c.get(7), Some(70));
        assert_eq!(c.get(8), Some(80));
        assert_eq!(c.get(9), Some(90));
    }

    #[test]
    fn invalidate_on_zero_capacity_is_a_miss() {
        let mut c: LruCache<u64> = LruCache::new(0);
        c.insert(1, 10);
        assert!(!c.invalidate(1));
    }

    #[test]
    fn randomized_against_reference_model() {
        // Cross-check against a naive recency-list model.
        let mut c: LruCache<u32> = LruCache::new(8);
        let mut model: Vec<(u32, u32)> = Vec::new(); // front = MRU
        let mut state = 0x243F_6A88u32;
        for _ in 0..10_000 {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            let key = (state >> 16) % 24;
            if state & 7 == 7 {
                let got = c.invalidate(key);
                let want = model.iter().any(|&(k, _)| k == key);
                assert_eq!(got, want, "invalidate {key}");
                model.retain(|&(k, _)| k != key);
            } else if state & 1 == 0 {
                let val = state >> 8;
                c.insert(key, val);
                model.retain(|&(k, _)| k != key);
                model.insert(0, (key, val));
                model.truncate(8);
            } else {
                let got = c.get(key);
                let want = model.iter().position(|&(k, _)| k == key);
                assert_eq!(got, want.map(|i| model[i].1), "key {key}");
                if let Some(i) = want {
                    let e = model.remove(i);
                    model.insert(0, e);
                }
            }
        }
    }
}
