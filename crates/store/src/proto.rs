//! The versioned query wire protocol: one schema for the in-process
//! batch API and the network serving tier.
//!
//! [`Query`] and [`Answer`] started life as in-process types of the
//! [`crate::QueryEngine`]; this module promotes them to a first-class
//! wire schema so `run_batch_response` and a TCP front end (the
//! `mstv-serve` crate) speak the same language. The design follows the
//! `mstv-net` framing conventions: little-endian, length-prefixed,
//! self-delimiting frames with the workspace-wide
//! [`mstv_labels::MAX_FRAME_BYTES`] guard, so an oversized payload is a
//! typed [`ProtoError::Oversized`] rather than a silently truncated
//! length field.
//!
//! # Frame layout (v1)
//!
//! ```text
//! offset  size  field
//! 0       4     magic "MSQP"
//! 4       2     protocol version, u16 LE (currently 1)
//! 6       1     frame kind: 1 Request, 2 Response, 3 AdminRequest,
//!               4 AdminReply
//! 7       4     payload length in bytes, u32 LE
//! 11      len   payload (kind-specific, see below)
//! ```
//!
//! Payloads, all little-endian:
//!
//! * **Request** — `id: u64 | count: u32 | count × Query` where a query
//!   is `tag: u8 (1 Max, 2 Flow, 3 Dist, 4 VerifyEdge) | u: u32 |
//!   v: u32` plus `w: u64` for `VerifyEdge`.
//! * **Response** — `id: u64 | server_epoch: u64 | count: u32 |
//!   count × result`. A result starts with a status byte: `0` is
//!   success followed by an answer (`tag: u8` mirroring the query tags,
//!   then `w: u64` / `d: u64` / `accept: u8, max: u64`); a non-zero
//!   status is an [`ErrorCode`] with its arguments (layout in
//!   [`ErrorCode`]'s docs).
//! * **AdminRequest** — `tag: u8`: `1` stats, `2` swap-snapshot
//!   followed by `len: u32 | len × utf-8 path bytes`, `3` shutdown,
//!   `4` apply-delta followed by `len: u32 | len × record bytes` (one
//!   serialized `MSTVJRNL` [`crate::DeltaRecord`] frame).
//! * **AdminReply** — `tag: u8`: `1` ok followed by `epoch: u64`,
//!   `2` stats followed by a length-prefixed JSON string, `3` error
//!   followed by a length-prefixed message.
//!
//! The v1 byte layout is pinned by a golden fixture in
//! `tests/proto_wire.rs`; encoding and decoding round-trip is
//! property-tested over every query, answer, and error variant.

use std::fmt;

use mstv_graph::{NodeId, Weight};
use mstv_labels::MAX_FRAME_BYTES;

use crate::engine::{Answer, Query};
use crate::StoreError;

/// First bytes of every protocol frame.
pub const PROTO_MAGIC: [u8; 4] = *b"MSQP";

/// The protocol version this module encodes (and the newest it decodes).
pub const PROTO_VERSION: u16 = 1;

/// Bytes before the payload: magic, version, kind, payload length.
pub const FRAME_HEADER_LEN: usize = 11;

/// The largest payload a frame may carry, in bytes — the shared
/// [`mstv_labels::MAX_FRAME_BYTES`] framing bound.
pub const MAX_FRAME_PAYLOAD: usize = MAX_FRAME_BYTES;

/// A failure while encoding or decoding a protocol frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The buffer does not start with [`PROTO_MAGIC`].
    BadMagic,
    /// The frame's version is newer than this decoder understands.
    UnsupportedVersion {
        /// The version number found in the header.
        found: u16,
    },
    /// The header names a frame kind this decoder does not know.
    UnknownKind {
        /// The offending kind byte.
        kind: u8,
    },
    /// The buffer ended before a field could be read.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// A payload longer than [`MAX_FRAME_PAYLOAD`] — refused on both
    /// the encode and the decode path.
    Oversized {
        /// The payload length that was requested or claimed.
        bytes: u64,
    },
    /// A structurally invalid field (unknown tags, bad UTF-8, ...).
    Malformed {
        /// Where the defect was found.
        context: &'static str,
    },
    /// Bytes remained after the payload was fully decoded.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::BadMagic => write!(f, "not a query-protocol frame (bad magic)"),
            ProtoError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported protocol version {found} (speaking v{PROTO_VERSION})"
                )
            }
            ProtoError::UnknownKind { kind } => write!(f, "unknown frame kind {kind:#04x}"),
            ProtoError::Truncated { context } => write!(f, "truncated frame: {context}"),
            ProtoError::Oversized { bytes } => write!(
                f,
                "frame payload of {bytes} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte bound"
            ),
            ProtoError::Malformed { context } => write!(f, "malformed frame: {context}"),
            ProtoError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the payload")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

/// The label section a wire error refers to, as a closed enum instead
/// of the in-process `&'static str`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionKind {
    /// The `MAX` label section.
    Max,
    /// The `FLOW` label section.
    Flow,
    /// The optional `DIST` label section.
    Dist,
}

impl SectionKind {
    fn code(self) -> u8 {
        match self {
            SectionKind::Max => 1,
            SectionKind::Flow => 2,
            SectionKind::Dist => 3,
        }
    }

    fn from_code(code: u8) -> Option<SectionKind> {
        match code {
            1 => Some(SectionKind::Max),
            2 => Some(SectionKind::Flow),
            3 => Some(SectionKind::Dist),
            _ => None,
        }
    }

    /// The section's name, matching the `StoreError` vocabulary.
    pub fn name(self) -> &'static str {
        match self {
            SectionKind::Max => "max",
            SectionKind::Flow => "flow",
            SectionKind::Dist => "dist",
        }
    }
}

/// A typed per-query failure as it travels on the wire (and as
/// [`crate::BatchResponse`] reports it in-process).
///
/// Wire layout: the status byte named next to each variant, followed by
/// the variant's fields in order, little-endian.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Status `1`: a query endpoint the snapshot carries no label for
    /// (`node: u32 | nodes: u32`).
    UnknownNode {
        /// The offending node id.
        node: u32,
        /// Number of labelled nodes in the serving snapshot.
        nodes: u32,
    },
    /// Status `2`: a stored label record that does not decode
    /// (`section: u8 | node: u32`).
    CorruptLabel {
        /// The section the record lives in.
        section: SectionKind,
        /// The node whose record is bad.
        node: u32,
    },
    /// Status `3`: two labels from different trees (`u: u32 | v: u32`).
    LabelMismatch {
        /// First query endpoint.
        u: u32,
        /// Second query endpoint.
        v: u32,
    },
    /// Status `4`: a query against an absent section (`section: u8`).
    MissingSection {
        /// The absent section.
        section: SectionKind,
    },
    /// Status `5`: a shard worker panicked mid-batch (`shard: u32`).
    ShardPoisoned {
        /// Index of the shard whose worker panicked.
        shard: u32,
    },
    /// Status `6`: the server refused the request because its queue was
    /// full (`pending: u32 | limit: u32`) — admission control, not an
    /// engine failure. Retry later.
    Overloaded {
        /// Requests already waiting when this one arrived.
        pending: u32,
        /// The configured queue-depth bound.
        limit: u32,
    },
    /// Status `7`: an engine failure with no wire representation
    /// (I/O, container corruption, ...). Details stay server-side.
    Internal,
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorCode::UnknownNode { node, nodes } => {
                write!(
                    f,
                    "node {node} is not labelled (snapshot holds {nodes} nodes)"
                )
            }
            ErrorCode::CorruptLabel { section, node } => {
                write!(f, "{} label of node {node} does not decode", section.name())
            }
            ErrorCode::LabelMismatch { u, v } => {
                write!(f, "labels of {u} and {v} share no separator prefix")
            }
            ErrorCode::MissingSection { section } => {
                write!(f, "snapshot has no {} section", section.name())
            }
            ErrorCode::ShardPoisoned { shard } => {
                write!(f, "shard {shard} worker panicked mid-batch")
            }
            ErrorCode::Overloaded { pending, limit } => {
                write!(
                    f,
                    "server overloaded ({pending} requests pending, limit {limit})"
                )
            }
            ErrorCode::Internal => write!(f, "internal server error"),
        }
    }
}

impl From<&StoreError> for ErrorCode {
    /// Maps an in-process engine failure to its wire code. Store-side
    /// failures with no serving-time meaning (I/O, container framing)
    /// collapse to [`ErrorCode::Internal`].
    fn from(e: &StoreError) -> ErrorCode {
        fn section_of(name: &str) -> Option<SectionKind> {
            match name {
                "max" => Some(SectionKind::Max),
                "flow" => Some(SectionKind::Flow),
                "dist" => Some(SectionKind::Dist),
                _ => None,
            }
        }
        match *e {
            StoreError::UnknownNode { node, nodes } => ErrorCode::UnknownNode { node, nodes },
            StoreError::CorruptLabel { section, node } => match section_of(section) {
                Some(section) => ErrorCode::CorruptLabel { section, node },
                None => ErrorCode::Internal,
            },
            StoreError::LabelMismatch { u, v } => ErrorCode::LabelMismatch { u, v },
            StoreError::MissingSection { section } => match section_of(section) {
                Some(section) => ErrorCode::MissingSection { section },
                None => ErrorCode::Internal,
            },
            StoreError::ShardPoisoned { shard } => ErrorCode::ShardPoisoned {
                shard: shard.min(u32::MAX as usize) as u32,
            },
            _ => ErrorCode::Internal,
        }
    }
}

/// A batch of queries as it travels client → server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response —
    /// what makes pipelining (several requests in flight on one
    /// connection) unambiguous.
    pub id: u64,
    /// The queries, answered in order.
    pub batch: Vec<Query>,
}

/// The answers to one [`Request`], server → client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The request's correlation id, echoed.
    pub id: u64,
    /// The serving snapshot's epoch — increments on every hot swap, so
    /// a client can tell which snapshot generation answered. All
    /// answers of one response come from a single epoch, never a mix.
    pub server_epoch: u64,
    /// One result per query, in request order.
    pub results: Vec<Result<Answer, ErrorCode>>,
}

/// Out-of-band server operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdminRequest {
    /// Ask for the server's metrics JSON.
    Stats,
    /// Load the snapshot at `path` (a path on the *server's*
    /// filesystem) and atomically swap it in under live traffic.
    SwapSnapshot {
        /// Server-side path of the replacement `MSTVSNAP` file.
        path: String,
    },
    /// Drain and stop the server.
    Shutdown,
    /// Fold one journal delta record into the serving snapshot in place
    /// (no engine rebuild, no epoch-resetting swap): the live-mutation
    /// path of `mstv-dyn`. The reply's epoch reflects the new delta
    /// sequence.
    ApplyDelta {
        /// One serialized [`crate::DeltaRecord`] frame
        /// (`DeltaRecord::to_bytes`).
        bytes: Vec<u8>,
    },
}

/// Server replies to [`AdminRequest`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdminReply {
    /// The operation succeeded; `epoch` is the serving epoch afterwards.
    Ok {
        /// Current snapshot epoch.
        epoch: u64,
    },
    /// The stats JSON (server block + engine block).
    Stats {
        /// One-line JSON document.
        json: String,
    },
    /// The operation failed; the message says why.
    Err {
        /// Human-readable failure description.
        message: String,
    },
}

/// Any protocol frame, ready to encode or freshly decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A query batch, client → server.
    Request(Request),
    /// A batch's answers, server → client.
    Response(Response),
    /// An admin operation, client → server.
    Admin(AdminRequest),
    /// An admin operation's outcome, server → client.
    AdminReply(AdminReply),
}

impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::Request(_) => 1,
            Frame::Response(_) => 2,
            Frame::Admin(_) => 3,
            Frame::AdminReply(_) => 4,
        }
    }

    /// Serializes the frame: header ([`FRAME_HEADER_LEN`] bytes) plus
    /// payload.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Oversized`] if the payload would exceed
    /// [`MAX_FRAME_PAYLOAD`].
    pub fn encode(&self) -> Result<Vec<u8>, ProtoError> {
        let mut payload = Vec::new();
        match self {
            Frame::Request(req) => {
                put_u64(&mut payload, req.id);
                put_u32(
                    &mut payload,
                    u32::try_from(req.batch.len())
                        .map_err(|_| ProtoError::Oversized { bytes: u64::MAX })?,
                );
                for q in &req.batch {
                    encode_query(&mut payload, q);
                }
            }
            Frame::Response(resp) => {
                put_u64(&mut payload, resp.id);
                put_u64(&mut payload, resp.server_epoch);
                put_u32(
                    &mut payload,
                    u32::try_from(resp.results.len())
                        .map_err(|_| ProtoError::Oversized { bytes: u64::MAX })?,
                );
                for r in &resp.results {
                    encode_result(&mut payload, r);
                }
            }
            Frame::Admin(req) => encode_admin(&mut payload, req)?,
            Frame::AdminReply(reply) => encode_admin_reply(&mut payload, reply)?,
        }
        if payload.len() > MAX_FRAME_PAYLOAD {
            return Err(ProtoError::Oversized {
                bytes: payload.len() as u64,
            });
        }
        let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
        out.extend_from_slice(&PROTO_MAGIC);
        out.extend_from_slice(&PROTO_VERSION.to_le_bytes());
        out.push(self.kind());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        Ok(out)
    }

    /// Parses one complete frame (header + payload, nothing after).
    ///
    /// # Errors
    ///
    /// Every malformation is a specific [`ProtoError`]; see
    /// [`header_payload_len`] for the header checks.
    pub fn decode(bytes: &[u8]) -> Result<Frame, ProtoError> {
        if bytes.len() < FRAME_HEADER_LEN {
            return Err(ProtoError::Truncated {
                context: "frame header",
            });
        }
        let header: &[u8; FRAME_HEADER_LEN] = bytes[..FRAME_HEADER_LEN]
            .try_into()
            .expect("length checked");
        let payload_len = header_payload_len(header)?;
        let payload = &bytes[FRAME_HEADER_LEN..];
        if payload.len() < payload_len {
            return Err(ProtoError::Truncated {
                context: "frame payload",
            });
        }
        if payload.len() > payload_len {
            return Err(ProtoError::TrailingBytes {
                extra: payload.len() - payload_len,
            });
        }
        let mut r = Reader {
            buf: payload,
            at: 0,
        };
        let frame = match header[6] {
            1 => {
                let id = r.u64("request id")?;
                let count = r.u32("query count")?;
                let mut batch = Vec::with_capacity(count.min(65_536) as usize);
                for _ in 0..count {
                    batch.push(decode_query(&mut r)?);
                }
                Frame::Request(Request { id, batch })
            }
            2 => {
                let id = r.u64("response id")?;
                let server_epoch = r.u64("server epoch")?;
                let count = r.u32("result count")?;
                let mut results = Vec::with_capacity(count.min(65_536) as usize);
                for _ in 0..count {
                    results.push(decode_result(&mut r)?);
                }
                Frame::Response(Response {
                    id,
                    server_epoch,
                    results,
                })
            }
            3 => Frame::Admin(decode_admin(&mut r)?),
            4 => Frame::AdminReply(decode_admin_reply(&mut r)?),
            kind => return Err(ProtoError::UnknownKind { kind }),
        };
        if r.at != r.buf.len() {
            return Err(ProtoError::TrailingBytes {
                extra: r.buf.len() - r.at,
            });
        }
        Ok(frame)
    }
}

/// Validates a frame header and returns the payload length it claims —
/// the streaming entry point: read [`FRAME_HEADER_LEN`] bytes, call
/// this, read exactly that many payload bytes, then [`Frame::decode`]
/// the concatenation.
///
/// # Errors
///
/// [`ProtoError::BadMagic`], [`ProtoError::UnsupportedVersion`],
/// [`ProtoError::UnknownKind`], or [`ProtoError::Oversized`] when the
/// claimed length exceeds [`MAX_FRAME_PAYLOAD`] — the guard that keeps
/// a hostile header from provoking a half-gigabyte allocation.
pub fn header_payload_len(header: &[u8; FRAME_HEADER_LEN]) -> Result<usize, ProtoError> {
    if header[..4] != PROTO_MAGIC {
        return Err(ProtoError::BadMagic);
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != PROTO_VERSION {
        return Err(ProtoError::UnsupportedVersion { found: version });
    }
    if !(1..=4).contains(&header[6]) {
        return Err(ProtoError::UnknownKind { kind: header[6] });
    }
    let len = u32::from_le_bytes([header[7], header[8], header[9], header[10]]) as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(ProtoError::Oversized { bytes: len as u64 });
    }
    Ok(len)
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize, context: &'static str) -> Result<&[u8], ProtoError> {
        if self.buf.len() - self.at < n {
            return Err(ProtoError::Truncated { context });
        }
        let out = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(out)
    }

    fn u8(&mut self, context: &'static str) -> Result<u8, ProtoError> {
        Ok(self.take(1, context)?[0])
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(
            self.take(4, context)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(
            self.take(8, context)?.try_into().expect("8 bytes"),
        ))
    }

    fn string(&mut self, context: &'static str) -> Result<String, ProtoError> {
        let len = self.u32(context)? as usize;
        let bytes = self.take(len, context)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::Malformed { context })
    }

    fn bytes(&mut self, context: &'static str) -> Result<Vec<u8>, ProtoError> {
        let len = self.u32(context)? as usize;
        Ok(self.take(len, context)?.to_vec())
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_string(out: &mut Vec<u8>, s: &str) -> Result<(), ProtoError> {
    put_bytes(out, s.as_bytes())
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) -> Result<(), ProtoError> {
    let len = u32::try_from(bytes.len()).map_err(|_| ProtoError::Oversized {
        bytes: bytes.len() as u64,
    })?;
    put_u32(out, len);
    out.extend_from_slice(bytes);
    Ok(())
}

fn encode_query(out: &mut Vec<u8>, q: &Query) {
    match *q {
        Query::Max { u, v } => {
            out.push(1);
            put_u32(out, u.0);
            put_u32(out, v.0);
        }
        Query::Flow { u, v } => {
            out.push(2);
            put_u32(out, u.0);
            put_u32(out, v.0);
        }
        Query::Dist { u, v } => {
            out.push(3);
            put_u32(out, u.0);
            put_u32(out, v.0);
        }
        Query::VerifyEdge { u, v, w } => {
            out.push(4);
            put_u32(out, u.0);
            put_u32(out, v.0);
            put_u64(out, w.0);
        }
    }
}

fn decode_query(r: &mut Reader<'_>) -> Result<Query, ProtoError> {
    let tag = r.u8("query tag")?;
    let u = NodeId(r.u32("query endpoint u")?);
    let v = NodeId(r.u32("query endpoint v")?);
    Ok(match tag {
        1 => Query::Max { u, v },
        2 => Query::Flow { u, v },
        3 => Query::Dist { u, v },
        4 => Query::VerifyEdge {
            u,
            v,
            w: Weight(r.u64("verify weight")?),
        },
        _ => {
            return Err(ProtoError::Malformed {
                context: "query tag",
            })
        }
    })
}

fn encode_answer(out: &mut Vec<u8>, a: &Answer) {
    match *a {
        Answer::Max(w) => {
            out.push(1);
            put_u64(out, w.0);
        }
        Answer::Flow(w) => {
            out.push(2);
            put_u64(out, w.0);
        }
        Answer::Dist(d) => {
            out.push(3);
            put_u64(out, d);
        }
        Answer::VerifyEdge {
            accept,
            max_on_path,
        } => {
            out.push(4);
            out.push(u8::from(accept));
            put_u64(out, max_on_path.0);
        }
    }
}

fn decode_answer(r: &mut Reader<'_>) -> Result<Answer, ProtoError> {
    Ok(match r.u8("answer tag")? {
        1 => Answer::Max(Weight(r.u64("max weight")?)),
        2 => Answer::Flow(Weight(r.u64("flow weight")?)),
        3 => Answer::Dist(r.u64("distance")?),
        4 => {
            let accept = match r.u8("verify verdict")? {
                0 => false,
                1 => true,
                _ => {
                    return Err(ProtoError::Malformed {
                        context: "verify verdict",
                    })
                }
            };
            Answer::VerifyEdge {
                accept,
                max_on_path: Weight(r.u64("verify path max")?),
            }
        }
        _ => {
            return Err(ProtoError::Malformed {
                context: "answer tag",
            })
        }
    })
}

fn encode_result(out: &mut Vec<u8>, r: &Result<Answer, ErrorCode>) {
    match r {
        Ok(a) => {
            out.push(0);
            encode_answer(out, a);
        }
        Err(e) => match *e {
            ErrorCode::UnknownNode { node, nodes } => {
                out.push(1);
                put_u32(out, node);
                put_u32(out, nodes);
            }
            ErrorCode::CorruptLabel { section, node } => {
                out.push(2);
                out.push(section.code());
                put_u32(out, node);
            }
            ErrorCode::LabelMismatch { u, v } => {
                out.push(3);
                put_u32(out, u);
                put_u32(out, v);
            }
            ErrorCode::MissingSection { section } => {
                out.push(4);
                out.push(section.code());
            }
            ErrorCode::ShardPoisoned { shard } => {
                out.push(5);
                put_u32(out, shard);
            }
            ErrorCode::Overloaded { pending, limit } => {
                out.push(6);
                put_u32(out, pending);
                put_u32(out, limit);
            }
            ErrorCode::Internal => out.push(7),
        },
    }
}

fn decode_result(r: &mut Reader<'_>) -> Result<Result<Answer, ErrorCode>, ProtoError> {
    let section = |r: &mut Reader<'_>| -> Result<SectionKind, ProtoError> {
        SectionKind::from_code(r.u8("section code")?).ok_or(ProtoError::Malformed {
            context: "section code",
        })
    };
    Ok(match r.u8("result status")? {
        0 => Ok(decode_answer(r)?),
        1 => Err(ErrorCode::UnknownNode {
            node: r.u32("unknown node")?,
            nodes: r.u32("node count")?,
        }),
        2 => Err(ErrorCode::CorruptLabel {
            section: section(r)?,
            node: r.u32("corrupt node")?,
        }),
        3 => Err(ErrorCode::LabelMismatch {
            u: r.u32("mismatch u")?,
            v: r.u32("mismatch v")?,
        }),
        4 => Err(ErrorCode::MissingSection {
            section: section(r)?,
        }),
        5 => Err(ErrorCode::ShardPoisoned {
            shard: r.u32("poisoned shard")?,
        }),
        6 => Err(ErrorCode::Overloaded {
            pending: r.u32("pending count")?,
            limit: r.u32("queue limit")?,
        }),
        7 => Err(ErrorCode::Internal),
        _ => {
            return Err(ProtoError::Malformed {
                context: "result status",
            })
        }
    })
}

fn encode_admin(out: &mut Vec<u8>, req: &AdminRequest) -> Result<(), ProtoError> {
    match req {
        AdminRequest::Stats => out.push(1),
        AdminRequest::SwapSnapshot { path } => {
            out.push(2);
            put_string(out, path)?;
        }
        AdminRequest::Shutdown => out.push(3),
        AdminRequest::ApplyDelta { bytes } => {
            out.push(4);
            put_bytes(out, bytes)?;
        }
    }
    Ok(())
}

fn decode_admin(r: &mut Reader<'_>) -> Result<AdminRequest, ProtoError> {
    Ok(match r.u8("admin tag")? {
        1 => AdminRequest::Stats,
        2 => AdminRequest::SwapSnapshot {
            path: r.string("swap path")?,
        },
        3 => AdminRequest::Shutdown,
        4 => AdminRequest::ApplyDelta {
            bytes: r.bytes("delta record")?,
        },
        _ => {
            return Err(ProtoError::Malformed {
                context: "admin tag",
            })
        }
    })
}

fn encode_admin_reply(out: &mut Vec<u8>, reply: &AdminReply) -> Result<(), ProtoError> {
    match reply {
        AdminReply::Ok { epoch } => {
            out.push(1);
            put_u64(out, *epoch);
        }
        AdminReply::Stats { json } => {
            out.push(2);
            put_string(out, json)?;
        }
        AdminReply::Err { message } => {
            out.push(3);
            put_string(out, message)?;
        }
    }
    Ok(())
}

fn decode_admin_reply(r: &mut Reader<'_>) -> Result<AdminReply, ProtoError> {
    Ok(match r.u8("admin reply tag")? {
        1 => AdminReply::Ok {
            epoch: r.u64("epoch")?,
        },
        2 => AdminReply::Stats {
            json: r.string("stats json")?,
        },
        3 => AdminReply::Err {
            message: r.string("error message")?,
        },
        _ => {
            return Err(ProtoError::Malformed {
                context: "admin reply tag",
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_smoke() {
        let frames = [
            Frame::Request(Request {
                id: 7,
                batch: vec![
                    Query::Max {
                        u: NodeId(1),
                        v: NodeId(2),
                    },
                    Query::VerifyEdge {
                        u: NodeId(3),
                        v: NodeId(4),
                        w: Weight(900),
                    },
                ],
            }),
            Frame::Response(Response {
                id: 7,
                server_epoch: 3,
                results: vec![
                    Ok(Answer::Max(Weight(41))),
                    Err(ErrorCode::Overloaded {
                        pending: 64,
                        limit: 64,
                    }),
                ],
            }),
            Frame::Admin(AdminRequest::SwapSnapshot {
                path: "/tmp/x.snap".to_owned(),
            }),
            Frame::Admin(AdminRequest::ApplyDelta {
                bytes: vec![0xDE, 0xAD, 0xBE, 0xEF],
            }),
            Frame::AdminReply(AdminReply::Stats {
                json: "{\"ok\":true}".to_owned(),
            }),
        ];
        for f in frames {
            let bytes = f.encode().expect("frames fit");
            assert_eq!(Frame::decode(&bytes).expect("own frames decode"), f);
        }
    }

    #[test]
    fn header_rejections_are_typed() {
        let good = Frame::Admin(AdminRequest::Stats).encode().unwrap();
        let header = |bytes: &[u8]| -> [u8; FRAME_HEADER_LEN] {
            bytes[..FRAME_HEADER_LEN].try_into().unwrap()
        };
        assert!(header_payload_len(&header(&good)).is_ok());

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xff;
        assert_eq!(
            header_payload_len(&header(&bad_magic)),
            Err(ProtoError::BadMagic)
        );

        let mut future = good.clone();
        future[4] = 2;
        assert_eq!(
            header_payload_len(&header(&future)),
            Err(ProtoError::UnsupportedVersion { found: 2 })
        );

        let mut unknown = good.clone();
        unknown[6] = 9;
        assert_eq!(
            header_payload_len(&header(&unknown)),
            Err(ProtoError::UnknownKind { kind: 9 })
        );

        let mut huge = good.clone();
        huge[7..11].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            header_payload_len(&header(&huge)),
            Err(ProtoError::Oversized {
                bytes: u64::from(u32::MAX)
            })
        );
    }

    #[test]
    fn error_code_mapping_covers_the_queryable_subset() {
        let cases: [(StoreError, ErrorCode); 5] = [
            (
                StoreError::UnknownNode { node: 9, nodes: 4 },
                ErrorCode::UnknownNode { node: 9, nodes: 4 },
            ),
            (
                StoreError::CorruptLabel {
                    section: "flow",
                    node: 2,
                },
                ErrorCode::CorruptLabel {
                    section: SectionKind::Flow,
                    node: 2,
                },
            ),
            (
                StoreError::LabelMismatch { u: 1, v: 2 },
                ErrorCode::LabelMismatch { u: 1, v: 2 },
            ),
            (
                StoreError::MissingSection { section: "dist" },
                ErrorCode::MissingSection {
                    section: SectionKind::Dist,
                },
            ),
            (
                StoreError::ShardPoisoned { shard: 3 },
                ErrorCode::ShardPoisoned { shard: 3 },
            ),
        ];
        for (store, wire) in cases {
            assert_eq!(ErrorCode::from(&store), wire);
        }
        // Everything without serving-time meaning collapses to Internal.
        assert_eq!(ErrorCode::from(&StoreError::BadMagic), ErrorCode::Internal);
        assert_eq!(
            ErrorCode::from(&StoreError::Io(std::io::Error::other("x"))),
            ErrorCode::Internal
        );
    }
}
