//! The sharded, cache-fronted query engine over a loaded snapshot.
//!
//! One [`QueryEngine`] owns a [`Snapshot`] and answers `MAX`, `FLOW`,
//! `DIST`, and `VerifyEdge` queries purely from the stored label stack —
//! the point of the paper's implicit schemes is that two labels suffice,
//! so the engine never materialises the tree. Node-id space is
//! partitioned across shards (`u mod shards`); each shard fronts the
//! bit-level decoder with per-kind [`LruCache`]s of decoded labels, so a
//! hot node costs a hash lookup instead of an Elias-gamma walk.
//!
//! Batches fan out with scoped threads, one per non-empty shard, and
//! results come back in input order. All failures are typed
//! [`StoreError`]s: unknown node ids, undecodable records, and foreign
//! label pairs are answers, not panics. Even a worker panic is
//! contained — its batch's queries report [`StoreError::ShardPoisoned`]
//! and the shard heals (caches reset) before the next lock, so one bad
//! batch never takes the engine down.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use mstv_core::ServeMetrics;
use mstv_graph::{NodeId, Weight};
use mstv_labels::{
    try_decode_dist, try_decode_flow, try_decode_max, DistLabel, FlowLabel, MaxLabel, FLOW_INFINITY,
};

use crate::{LruCache, Snapshot, StoreError};

/// Engine sizing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Number of shards (threads) a batch fans out over; clamped to ≥ 1.
    pub shards: usize,
    /// Decoded-label LRU capacity per shard *per label kind*; 0 disables
    /// caching, giving a decode-every-time baseline.
    pub cache_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            shards: 4,
            cache_capacity: 1024,
        }
    }
}

/// A single query against the label store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Query {
    /// `MAX(u, v)`: the heaviest edge on the tree path.
    Max {
        /// First endpoint.
        u: NodeId,
        /// Second endpoint.
        v: NodeId,
    },
    /// `FLOW(u, v)`: the lightest edge on the tree path.
    Flow {
        /// First endpoint.
        u: NodeId,
        /// Second endpoint.
        v: NodeId,
    },
    /// `DIST(u, v)`: the weighted path length.
    Dist {
        /// First endpoint.
        u: NodeId,
        /// Second endpoint.
        v: NodeId,
    },
    /// The MST cycle check for a non-tree edge `(u, v)` of weight `w`:
    /// accepted iff `w ≥ MAX(u, v)`.
    VerifyEdge {
        /// First endpoint.
        u: NodeId,
        /// Second endpoint.
        v: NodeId,
        /// The non-tree edge's weight.
        w: Weight,
    },
}

impl Query {
    /// The endpoint that picks the serving shard.
    fn primary(&self) -> NodeId {
        match *self {
            Query::Max { u, .. }
            | Query::Flow { u, .. }
            | Query::Dist { u, .. }
            | Query::VerifyEdge { u, .. } => u,
        }
    }
}

/// A successful query result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Answer {
    /// The path maximum (`Weight::ZERO` for `u == v`).
    Max(Weight),
    /// The path minimum ([`FLOW_INFINITY`] for `u == v`).
    Flow(Weight),
    /// The weighted distance.
    Dist(u64),
    /// The cycle-check verdict.
    VerifyEdge {
        /// Whether the edge passed (`w ≥ MAX(u, v)`).
        accept: bool,
        /// The path maximum the weight was compared against.
        max_on_path: Weight,
    },
}

struct Shard {
    max: LruCache<Arc<MaxLabel>>,
    flow: LruCache<Arc<FlowLabel>>,
    dist: LruCache<Arc<DistLabel>>,
    hits: u64,
    misses: u64,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            max: LruCache::new(capacity),
            flow: LruCache::new(capacity),
            dist: LruCache::new(capacity),
            hits: 0,
            misses: 0,
        }
    }
}

/// A multi-threaded query service over one loaded [`Snapshot`].
pub struct QueryEngine {
    snap: Snapshot,
    shards: Vec<Mutex<Shard>>,
    agg: Mutex<ServeMetrics>,
}

impl QueryEngine {
    /// Wraps a loaded snapshot in a serving engine.
    pub fn new(snap: Snapshot, config: EngineConfig) -> QueryEngine {
        let shards = config.shards.max(1);
        QueryEngine {
            snap,
            shards: (0..shards)
                .map(|_| Mutex::new(Shard::new(config.cache_capacity)))
                .collect(),
            agg: Mutex::new(ServeMetrics::new()),
        }
    }

    /// The snapshot being served.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snap
    }

    /// Number of shards the engine fans out over.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Locks shard `si`, recovering from a poisoned mutex.
    ///
    /// A worker that panics mid-batch poisons its shard's lock. The
    /// shard's decoded-label caches — the only state a panicking worker
    /// could have left half-updated — are discarded, and serving
    /// continues; the hit/miss counters (plain integers, valid under any
    /// interleaving) survive. The alternative, propagating the panic on
    /// every later lock, would turn one bad batch into a permanently
    /// dead shard.
    fn lock_shard(&self, si: usize) -> std::sync::MutexGuard<'_, Shard> {
        match self.shards[si].lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut shard = poisoned.into_inner();
                shard.max.clear();
                shard.flow.clear();
                shard.dist.clear();
                self.shards[si].clear_poison();
                shard
            }
        }
    }

    /// Locks the aggregate metrics, recovering from poisoning: the
    /// counters are plain integers, meaningful under any interleaving.
    fn lock_metrics(&self) -> std::sync::MutexGuard<'_, ServeMetrics> {
        self.agg
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Answers one query.
    ///
    /// # Errors
    ///
    /// See [`QueryEngine::run_batch`].
    pub fn query(&self, q: Query) -> Result<Answer, StoreError> {
        self.run_batch(std::slice::from_ref(&q))
            .pop()
            .expect("one query in, one answer out")
    }

    /// Answers a batch, fanning out across shards; results are returned
    /// in input order, one per query.
    ///
    /// # Errors
    ///
    /// Per-query (the batch itself never fails):
    /// [`StoreError::UnknownNode`] for an endpoint the snapshot carries
    /// no label for, [`StoreError::CorruptLabel`] when a stored record
    /// does not decode, [`StoreError::LabelMismatch`] when two labels
    /// come from different schemes, [`StoreError::MissingSection`]
    /// for `Dist` queries against a snapshot without a dist section,
    /// and [`StoreError::ShardPoisoned`] for every query a panicking
    /// shard worker was serving.
    pub fn run_batch(&self, queries: &[Query]) -> Vec<Result<Answer, StoreError>> {
        let start = Instant::now();
        let ns = self.shards.len();
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); ns];
        for (i, q) in queries.iter().enumerate() {
            buckets[q.primary().0 as usize % ns].push(i);
        }
        let mut results: Vec<Option<Result<Answer, StoreError>>> =
            (0..queries.len()).map(|_| None).collect();
        if ns == 1 {
            let mut shard = self.lock_shard(0);
            for &i in &buckets[0] {
                results[i] = Some(self.answer(&mut shard, &queries[i]));
            }
        } else {
            type ShardOutcome<'a> = (
                usize,
                &'a [usize],
                std::thread::Result<Vec<(usize, Result<Answer, StoreError>)>>,
            );
            let per_shard: Vec<ShardOutcome<'_>> = std::thread::scope(|scope| {
                let workers: Vec<_> = buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, bucket)| !bucket.is_empty())
                    .map(|(si, bucket)| {
                        let handle = scope.spawn(move || {
                            let mut shard = self.lock_shard(si);
                            bucket
                                .iter()
                                .map(|&i| (i, self.answer(&mut shard, &queries[i])))
                                .collect()
                        });
                        (si, bucket.as_slice(), handle)
                    })
                    .collect();
                // Joining every handle here keeps a worker panic from
                // re-raising when the scope closes.
                workers
                    .into_iter()
                    .map(|(si, bucket, w)| (si, bucket, w.join()))
                    .collect()
            });
            for (si, bucket, outcome) in per_shard {
                match outcome {
                    Ok(pairs) => {
                        for (i, r) in pairs {
                            results[i] = Some(r);
                        }
                    }
                    // The worker panicked: its queries get a typed error
                    // and the shard lock heals on the next lock_shard.
                    Err(_) => {
                        for &i in bucket {
                            results[i] = Some(Err(StoreError::ShardPoisoned { shard: si }));
                        }
                    }
                }
            }
        }
        let errors = results.iter().filter(|r| matches!(r, Some(Err(_)))).count() as u64;
        let mut agg = self.lock_metrics();
        agg.queries += queries.len() as u64;
        agg.batches += 1;
        agg.errors += errors;
        agg.add_elapsed(start.elapsed());
        drop(agg);
        results
            .into_iter()
            .map(|r| r.expect("every query was routed to a shard"))
            .collect()
    }

    /// A point-in-time snapshot of the serving counters, aggregated
    /// across shards.
    pub fn metrics(&self) -> ServeMetrics {
        let mut m = *self.lock_metrics();
        m.shards = self.shards.len() as u64;
        for si in 0..self.shards.len() {
            let shard = self.lock_shard(si);
            m.cache_hits += shard.hits;
            m.cache_misses += shard.misses;
        }
        m
    }

    fn check_node(&self, v: NodeId) -> Result<(), StoreError> {
        if v.0 >= self.snap.num_nodes() {
            return Err(StoreError::UnknownNode {
                node: v.0,
                nodes: self.snap.num_nodes(),
            });
        }
        Ok(())
    }

    fn answer(&self, shard: &mut Shard, q: &Query) -> Result<Answer, StoreError> {
        let mismatch = |u: NodeId, v: NodeId| StoreError::LabelMismatch { u: u.0, v: v.0 };
        match *q {
            Query::Max { u, v } => Ok(Answer::Max(self.max_of(shard, u, v)?)),
            Query::Flow { u, v } => {
                if u == v {
                    self.check_node(u)?;
                    return Ok(Answer::Flow(FLOW_INFINITY));
                }
                let a = self.flow_label(shard, u)?;
                let b = self.flow_label(shard, v)?;
                let w = try_decode_flow(&a, &b).ok_or_else(|| mismatch(u, v))?;
                Ok(Answer::Flow(w))
            }
            Query::Dist { u, v } => {
                if self.snap.dist().is_none() {
                    return Err(StoreError::MissingSection { section: "dist" });
                }
                if u == v {
                    self.check_node(u)?;
                    return Ok(Answer::Dist(0));
                }
                let a = self.dist_label(shard, u)?;
                let b = self.dist_label(shard, v)?;
                let d = try_decode_dist(&a, &b).ok_or_else(|| mismatch(u, v))?;
                Ok(Answer::Dist(d))
            }
            Query::VerifyEdge { u, v, w } => {
                let max_on_path = self.max_of(shard, u, v)?;
                Ok(Answer::VerifyEdge {
                    accept: w >= max_on_path,
                    max_on_path,
                })
            }
        }
    }

    fn max_of(&self, shard: &mut Shard, u: NodeId, v: NodeId) -> Result<Weight, StoreError> {
        if u == v {
            self.check_node(u)?;
            return Ok(Weight::ZERO);
        }
        let a = self.max_label(shard, u)?;
        let b = self.max_label(shard, v)?;
        try_decode_max(&a, &b).ok_or(StoreError::LabelMismatch { u: u.0, v: v.0 })
    }

    fn max_label(&self, shard: &mut Shard, v: NodeId) -> Result<Arc<MaxLabel>, StoreError> {
        self.check_node(v)?;
        if let Some(label) = shard.max.get(v.0) {
            shard.hits += 1;
            return Ok(label);
        }
        shard.misses += 1;
        let label = Arc::new(
            self.snap
                .codec()
                .try_decode_max_label(&self.snap.max_labels()[v.0 as usize])
                .ok_or(StoreError::CorruptLabel {
                    section: "max",
                    node: v.0,
                })?,
        );
        shard.max.insert(v.0, Arc::clone(&label));
        Ok(label)
    }

    fn flow_label(&self, shard: &mut Shard, v: NodeId) -> Result<Arc<FlowLabel>, StoreError> {
        self.check_node(v)?;
        if let Some(label) = shard.flow.get(v.0) {
            shard.hits += 1;
            return Ok(label);
        }
        shard.misses += 1;
        let label = Arc::new(
            self.snap
                .codec()
                .try_decode_flow_label(&self.snap.flow_labels()[v.0 as usize])
                .ok_or(StoreError::CorruptLabel {
                    section: "flow",
                    node: v.0,
                })?,
        );
        shard.flow.insert(v.0, Arc::clone(&label));
        Ok(label)
    }

    fn dist_label(&self, shard: &mut Shard, v: NodeId) -> Result<Arc<DistLabel>, StoreError> {
        self.check_node(v)?;
        if let Some(label) = shard.dist.get(v.0) {
            shard.hits += 1;
            return Ok(label);
        }
        shard.misses += 1;
        let dist = self
            .snap
            .dist()
            .ok_or(StoreError::MissingSection { section: "dist" })?;
        let label = Arc::new(
            self.snap
                .codec()
                .try_decode_dist_label(&dist.labels[v.0 as usize], dist.delta_bits)
                .ok_or(StoreError::CorruptLabel {
                    section: "dist",
                    node: v.0,
                })?,
        );
        shard.dist.insert(v.0, Arc::clone(&label));
        Ok(label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstv_labels::SepFieldCodec;
    use mstv_trees::{PathMaxIndex, RootedTree};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tree_of(n: usize, max_w: u64, seed: u64) -> RootedTree {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = mstv_graph::gen::random_tree(
            n,
            mstv_graph::gen::WeightDist::Uniform { max: max_w },
            &mut rng,
        );
        RootedTree::from_graph(&g, NodeId(0)).unwrap()
    }

    fn engine_of(tree: &RootedTree, shards: usize, cache: usize) -> QueryEngine {
        let snap = Snapshot::build(tree, SepFieldCodec::EliasGamma);
        QueryEngine::new(
            snap,
            EngineConfig {
                shards,
                cache_capacity: cache,
            },
        )
    }

    #[test]
    fn answers_match_tree_oracle_across_shard_counts() {
        let t = tree_of(150, 700, 11);
        let idx = PathMaxIndex::new(&t);
        let mut wdepth = vec![0u64; t.num_nodes()];
        for &v in t.order() {
            if let Some(p) = t.parent(v) {
                wdepth[v.index()] = wdepth[p.index()] + t.parent_weight(v).0;
            }
        }
        let mut queries = Vec::new();
        for i in (0..150u32).step_by(4) {
            for j in (1..150u32).step_by(7) {
                let (u, v) = (NodeId(i), NodeId(j));
                queries.push(Query::Max { u, v });
                queries.push(Query::Flow { u, v });
                queries.push(Query::Dist { u, v });
                queries.push(Query::VerifyEdge {
                    u,
                    v,
                    w: Weight(u64::from(i) * 13 % 700),
                });
            }
        }
        for shards in [1usize, 2, 4, 8] {
            let engine = engine_of(&t, shards, 64);
            let answers = engine.run_batch(&queries);
            assert_eq!(answers.len(), queries.len());
            for (q, a) in queries.iter().zip(&answers) {
                let a = a.as_ref().expect("in-range queries succeed");
                match (*q, *a) {
                    (Query::Max { u, v }, Answer::Max(w)) => {
                        let want = if u == v {
                            Weight::ZERO
                        } else {
                            idx.max_on_path(u, v)
                        };
                        assert_eq!(w, want, "MAX({u}, {v}) shards={shards}");
                    }
                    (Query::Flow { u, v }, Answer::Flow(w)) => {
                        let want = if u == v {
                            FLOW_INFINITY
                        } else {
                            idx.min_on_path(u, v)
                        };
                        assert_eq!(w, want, "FLOW({u}, {v}) shards={shards}");
                    }
                    (Query::Dist { u, v }, Answer::Dist(d)) => {
                        let x = idx.lca(u, v);
                        let want = wdepth[u.index()] + wdepth[v.index()] - 2 * wdepth[x.index()];
                        assert_eq!(d, want, "DIST({u}, {v}) shards={shards}");
                    }
                    (
                        Query::VerifyEdge { u, v, w },
                        Answer::VerifyEdge {
                            accept,
                            max_on_path,
                        },
                    ) => {
                        let want = if u == v {
                            Weight::ZERO
                        } else {
                            idx.max_on_path(u, v)
                        };
                        assert_eq!(max_on_path, want);
                        assert_eq!(accept, w >= want, "verify({u}, {v}, {w})");
                    }
                    other => panic!("answer kind mismatch: {other:?}"),
                }
            }
            let m = engine.metrics();
            assert_eq!(m.queries, queries.len() as u64);
            assert_eq!(m.batches, 1);
            assert_eq!(m.shards, shards as u64);
            assert_eq!(m.errors, 0);
            assert!(m.cache_misses > 0);
            assert!(
                m.cache_hits > 0,
                "repeated endpoints must hit the cache (shards={shards})"
            );
        }
    }

    #[test]
    fn unknown_nodes_are_typed_errors_not_panics() {
        let t = tree_of(10, 50, 12);
        let engine = engine_of(&t, 2, 8);
        for q in [
            Query::Max {
                u: NodeId(10),
                v: NodeId(0),
            },
            Query::Flow {
                u: NodeId(0),
                v: NodeId(u32::MAX),
            },
            Query::Dist {
                u: NodeId(99),
                v: NodeId(99),
            },
            Query::VerifyEdge {
                u: NodeId(3),
                v: NodeId(11),
                w: Weight(1),
            },
        ] {
            assert!(
                matches!(engine.query(q), Err(StoreError::UnknownNode { .. })),
                "{q:?} should name the unknown node"
            );
        }
        assert_eq!(engine.metrics().errors, 4);
    }

    #[test]
    fn dist_without_section_is_missing_section() {
        let t = tree_of(20, 50, 13);
        let mut snap = Snapshot::build(&t, SepFieldCodec::EliasGamma);
        snap.strip_dist();
        let engine = QueryEngine::new(snap, EngineConfig::default());
        assert!(matches!(
            engine.query(Query::Dist {
                u: NodeId(1),
                v: NodeId(2)
            }),
            Err(StoreError::MissingSection { section: "dist" })
        ));
        // The mandatory sections still serve.
        assert!(engine
            .query(Query::Max {
                u: NodeId(1),
                v: NodeId(2)
            })
            .is_ok());
    }

    #[test]
    fn corrupt_record_is_reported_per_query() {
        let t = tree_of(30, 90, 14);
        let mut snap = Snapshot::build(&t, SepFieldCodec::EliasGamma);
        snap.corrupt_max_label_for_test(NodeId(7));
        let engine = QueryEngine::new(snap, EngineConfig::default());
        assert!(matches!(
            engine.query(Query::Max {
                u: NodeId(7),
                v: NodeId(2)
            }),
            Err(StoreError::CorruptLabel {
                section: "max",
                node: 7
            })
        ));
        // Other nodes are unaffected.
        assert!(engine
            .query(Query::Max {
                u: NodeId(3),
                v: NodeId(2)
            })
            .is_ok());
    }

    #[test]
    fn poisoned_shard_recovers_for_subsequent_queries() {
        let t = tree_of(60, 90, 16);
        let engine = engine_of(&t, 3, 16);
        // Warm every shard so the caches hold entries to discard.
        for u in 0..12u32 {
            assert!(engine
                .query(Query::Max {
                    u: NodeId(u),
                    v: NodeId(20)
                })
                .is_ok());
        }
        // Poison shard 0 the way a real worker would: panic while
        // holding its lock.
        let crashed = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = engine.shards[0].lock().unwrap();
                panic!("simulated worker crash while holding the shard lock");
            })
            .join()
        });
        assert!(crashed.is_err());
        assert!(engine.shards[0].is_poisoned());
        // Every shard — including the poisoned one — keeps serving, and
        // metrics() aggregates without panicking.
        for u in 0..12u32 {
            assert!(
                engine
                    .query(Query::Max {
                        u: NodeId(u),
                        v: NodeId(20)
                    })
                    .is_ok(),
                "query via shard {} after poisoning",
                u % 3
            );
        }
        assert!(!engine.shards[0].is_poisoned(), "lock should have healed");
        let m = engine.metrics();
        assert_eq!(m.queries, 24);
        assert_eq!(m.errors, 0);
    }

    #[test]
    fn zero_cache_still_correct() {
        let t = tree_of(40, 200, 15);
        let idx = PathMaxIndex::new(&t);
        let engine = engine_of(&t, 3, 0);
        for (u, v) in [(0u32, 39u32), (5, 5), (17, 23)] {
            let (u, v) = (NodeId(u), NodeId(v));
            let want = if u == v {
                Weight::ZERO
            } else {
                idx.max_on_path(u, v)
            };
            assert_eq!(
                engine.query(Query::Max { u, v }).unwrap(),
                Answer::Max(want)
            );
        }
        let m = engine.metrics();
        assert_eq!(m.cache_hits, 0, "capacity 0 must never hit");
        assert!(m.cache_misses > 0);
    }
}
