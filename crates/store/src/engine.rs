//! The sharded, cache-fronted query engine over a loaded snapshot.
//!
//! One [`QueryEngine`] owns a [`Snapshot`] and answers `MAX`, `FLOW`,
//! `DIST`, and `VerifyEdge` queries purely from the stored label stack —
//! the point of the paper's implicit schemes is that two labels suffice,
//! so the engine never materialises the tree. Node-id space is
//! partitioned across shards (`u mod shards`); each shard fronts the
//! bit-level decoder with per-kind [`LruCache`]s of decoded labels, so a
//! hot node costs a hash lookup instead of an Elias-gamma walk.
//!
//! Batches fan out with scoped threads, one per non-empty shard, and
//! results come back in input order. All failures are typed: unknown
//! node ids, undecodable records, and foreign label pairs are answers,
//! not panics. Even a worker panic is contained — its batch's queries
//! report a poisoned-shard error and the shard heals (caches reset)
//! before the next lock, so one bad batch never takes the engine down.
//!
//! The batch entry point is [`QueryEngine::run_batch_response`], which
//! returns a [`BatchResponse`]: per-query results carrying the wire
//! protocol's [`ErrorCode`]s plus batch-level [`BatchMetrics`] — the
//! same vocabulary the `mstv-serve` network tier sends to clients, so
//! in-process and remote callers see identical failure taxonomies.

use std::fmt;
use std::num::NonZeroUsize;
use std::sync::{Mutex, RwLock};
use std::time::Instant;

use mstv_core::ServeMetrics;
use mstv_graph::{NodeId, Weight};
use mstv_labels::{
    decode_dist_views, decode_flow_views, decode_max_views, BitSlice, DistView, FlowView,
    LabelCodec, MaxView, FLOW_INFINITY,
};

use crate::proto::ErrorCode;
use crate::{DeltaRecord, LruCache, MappedSnapshot, Snapshot, StoreError};

/// Upper bound on the shard count a config may request — far above any
/// sensible fan-out, low enough that a typo (`--shards 1000000`) is a
/// typed error instead of a million mutexes.
pub const MAX_SHARDS: usize = 4096;

/// Engine sizing knobs, validated at construction.
///
/// Build one with [`EngineConfig::builder`]; invalid combinations are
/// typed [`EngineConfigError`]s rather than silently clamped values
/// (mirroring the `NonZeroUsize` discipline of
/// `mstv_trees::ParallelConfig`):
///
/// ```
/// use mstv_store::EngineConfig;
///
/// let cfg = EngineConfig::builder().shards(8).cache_entries(512).build()?;
/// assert_eq!(cfg.shards(), 8);
/// assert_eq!(cfg.cache_entries(), 512);
/// assert!(EngineConfig::builder().shards(0).build().is_err());
/// # Ok::<(), mstv_store::EngineConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    shards: NonZeroUsize,
    cache_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            shards: NonZeroUsize::new(4).expect("4 != 0"),
            cache_capacity: 1024,
        }
    }
}

impl EngineConfig {
    /// Starts building a config from the defaults (4 shards, 1024 cache
    /// entries per shard per label kind).
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder::default()
    }

    /// Number of shards (threads) a batch fans out over.
    pub fn shards(&self) -> usize {
        self.shards.get()
    }

    /// Decoded-label LRU capacity per shard *per label kind*; 0 disables
    /// caching, and queries then skip view materialization entirely and
    /// answer through the codec's fused zero-allocation pairwise
    /// decoders — the fastest cold-cache configuration.
    pub fn cache_entries(&self) -> usize {
        self.cache_capacity
    }
}

/// Builder for [`EngineConfig`]; see [`EngineConfig::builder`].
#[derive(Debug, Clone, Copy)]
pub struct EngineConfigBuilder {
    shards: usize,
    cache_entries: usize,
}

impl Default for EngineConfigBuilder {
    fn default() -> Self {
        let d = EngineConfig::default();
        EngineConfigBuilder {
            shards: d.shards(),
            cache_entries: d.cache_entries(),
        }
    }
}

impl EngineConfigBuilder {
    /// Sets the shard count a batch fans out over.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the decoded-label LRU capacity per shard per label kind
    /// (0 disables caching).
    pub fn cache_entries(mut self, entries: usize) -> Self {
        self.cache_entries = entries;
        self
    }

    /// Validates the settings into an [`EngineConfig`].
    ///
    /// # Errors
    ///
    /// [`EngineConfigError::ZeroShards`] for a zero shard count and
    /// [`EngineConfigError::TooManyShards`] above [`MAX_SHARDS`] — the
    /// old API clamped both silently; misconfiguration is now visible.
    pub fn build(self) -> Result<EngineConfig, EngineConfigError> {
        let shards = NonZeroUsize::new(self.shards).ok_or(EngineConfigError::ZeroShards)?;
        if shards.get() > MAX_SHARDS {
            return Err(EngineConfigError::TooManyShards {
                requested: shards.get(),
                max: MAX_SHARDS,
            });
        }
        Ok(EngineConfig {
            shards,
            cache_capacity: self.cache_entries,
        })
    }
}

/// An invalid [`EngineConfig`] request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineConfigError {
    /// A zero shard count — a batch needs at least one shard to route to.
    ZeroShards,
    /// A shard count above [`MAX_SHARDS`].
    TooManyShards {
        /// The shard count that was asked for.
        requested: usize,
        /// The bound it exceeded.
        max: usize,
    },
}

impl fmt::Display for EngineConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineConfigError::ZeroShards => {
                write!(f, "engine config: shard count must be at least 1")
            }
            EngineConfigError::TooManyShards { requested, max } => {
                write!(
                    f,
                    "engine config: {requested} shards exceeds the maximum of {max}"
                )
            }
        }
    }
}

impl std::error::Error for EngineConfigError {}

/// A single query against the label store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Query {
    /// `MAX(u, v)`: the heaviest edge on the tree path.
    Max {
        /// First endpoint.
        u: NodeId,
        /// Second endpoint.
        v: NodeId,
    },
    /// `FLOW(u, v)`: the lightest edge on the tree path.
    Flow {
        /// First endpoint.
        u: NodeId,
        /// Second endpoint.
        v: NodeId,
    },
    /// `DIST(u, v)`: the weighted path length.
    Dist {
        /// First endpoint.
        u: NodeId,
        /// Second endpoint.
        v: NodeId,
    },
    /// The MST cycle check for a non-tree edge `(u, v)` of weight `w`:
    /// accepted iff `w ≥ MAX(u, v)`.
    VerifyEdge {
        /// First endpoint.
        u: NodeId,
        /// Second endpoint.
        v: NodeId,
        /// The non-tree edge's weight.
        w: Weight,
    },
}

impl Query {
    /// The endpoint that picks the serving shard.
    fn primary(&self) -> NodeId {
        match *self {
            Query::Max { u, .. }
            | Query::Flow { u, .. }
            | Query::Dist { u, .. }
            | Query::VerifyEdge { u, .. } => u,
        }
    }
}

/// A successful query result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Answer {
    /// The path maximum (`Weight::ZERO` for `u == v`).
    Max(Weight),
    /// The path minimum ([`FLOW_INFINITY`] for `u == v`).
    Flow(Weight),
    /// The weighted distance.
    Dist(u64),
    /// The cycle-check verdict.
    VerifyEdge {
        /// Whether the edge passed (`w ≥ MAX(u, v)`).
        accept: bool,
        /// The path maximum the weight was compared against.
        max_on_path: Weight,
    },
}

/// What one batch cost, measured inside
/// [`QueryEngine::run_batch_response`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchMetrics {
    /// Queries in the batch.
    pub queries: u64,
    /// Queries that surfaced an error instead of an answer.
    pub errors: u64,
    /// Wall-clock from batch entry to last answer, in nanoseconds.
    pub elapsed_nanos: u64,
}

/// The result of one batch: per-query statuses in input order, plus
/// what the batch cost.
///
/// The error type is the wire protocol's [`ErrorCode`] — the same codes
/// a network client of `mstv-serve` receives — so migrating a call site
/// between in-process and remote serving changes transport, not error
/// handling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchResponse {
    /// One entry per query, in input order.
    pub results: Vec<Result<Answer, ErrorCode>>,
    /// Batch-level cost counters.
    pub metrics: BatchMetrics,
    /// The engine's delta sequence number when this batch ran — how many
    /// [`DeltaRecord`]s had been applied to the serving snapshot. All
    /// answers of one batch come from a single delta generation, never a
    /// mix: the batch holds the state lock for its whole fan-out.
    pub delta_seq: u64,
}

impl BatchResponse {
    /// Number of queries that errored.
    pub fn error_count(&self) -> usize {
        self.results.iter().filter(|r| r.is_err()).count()
    }
}

/// The snapshot an engine serves from: either a fully materialized
/// [`Snapshot`] (mutable via the delta journal) or a read-only
/// [`MappedSnapshot`] whose encoded labels stay in the file's memory
/// map until a query touches them.
///
/// Every serving path reads labels through the borrowed-slice accessors
/// here, so the engine's decode-and-cache machinery is identical for
/// both backings; the only behavioral difference is that
/// [`QueryEngine::apply_delta`] refuses mapped stores with
/// [`StoreError::ReadOnlySnapshot`].
pub enum SnapshotStore {
    /// An owned, in-memory snapshot — the journal-mutable backing.
    Owned(Snapshot),
    /// A read-only memory-mapped snapshot — the zero-copy backing.
    Mapped(MappedSnapshot),
}

impl SnapshotStore {
    /// Number of labelled nodes.
    pub fn num_nodes(&self) -> u32 {
        match self {
            SnapshotStore::Owned(s) => s.num_nodes(),
            SnapshotStore::Mapped(s) => s.num_nodes(),
        }
    }

    /// The codec all stored `MAX`/`FLOW` labels were encoded under.
    pub fn codec(&self) -> LabelCodec {
        match self {
            SnapshotStore::Owned(s) => s.codec(),
            SnapshotStore::Mapped(s) => s.codec(),
        }
    }

    /// The largest tree-edge weight (`W`), as recorded in the header.
    pub fn max_weight(&self) -> Weight {
        match self {
            SnapshotStore::Owned(s) => s.max_weight(),
            SnapshotStore::Mapped(s) => s.max_weight(),
        }
    }

    /// Whether the snapshot carries a dist section.
    pub fn has_dist(&self) -> bool {
        match self {
            SnapshotStore::Owned(s) => s.dist().is_some(),
            SnapshotStore::Mapped(s) => s.dist_delta_bits().is_some(),
        }
    }

    fn max_slice(&self, v: usize) -> BitSlice<'_> {
        match self {
            SnapshotStore::Owned(s) => s.max_labels()[v].as_slice(),
            SnapshotStore::Mapped(s) => s.max_slice(v),
        }
    }

    fn flow_slice(&self, v: usize) -> BitSlice<'_> {
        match self {
            SnapshotStore::Owned(s) => s.flow_labels()[v].as_slice(),
            SnapshotStore::Mapped(s) => s.flow_slice(v),
        }
    }

    /// The encoded dist label of `v` and the section's `δ` width, or
    /// `None` without a dist section.
    fn dist_slice(&self, v: usize) -> Option<(BitSlice<'_>, u32)> {
        match self {
            SnapshotStore::Owned(s) => {
                let d = s.dist()?;
                Some((d.labels[v].as_slice(), d.delta_bits))
            }
            SnapshotStore::Mapped(s) => {
                let bits = s.dist_delta_bits()?;
                Some((s.dist_slice(v)?, bits))
            }
        }
    }
}

impl From<Snapshot> for SnapshotStore {
    fn from(snap: Snapshot) -> Self {
        SnapshotStore::Owned(snap)
    }
}

impl From<MappedSnapshot> for SnapshotStore {
    fn from(snap: MappedSnapshot) -> Self {
        SnapshotStore::Mapped(snap)
    }
}

struct Shard {
    max: LruCache<MaxView>,
    flow: LruCache<FlowView>,
    dist: LruCache<DistView>,
    /// With capacity 0 the caches can never hit, so queries bypass view
    /// materialization and answer through the fused pairwise decoders.
    cached: bool,
    hits: u64,
    misses: u64,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            max: LruCache::new(capacity),
            flow: LruCache::new(capacity),
            dist: LruCache::new(capacity),
            cached: capacity > 0,
            hits: 0,
            misses: 0,
        }
    }
}

/// The mutable serving state: the snapshot store plus how many deltas
/// have been folded into it. One `RwLock` guards both so a batch can
/// never observe a snapshot from one delta generation tagged with
/// another's sequence number.
struct EngineState {
    store: SnapshotStore,
    delta_seq: u64,
}

/// A multi-threaded query service over one loaded [`Snapshot`].
///
/// The snapshot is no longer immutable for the engine's lifetime:
/// [`QueryEngine::apply_delta`] folds a journal [`DeltaRecord`] into the
/// serving state in place, invalidating exactly the dirty nodes from
/// every shard's decoded-label caches — the live-mutation path that
/// makes a hot swap unnecessary for small changes.
pub struct QueryEngine {
    state: RwLock<EngineState>,
    shards: Vec<Mutex<Shard>>,
    agg: Mutex<ServeMetrics>,
}

impl QueryEngine {
    /// Wraps a loaded snapshot in a serving engine (delta sequence 0).
    pub fn new(snap: Snapshot, config: EngineConfig) -> QueryEngine {
        Self::from_store(SnapshotStore::Owned(snap), config)
    }

    /// Wraps a memory-mapped snapshot in a serving engine. Labels decode
    /// lazily out of the map on first touch; [`QueryEngine::apply_delta`]
    /// reports [`StoreError::ReadOnlySnapshot`].
    pub fn new_mapped(snap: MappedSnapshot, config: EngineConfig) -> QueryEngine {
        Self::from_store(SnapshotStore::Mapped(snap), config)
    }

    /// Wraps either snapshot backing in a serving engine (delta
    /// sequence 0).
    pub fn from_store(store: SnapshotStore, config: EngineConfig) -> QueryEngine {
        QueryEngine {
            state: RwLock::new(EngineState {
                store,
                delta_seq: 0,
            }),
            shards: (0..config.shards())
                .map(|_| Mutex::new(Shard::new(config.cache_entries())))
                .collect(),
            agg: Mutex::new(ServeMetrics::new()),
        }
    }

    /// Runs `f` against the owned snapshot currently being served.
    ///
    /// The read lock is held only for the call — the replacement for the
    /// old `snapshot(&self) -> &Snapshot` accessor, which cannot exist
    /// now that [`QueryEngine::apply_delta`] mutates the state in place.
    ///
    /// # Panics
    ///
    /// Panics if the engine serves a memory-mapped snapshot, which has
    /// no owned [`Snapshot`] to borrow — mapped-compatible callers
    /// should use [`QueryEngine::with_store`].
    pub fn with_snapshot<R>(&self, f: impl FnOnce(&Snapshot) -> R) -> R {
        match &self.read_state().store {
            SnapshotStore::Owned(snap) => f(snap),
            SnapshotStore::Mapped(_) => {
                panic!("with_snapshot on a memory-mapped engine; use with_store")
            }
        }
    }

    /// Runs `f` against the serving [`SnapshotStore`], whichever backing
    /// it has. The read lock is held only for the call.
    pub fn with_store<R>(&self, f: impl FnOnce(&SnapshotStore) -> R) -> R {
        f(&self.read_state().store)
    }

    /// How many [`DeltaRecord`]s have been applied since construction.
    pub fn delta_seq(&self) -> u64 {
        self.read_state().delta_seq
    }

    /// Folds one journal [`DeltaRecord`] into the serving snapshot and
    /// returns the new delta sequence number.
    ///
    /// The write lock excludes every in-flight batch, so the record's row
    /// updates and the eviction of its [`DeltaRecord::dirty_nodes`] from
    /// *every* shard's three label caches (a query caches both of its
    /// endpoints under the first endpoint's shard, so one shard's caches
    /// can hold any node) are atomic with respect to queries: a batch
    /// sees the snapshot entirely before or entirely after the delta,
    /// never a torn mix of old rows and stale decodes.
    ///
    /// # Errors
    ///
    /// [`StoreError::ReadOnlySnapshot`] if the engine serves a
    /// memory-mapped snapshot (its label bytes live in a read-only
    /// map), [`StoreError::Malformed`] if `record.seq` is not the next
    /// in sequence (the engine applies journals in order, gap-free), or
    /// any error of [`DeltaRecord::apply_to`] — in all cases the
    /// snapshot, the caches, and the sequence number are left
    /// untouched.
    pub fn apply_delta(&self, record: &DeltaRecord) -> Result<u64, StoreError> {
        let mut state = self
            .state
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if record.seq != state.delta_seq + 1 {
            return Err(StoreError::Malformed {
                context: "delta record",
                reason: format!(
                    "record seq {} applied to engine at delta seq {} (want {})",
                    record.seq,
                    state.delta_seq,
                    state.delta_seq + 1
                ),
            });
        }
        let snap = match &mut state.store {
            SnapshotStore::Owned(snap) => snap,
            SnapshotStore::Mapped(_) => return Err(StoreError::ReadOnlySnapshot),
        };
        record.apply_to(snap)?;
        state.delta_seq = record.seq;
        let dirty = record.dirty_nodes();
        for si in 0..self.shards.len() {
            let mut shard = self.lock_shard(si);
            for &node in &dirty {
                shard.max.invalidate(node);
                shard.flow.invalidate(node);
                shard.dist.invalidate(node);
            }
        }
        Ok(state.delta_seq)
    }

    /// Number of shards the engine fans out over.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Locks the serving state for reading, recovering from poisoning
    /// (writers mutate nothing on the failure paths that could panic
    /// mid-update; see [`QueryEngine::apply_delta`]).
    fn read_state(&self) -> std::sync::RwLockReadGuard<'_, EngineState> {
        self.state
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Locks shard `si`, recovering from a poisoned mutex.
    ///
    /// A worker that panics mid-batch poisons its shard's lock. The
    /// shard's decoded-label caches — the only state a panicking worker
    /// could have left half-updated — are discarded, and serving
    /// continues; the hit/miss counters (plain integers, valid under any
    /// interleaving) survive. The alternative, propagating the panic on
    /// every later lock, would turn one bad batch into a permanently
    /// dead shard.
    fn lock_shard(&self, si: usize) -> std::sync::MutexGuard<'_, Shard> {
        match self.shards[si].lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut shard = poisoned.into_inner();
                shard.max.clear();
                shard.flow.clear();
                shard.dist.clear();
                self.shards[si].clear_poison();
                shard
            }
        }
    }

    /// Locks the aggregate metrics, recovering from poisoning: the
    /// counters are plain integers, meaningful under any interleaving.
    fn lock_metrics(&self) -> std::sync::MutexGuard<'_, ServeMetrics> {
        self.agg
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Answers one query.
    ///
    /// # Errors
    ///
    /// The per-query errors of [`QueryEngine::run_batch_response`], as
    /// their underlying [`StoreError`]s.
    pub fn query(&self, q: Query) -> Result<Answer, StoreError> {
        self.run_batch_inner(std::slice::from_ref(&q))
            .0
            .pop()
            .expect("one query in, one answer out")
    }

    /// Answers a batch, fanning out across shards; results come back in
    /// input order with the wire protocol's typed [`ErrorCode`]s, plus
    /// the batch's cost counters.
    ///
    /// The batch itself never fails — per-query statuses are:
    /// [`ErrorCode::UnknownNode`] for an endpoint the snapshot carries
    /// no label for, [`ErrorCode::CorruptLabel`] when a stored record
    /// does not decode, [`ErrorCode::LabelMismatch`] when two labels
    /// come from different schemes, [`ErrorCode::MissingSection`] for
    /// `Dist` queries against a snapshot without a dist section, and
    /// [`ErrorCode::ShardPoisoned`] for every query a panicking shard
    /// worker was serving.
    pub fn run_batch_response(&self, queries: &[Query]) -> BatchResponse {
        let (results, metrics, delta_seq) = self.run_batch_inner(queries);
        BatchResponse {
            results: results
                .into_iter()
                .map(|r| r.map_err(|e| ErrorCode::from(&e)))
                .collect(),
            metrics,
            delta_seq,
        }
    }

    /// Answers a batch, returning raw [`StoreError`]s per query.
    ///
    /// # Errors
    ///
    /// Per-query; see [`QueryEngine::run_batch_response`] for the
    /// taxonomy (this shim reports the underlying [`StoreError`]s).
    #[deprecated(
        since = "0.7.0",
        note = "use run_batch_response, which carries the wire protocol's \
                typed error codes and the batch's cost counters"
    )]
    pub fn run_batch(&self, queries: &[Query]) -> Vec<Result<Answer, StoreError>> {
        self.run_batch_inner(queries).0
    }

    /// The shared batch executor behind [`QueryEngine::query`],
    /// [`QueryEngine::run_batch_response`], and the deprecated
    /// `run_batch` shim.
    ///
    /// The state read lock is held for the whole fan-out, so every
    /// answer of the batch comes from one delta generation (the returned
    /// sequence number); an [`QueryEngine::apply_delta`] waits for the
    /// batch rather than tearing it.
    ///
    /// Admission-first counting: `queries` and `batches` are bumped
    /// under the aggregate lock *before* the fan-out, and the remaining
    /// counters (errors, elapsed, latency) after it. A concurrent
    /// [`QueryEngine::metrics`] reader therefore sees every in-flight
    /// batch's queries already counted, so derived invariants (cache
    /// lookups ≤ 2 per counted query, errors ≤ counted queries) hold at
    /// every instant, not just between batches.
    fn run_batch_inner(
        &self,
        queries: &[Query],
    ) -> (Vec<Result<Answer, StoreError>>, BatchMetrics, u64) {
        let start = Instant::now();
        {
            let mut agg = self.lock_metrics();
            agg.queries += queries.len() as u64;
            agg.batches += 1;
        }
        let state = self.read_state();
        let store = &state.store;
        let ns = self.shards.len();
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); ns];
        for (i, q) in queries.iter().enumerate() {
            buckets[q.primary().0 as usize % ns].push(i);
        }
        let mut results: Vec<Option<Result<Answer, StoreError>>> =
            (0..queries.len()).map(|_| None).collect();
        if ns == 1 {
            let mut shard = self.lock_shard(0);
            for &i in &buckets[0] {
                results[i] = Some(Self::answer(store, &mut shard, &queries[i]));
            }
        } else {
            type ShardOutcome<'a> = (
                usize,
                &'a [usize],
                std::thread::Result<Vec<(usize, Result<Answer, StoreError>)>>,
            );
            let per_shard: Vec<ShardOutcome<'_>> = std::thread::scope(|scope| {
                let workers: Vec<_> = buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, bucket)| !bucket.is_empty())
                    .map(|(si, bucket)| {
                        let handle = scope.spawn(move || {
                            let mut shard = self.lock_shard(si);
                            bucket
                                .iter()
                                .map(|&i| (i, Self::answer(store, &mut shard, &queries[i])))
                                .collect()
                        });
                        (si, bucket.as_slice(), handle)
                    })
                    .collect();
                // Joining every handle here keeps a worker panic from
                // re-raising when the scope closes.
                workers
                    .into_iter()
                    .map(|(si, bucket, w)| (si, bucket, w.join()))
                    .collect()
            });
            for (si, bucket, outcome) in per_shard {
                match outcome {
                    Ok(pairs) => {
                        for (i, r) in pairs {
                            results[i] = Some(r);
                        }
                    }
                    // The worker panicked: its queries get a typed error
                    // and the shard lock heals on the next lock_shard.
                    Err(_) => {
                        for &i in bucket {
                            results[i] = Some(Err(StoreError::ShardPoisoned { shard: si }));
                        }
                    }
                }
            }
        }
        let delta_seq = state.delta_seq;
        drop(state);
        let errors = results.iter().filter(|r| matches!(r, Some(Err(_)))).count() as u64;
        let elapsed = start.elapsed();
        {
            let mut agg = self.lock_metrics();
            agg.errors += errors;
            agg.add_elapsed(elapsed);
            agg.latency.record_duration(elapsed);
        }
        let batch = BatchMetrics {
            queries: queries.len() as u64,
            errors,
            elapsed_nanos: elapsed.as_nanos() as u64,
        };
        (
            results
                .into_iter()
                .map(|r| r.expect("every query was routed to a shard"))
                .collect(),
            batch,
            delta_seq,
        )
    }

    /// A point-in-time snapshot of the serving counters, aggregated
    /// across shards.
    ///
    /// The aggregate lock and *every* shard lock are held simultaneously
    /// while the counters are read, so the returned block is a consistent
    /// cut: no shard's hit/miss counters can advance between reads. This
    /// cannot deadlock with batches — workers take exactly one shard
    /// lock and never the aggregate lock while holding it, and the batch
    /// path touches the aggregate lock only when no shard lock is held.
    pub fn metrics(&self) -> ServeMetrics {
        let agg = self.lock_metrics();
        let guards: Vec<_> = (0..self.shards.len())
            .map(|si| self.lock_shard(si))
            .collect();
        let mut m = *agg;
        m.shards = self.shards.len() as u64;
        for shard in &guards {
            m.cache_hits += shard.hits;
            m.cache_misses += shard.misses;
        }
        m
    }

    fn check_node(store: &SnapshotStore, v: NodeId) -> Result<(), StoreError> {
        if v.0 >= store.num_nodes() {
            return Err(StoreError::UnknownNode {
                node: v.0,
                nodes: store.num_nodes(),
            });
        }
        Ok(())
    }

    fn answer(store: &SnapshotStore, shard: &mut Shard, q: &Query) -> Result<Answer, StoreError> {
        match *q {
            Query::Max { u, v } => Ok(Answer::Max(Self::max_of(store, shard, u, v)?)),
            Query::Flow { u, v } => {
                if u == v {
                    Self::check_node(store, u)?;
                    return Ok(Answer::Flow(FLOW_INFINITY));
                }
                if !shard.cached {
                    Self::check_node(store, u)?;
                    Self::check_node(store, v)?;
                    shard.misses += 2;
                    let w = store
                        .codec()
                        .try_decode_flow_pair(
                            store.flow_slice(u.0 as usize),
                            store.flow_slice(v.0 as usize),
                        )
                        .ok_or_else(|| Self::attribute_corrupt_flow(store, u, v))?;
                    return Ok(Answer::Flow(w));
                }
                let a = Self::flow_view(store, shard, u)?;
                let b = Self::flow_view(store, shard, v)?;
                Ok(Answer::Flow(decode_flow_views(&a, &b)))
            }
            Query::Dist { u, v } => {
                if !store.has_dist() {
                    return Err(StoreError::MissingSection { section: "dist" });
                }
                if u == v {
                    Self::check_node(store, u)?;
                    return Ok(Answer::Dist(0));
                }
                if !shard.cached {
                    Self::check_node(store, u)?;
                    Self::check_node(store, v)?;
                    shard.misses += 2;
                    let (a, delta_bits) = store
                        .dist_slice(u.0 as usize)
                        .ok_or(StoreError::MissingSection { section: "dist" })?;
                    let (b, _) = store
                        .dist_slice(v.0 as usize)
                        .ok_or(StoreError::MissingSection { section: "dist" })?;
                    let d = store
                        .codec()
                        .try_decode_dist_pair(a, b, delta_bits)
                        .ok_or_else(|| Self::attribute_corrupt_dist(store, u, v))?
                        .ok_or(StoreError::LabelMismatch { u: u.0, v: v.0 })?;
                    return Ok(Answer::Dist(d));
                }
                let a = Self::dist_view(store, shard, u)?;
                let b = Self::dist_view(store, shard, v)?;
                // `None` is a u64 overflow of the summed half-distances —
                // only possible when the two labels came from different
                // schemes (honest distances are bounded by n·W).
                let d = decode_dist_views(&a, &b)
                    .ok_or(StoreError::LabelMismatch { u: u.0, v: v.0 })?;
                Ok(Answer::Dist(d))
            }
            Query::VerifyEdge { u, v, w } => {
                let max_on_path = Self::max_of(store, shard, u, v)?;
                Ok(Answer::VerifyEdge {
                    accept: w >= max_on_path,
                    max_on_path,
                })
            }
        }
    }

    fn max_of(
        store: &SnapshotStore,
        shard: &mut Shard,
        u: NodeId,
        v: NodeId,
    ) -> Result<Weight, StoreError> {
        if u == v {
            Self::check_node(store, u)?;
            return Ok(Weight::ZERO);
        }
        if !shard.cached {
            Self::check_node(store, u)?;
            Self::check_node(store, v)?;
            shard.misses += 2;
            return store
                .codec()
                .try_decode_max_pair(store.max_slice(u.0 as usize), store.max_slice(v.0 as usize))
                .ok_or_else(|| Self::attribute_corrupt_max(store, u, v));
        }
        let a = Self::max_view(store, shard, u)?;
        let b = Self::max_view(store, shard, v)?;
        Ok(decode_max_views(&a, &b))
    }

    /// A failed pairwise decode cannot tell which of the two windows is
    /// the broken one, so the error path re-decodes each side alone —
    /// slow, but only ever reached on corrupt data.
    fn attribute_corrupt_max(store: &SnapshotStore, u: NodeId, v: NodeId) -> StoreError {
        let codec = store.codec();
        let node = if codec
            .try_decode_max_view(store.max_slice(u.0 as usize))
            .is_none()
        {
            u.0
        } else {
            v.0
        };
        StoreError::CorruptLabel {
            section: "max",
            node,
        }
    }

    fn attribute_corrupt_flow(store: &SnapshotStore, u: NodeId, v: NodeId) -> StoreError {
        let codec = store.codec();
        let node = if codec
            .try_decode_flow_view(store.flow_slice(u.0 as usize))
            .is_none()
        {
            u.0
        } else {
            v.0
        };
        StoreError::CorruptLabel {
            section: "flow",
            node,
        }
    }

    fn attribute_corrupt_dist(store: &SnapshotStore, u: NodeId, v: NodeId) -> StoreError {
        let decodes = |n: NodeId| {
            store
                .dist_slice(n.0 as usize)
                .is_some_and(|(bits, db)| store.codec().try_decode_dist_view(bits, db).is_some())
        };
        StoreError::CorruptLabel {
            section: "dist",
            node: if !decodes(u) { u.0 } else { v.0 },
        }
    }

    fn max_view(
        store: &SnapshotStore,
        shard: &mut Shard,
        v: NodeId,
    ) -> Result<MaxView, StoreError> {
        Self::check_node(store, v)?;
        if let Some(view) = shard.max.get(v.0) {
            shard.hits += 1;
            return Ok(view);
        }
        shard.misses += 1;
        let view = store
            .codec()
            .try_decode_max_view(store.max_slice(v.0 as usize))
            .ok_or(StoreError::CorruptLabel {
                section: "max",
                node: v.0,
            })?;
        shard.max.insert(v.0, view.clone());
        Ok(view)
    }

    fn flow_view(
        store: &SnapshotStore,
        shard: &mut Shard,
        v: NodeId,
    ) -> Result<FlowView, StoreError> {
        Self::check_node(store, v)?;
        if let Some(view) = shard.flow.get(v.0) {
            shard.hits += 1;
            return Ok(view);
        }
        shard.misses += 1;
        let view = store
            .codec()
            .try_decode_flow_view(store.flow_slice(v.0 as usize))
            .ok_or(StoreError::CorruptLabel {
                section: "flow",
                node: v.0,
            })?;
        shard.flow.insert(v.0, view.clone());
        Ok(view)
    }

    fn dist_view(
        store: &SnapshotStore,
        shard: &mut Shard,
        v: NodeId,
    ) -> Result<DistView, StoreError> {
        Self::check_node(store, v)?;
        if let Some(view) = shard.dist.get(v.0) {
            shard.hits += 1;
            return Ok(view);
        }
        shard.misses += 1;
        let (bits, delta_bits) = store
            .dist_slice(v.0 as usize)
            .ok_or(StoreError::MissingSection { section: "dist" })?;
        let view = store.codec().try_decode_dist_view(bits, delta_bits).ok_or(
            StoreError::CorruptLabel {
                section: "dist",
                node: v.0,
            },
        )?;
        shard.dist.insert(v.0, view.clone());
        Ok(view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstv_labels::SepFieldCodec;
    use mstv_trees::{PathMaxIndex, RootedTree};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tree_of(n: usize, max_w: u64, seed: u64) -> RootedTree {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = mstv_graph::gen::random_tree(
            n,
            mstv_graph::gen::WeightDist::Uniform { max: max_w },
            &mut rng,
        );
        RootedTree::from_graph(&g, NodeId(0)).unwrap()
    }

    fn engine_of(tree: &RootedTree, shards: usize, cache: usize) -> QueryEngine {
        let snap = Snapshot::build(tree, SepFieldCodec::EliasGamma);
        let config = EngineConfig::builder()
            .shards(shards)
            .cache_entries(cache)
            .build()
            .expect("test configs are valid");
        QueryEngine::new(snap, config)
    }

    #[test]
    fn config_builder_validates_instead_of_clamping() {
        let cfg = EngineConfig::builder()
            .shards(8)
            .cache_entries(64)
            .build()
            .unwrap();
        assert_eq!(cfg.shards(), 8);
        assert_eq!(cfg.cache_entries(), 64);
        assert_eq!(
            EngineConfig::builder().shards(0).build(),
            Err(EngineConfigError::ZeroShards)
        );
        assert_eq!(
            EngineConfig::builder().shards(MAX_SHARDS + 1).build(),
            Err(EngineConfigError::TooManyShards {
                requested: MAX_SHARDS + 1,
                max: MAX_SHARDS
            })
        );
        // The boundary itself is allowed, and defaults are valid.
        assert!(EngineConfig::builder().shards(MAX_SHARDS).build().is_ok());
        let d = EngineConfig::default();
        assert_eq!(d.shards(), 4);
        assert_eq!(d.cache_entries(), 1024);
    }

    #[test]
    fn answers_match_tree_oracle_across_shard_counts() {
        let t = tree_of(150, 700, 11);
        let idx = PathMaxIndex::new(&t);
        let mut wdepth = vec![0u64; t.num_nodes()];
        for &v in t.order() {
            if let Some(p) = t.parent(v) {
                wdepth[v.index()] = wdepth[p.index()] + t.parent_weight(v).0;
            }
        }
        let mut queries = Vec::new();
        for i in (0..150u32).step_by(4) {
            for j in (1..150u32).step_by(7) {
                let (u, v) = (NodeId(i), NodeId(j));
                queries.push(Query::Max { u, v });
                queries.push(Query::Flow { u, v });
                queries.push(Query::Dist { u, v });
                queries.push(Query::VerifyEdge {
                    u,
                    v,
                    w: Weight(u64::from(i) * 13 % 700),
                });
            }
        }
        for shards in [1usize, 2, 4, 8] {
            let engine = engine_of(&t, shards, 64);
            let response = engine.run_batch_response(&queries);
            assert_eq!(response.results.len(), queries.len());
            assert_eq!(response.metrics.queries, queries.len() as u64);
            assert_eq!(response.metrics.errors, 0);
            assert_eq!(response.error_count(), 0);
            for (q, a) in queries.iter().zip(&response.results) {
                let a = a.as_ref().expect("in-range queries succeed");
                match (*q, *a) {
                    (Query::Max { u, v }, Answer::Max(w)) => {
                        let want = if u == v {
                            Weight::ZERO
                        } else {
                            idx.max_on_path(u, v)
                        };
                        assert_eq!(w, want, "MAX({u}, {v}) shards={shards}");
                    }
                    (Query::Flow { u, v }, Answer::Flow(w)) => {
                        let want = if u == v {
                            FLOW_INFINITY
                        } else {
                            idx.min_on_path(u, v)
                        };
                        assert_eq!(w, want, "FLOW({u}, {v}) shards={shards}");
                    }
                    (Query::Dist { u, v }, Answer::Dist(d)) => {
                        let x = idx.lca(u, v);
                        let want = wdepth[u.index()] + wdepth[v.index()] - 2 * wdepth[x.index()];
                        assert_eq!(d, want, "DIST({u}, {v}) shards={shards}");
                    }
                    (
                        Query::VerifyEdge { u, v, w },
                        Answer::VerifyEdge {
                            accept,
                            max_on_path,
                        },
                    ) => {
                        let want = if u == v {
                            Weight::ZERO
                        } else {
                            idx.max_on_path(u, v)
                        };
                        assert_eq!(max_on_path, want);
                        assert_eq!(accept, w >= want, "verify({u}, {v}, {w})");
                    }
                    other => panic!("answer kind mismatch: {other:?}"),
                }
            }
            let m = engine.metrics();
            assert_eq!(m.queries, queries.len() as u64);
            assert_eq!(m.batches, 1);
            assert_eq!(m.shards, shards as u64);
            assert_eq!(m.errors, 0);
            assert_eq!(m.latency.count(), 1, "one batch, one latency sample");
            assert!(m.cache_misses > 0);
            assert!(
                m.cache_hits > 0,
                "repeated endpoints must hit the cache (shards={shards})"
            );
        }
    }

    #[test]
    fn cache_disabled_pair_path_matches_cached_view_path() {
        // With cache_entries(0) the engine answers through the fused
        // pairwise decoders (no views at all); every answer and error
        // must coincide with the cached engine's, and the shard
        // counters must show the bypass (misses counted, hits
        // impossible).
        let t = tree_of(130, 900, 31);
        let cached = engine_of(&t, 2, 64);
        let uncached = engine_of(&t, 2, 0);
        let mut queries = Vec::new();
        for i in (0..132u32).step_by(3) {
            for j in (0..132u32).step_by(11) {
                let (u, v) = (NodeId(i), NodeId(j));
                queries.push(Query::Max { u, v });
                queries.push(Query::Flow { u, v });
                queries.push(Query::Dist { u, v });
                queries.push(Query::VerifyEdge {
                    u,
                    v,
                    w: Weight(u64::from(i * 31 + j) % 900),
                });
            }
        }
        let a = cached.run_batch_response(&queries);
        let b = uncached.run_batch_response(&queries);
        assert_eq!(a.results, b.results);
        let m = uncached.metrics();
        assert_eq!(m.cache_hits, 0, "capacity 0 can never hit");
        assert!(m.cache_misses > 0, "bypassed decodes still count as misses");
        assert!(cached.metrics().cache_hits > 0);
    }

    #[test]
    fn deprecated_run_batch_shim_matches_new_api() {
        let t = tree_of(40, 100, 21);
        let engine = engine_of(&t, 2, 16);
        let queries = [
            Query::Max {
                u: NodeId(1),
                v: NodeId(30),
            },
            Query::Dist {
                u: NodeId(99),
                v: NodeId(0),
            },
        ];
        #[allow(deprecated)]
        let old = engine.run_batch(&queries);
        let new = engine.run_batch_response(&queries);
        assert_eq!(old.len(), new.results.len());
        for (o, n) in old.iter().zip(&new.results) {
            match (o, n) {
                (Ok(a), Ok(b)) => assert_eq!(a, b),
                (Err(e), Err(code)) => assert_eq!(&ErrorCode::from(e), code),
                other => panic!("shim and new API disagree: {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_nodes_are_typed_errors_not_panics() {
        let t = tree_of(10, 50, 12);
        let engine = engine_of(&t, 2, 8);
        for q in [
            Query::Max {
                u: NodeId(10),
                v: NodeId(0),
            },
            Query::Flow {
                u: NodeId(0),
                v: NodeId(u32::MAX),
            },
            Query::Dist {
                u: NodeId(99),
                v: NodeId(99),
            },
            Query::VerifyEdge {
                u: NodeId(3),
                v: NodeId(11),
                w: Weight(1),
            },
        ] {
            assert!(
                matches!(engine.query(q), Err(StoreError::UnknownNode { .. })),
                "{q:?} should name the unknown node"
            );
            // The wire-facing API reports the same failure as a typed code.
            let resp = engine.run_batch_response(&[q]);
            assert!(
                matches!(resp.results[0], Err(ErrorCode::UnknownNode { .. })),
                "{q:?} should map to ErrorCode::UnknownNode"
            );
            assert_eq!(resp.metrics.errors, 1);
        }
        assert_eq!(engine.metrics().errors, 8);
    }

    #[test]
    fn dist_without_section_is_missing_section() {
        let t = tree_of(20, 50, 13);
        let mut snap = Snapshot::build(&t, SepFieldCodec::EliasGamma);
        snap.strip_dist();
        let engine = QueryEngine::new(snap, EngineConfig::default());
        assert!(matches!(
            engine.query(Query::Dist {
                u: NodeId(1),
                v: NodeId(2)
            }),
            Err(StoreError::MissingSection { section: "dist" })
        ));
        // The mandatory sections still serve.
        assert!(engine
            .query(Query::Max {
                u: NodeId(1),
                v: NodeId(2)
            })
            .is_ok());
    }

    #[test]
    fn corrupt_record_is_reported_per_query() {
        let t = tree_of(30, 90, 14);
        let mut snap = Snapshot::build(&t, SepFieldCodec::EliasGamma);
        snap.corrupt_max_label_for_test(NodeId(7));
        let engine = QueryEngine::new(snap, EngineConfig::default());
        assert!(matches!(
            engine.query(Query::Max {
                u: NodeId(7),
                v: NodeId(2)
            }),
            Err(StoreError::CorruptLabel {
                section: "max",
                node: 7
            })
        ));
        // Other nodes are unaffected.
        assert!(engine
            .query(Query::Max {
                u: NodeId(3),
                v: NodeId(2)
            })
            .is_ok());
    }

    #[test]
    fn poisoned_shard_recovers_for_subsequent_queries() {
        let t = tree_of(60, 90, 16);
        let engine = engine_of(&t, 3, 16);
        // Warm every shard so the caches hold entries to discard.
        for u in 0..12u32 {
            assert!(engine
                .query(Query::Max {
                    u: NodeId(u),
                    v: NodeId(20)
                })
                .is_ok());
        }
        // Poison shard 0 the way a real worker would: panic while
        // holding its lock.
        let crashed = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = engine.shards[0].lock().unwrap();
                panic!("simulated worker crash while holding the shard lock");
            })
            .join()
        });
        assert!(crashed.is_err());
        assert!(engine.shards[0].is_poisoned());
        // Every shard — including the poisoned one — keeps serving, and
        // metrics() aggregates without panicking.
        for u in 0..12u32 {
            assert!(
                engine
                    .query(Query::Max {
                        u: NodeId(u),
                        v: NodeId(20)
                    })
                    .is_ok(),
                "query via shard {} after poisoning",
                u % 3
            );
        }
        assert!(!engine.shards[0].is_poisoned(), "lock should have healed");
        let m = engine.metrics();
        assert_eq!(m.queries, 24);
        assert_eq!(m.errors, 0);
    }

    #[test]
    fn zero_cache_still_correct() {
        let t = tree_of(40, 200, 15);
        let idx = PathMaxIndex::new(&t);
        let engine = engine_of(&t, 3, 0);
        for (u, v) in [(0u32, 39u32), (5, 5), (17, 23)] {
            let (u, v) = (NodeId(u), NodeId(v));
            let want = if u == v {
                Weight::ZERO
            } else {
                idx.max_on_path(u, v)
            };
            assert_eq!(
                engine.query(Query::Max { u, v }).unwrap(),
                Answer::Max(want)
            );
        }
        let m = engine.metrics();
        assert_eq!(m.cache_hits, 0, "capacity 0 must never hit");
        assert!(m.cache_misses > 0);
    }

    /// The full row-diff between two same-shape snapshots, as a journal
    /// record — the sound-by-construction delta the serving tests use.
    fn diff_record(
        seq: u64,
        mutation: crate::JournalMutation,
        prev: &Snapshot,
        next: &Snapshot,
    ) -> DeltaRecord {
        use mstv_labels::BitString;
        let (pt, nt) = (prev.tree().unwrap(), next.tree().unwrap());
        let tree = (0..prev.num_nodes())
            .filter_map(|i| {
                let v = NodeId(i);
                let entry = nt.parent(v).map(|p| (p.0, nt.parent_weight(v).0));
                let old = pt.parent(v).map(|p| (p.0, pt.parent_weight(v).0));
                (entry != old).then_some(crate::TreeDelta {
                    node: i,
                    parent: entry,
                })
            })
            .collect();
        let diff_labels = |a: &[BitString], b: &[BitString]| -> Vec<crate::LabelDelta> {
            a.iter()
                .zip(b)
                .enumerate()
                .filter(|(_, (x, y))| x != y)
                .map(|(i, (_, y))| crate::LabelDelta {
                    node: i as u32,
                    bits: y.clone(),
                })
                .collect()
        };
        DeltaRecord {
            seq,
            mutation,
            outcome: crate::DeltaOutcome::WeightsOnly,
            new_max_weight: next.max_weight(),
            new_omega_bits: next.codec().omega_bits,
            new_delta_bits: next.dist().map_or(1, |d| d.delta_bits),
            tree,
            max: diff_labels(prev.max_labels(), next.max_labels()),
            flow: diff_labels(prev.flow_labels(), next.flow_labels()),
            dist: diff_labels(&prev.dist().unwrap().labels, &next.dist().unwrap().labels),
        }
    }

    #[test]
    fn apply_delta_evicts_stale_decodes_from_every_shard() {
        // Two trees over the same node set, differing in one parent-edge
        // weight: after the delta, answers must match the *new* oracle —
        // including for endpoints whose decoded labels were cached in a
        // shard other than their own (answer() caches both endpoints
        // under the first endpoint's shard).
        let t_old = tree_of(90, 300, 31);
        let mut parents: Vec<Option<(NodeId, Weight)>> = (0..90u32)
            .map(|i| {
                let v = NodeId(i);
                t_old.parent(v).map(|p| (p, t_old.parent_weight(v)))
            })
            .collect();
        let (victim, bumped) = (NodeId(41), Weight(299_999));
        parents[victim.index()] = Some((parents[victim.index()].unwrap().0, bumped));
        let t_new = RootedTree::from_parents(NodeId(0), parents).unwrap();

        let snap_old = Snapshot::build(&t_old, SepFieldCodec::EliasGamma);
        let snap_new = Snapshot::build(&t_new, SepFieldCodec::EliasGamma);
        let mutation = crate::JournalMutation::SetWeight {
            u: t_old.parent(victim).unwrap().0,
            v: victim.0,
            w: bumped.0,
        };
        let record = diff_record(1, mutation, &snap_old, &snap_new);
        assert!(!record.max.is_empty(), "a reweight must move MAX labels");

        let config = EngineConfig::builder()
            .shards(3)
            .cache_entries(64)
            .build()
            .unwrap();
        let engine = QueryEngine::new(snap_old, config);
        // Warm every shard's caches with pre-delta decodes.
        let mut queries = Vec::new();
        for u in 0..90u32 {
            queries.push(Query::Max {
                u: NodeId(u),
                v: NodeId((u + 45) % 90),
            });
        }
        let warm = engine.run_batch_response(&queries);
        assert_eq!(warm.error_count(), 0);
        assert_eq!(warm.delta_seq, 0);
        assert_eq!(engine.delta_seq(), 0);

        // Out-of-sequence records are refused and change nothing.
        let mut skipped = record.clone();
        skipped.seq = 2;
        assert!(matches!(
            engine.apply_delta(&skipped),
            Err(StoreError::Malformed {
                context: "delta record",
                ..
            })
        ));
        assert_eq!(engine.delta_seq(), 0);

        assert_eq!(engine.apply_delta(&record).unwrap(), 1);
        assert_eq!(engine.delta_seq(), 1);
        assert_eq!(
            engine.with_snapshot(Snapshot::to_bytes),
            snap_new.to_bytes(),
            "the delta must land the serving snapshot exactly on the rebuild"
        );

        // Every (possibly cached) answer now matches the new oracle.
        let idx = PathMaxIndex::new(&t_new);
        let resp = engine.run_batch_response(&queries);
        assert_eq!(resp.delta_seq, 1);
        for (q, a) in queries.iter().zip(&resp.results) {
            if let (Query::Max { u, v }, Answer::Max(w)) = (*q, a.as_ref().unwrap()) {
                assert_eq!(
                    *w,
                    idx.max_on_path(u, v),
                    "MAX({u},{v}) served a stale cached decode after the delta"
                );
            }
        }
        // Replaying the same record is out of sequence now.
        assert!(engine.apply_delta(&record).is_err());
    }

    #[test]
    fn metrics_snapshot_is_consistent_under_concurrent_batches() {
        use std::sync::atomic::{AtomicBool, Ordering};

        let t = tree_of(120, 500, 17);
        let engine = engine_of(&t, 4, 32);
        let stop = AtomicBool::new(false);
        // Max-only batches with u != v: each query does at most two
        // label lookups (hit or miss), and never errors. Admission-first
        // counting plus the all-locks metrics() snapshot make the
        // invariants below hold at *every instant* — the old
        // lock-one-shard-at-a-time reader could observe lookups from
        // queries it had not yet counted.
        let batch_of = |w: u32| {
            let mut batch = Vec::new();
            for i in 0..60u32 {
                let u = NodeId((i * 7 + w) % 120);
                let mut v = NodeId((i * 13 + w + 1) % 120);
                // Keep u != v so both endpoints always cost a lookup.
                if u == v {
                    v = NodeId((v.0 + 1) % 120);
                }
                batch.push(Query::Max { u, v });
            }
            batch
        };
        // One batch up front from this thread: on a single-core host the
        // reader below can finish before the writers are ever scheduled,
        // and the invariants need at least one counted batch.
        assert_eq!(engine.run_batch_response(&batch_of(7)).metrics.errors, 0);
        std::thread::scope(|s| {
            for w in 0..2u32 {
                let (engine, stop, batch_of) = (&engine, &stop, &batch_of);
                s.spawn(move || {
                    let batch = batch_of(w);
                    while !stop.load(Ordering::Relaxed) {
                        let resp = engine.run_batch_response(&batch);
                        assert_eq!(resp.metrics.errors, 0);
                    }
                });
            }
            for _ in 0..200 {
                let m = engine.metrics();
                let lookups = m.cache_hits + m.cache_misses;
                assert!(
                    lookups <= 2 * m.queries,
                    "saw {lookups} lookups against {} counted queries — \
                     the snapshot mixed counters from different instants",
                    m.queries
                );
                assert!(m.errors <= m.queries);
                assert!(m.latency.count() <= m.batches);
            }
            stop.store(true, Ordering::Relaxed);
        });
        let m = engine.metrics();
        assert!(m.queries > 0);
        assert_eq!(m.queries % 60, 0, "each batch admits exactly 60 queries");
    }

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "mstv-engine-test-{}-{name}.snap",
            std::process::id()
        ));
        p
    }

    #[test]
    fn mapped_engine_answers_match_owned_engine() {
        use crate::SnapshotFormat;
        let t = tree_of(120, 300, 23);
        let snap = Snapshot::build(&t, SepFieldCodec::EliasGamma);
        let path = tmp_path("mapped-vs-owned");
        snap.write_file_format(&path, SnapshotFormat::V2).unwrap();
        let mapped = Snapshot::open_mmap(&path).unwrap();
        assert!(mapped.is_zero_copy());

        let config = EngineConfig::builder()
            .shards(3)
            .cache_entries(16)
            .build()
            .unwrap();
        let owned = QueryEngine::new(snap, config);
        let engine = QueryEngine::new_mapped(mapped, config);
        assert!(engine.with_store(|s| matches!(s, SnapshotStore::Mapped(_))));

        let mut queries = Vec::new();
        for i in (0..120u32).step_by(3) {
            for j in (1..120u32).step_by(11) {
                let (u, v) = (NodeId(i), NodeId(j));
                queries.push(Query::Max { u, v });
                queries.push(Query::Flow { u, v });
                queries.push(Query::Dist { u, v });
                queries.push(Query::VerifyEdge {
                    u,
                    v,
                    w: Weight(150),
                });
            }
        }
        let expect = owned.run_batch_response(&queries).results;
        let got = engine.run_batch_response(&queries).results;
        for (i, (e, g)) in expect.iter().zip(&got).enumerate() {
            assert_eq!(
                e.as_ref().unwrap(),
                g.as_ref().unwrap(),
                "query {i} diverged between owned and mapped engines"
            );
        }
        // Re-run to exercise the cache-hit path over cached views.
        let again = engine.run_batch_response(&queries).results;
        for (e, g) in expect.iter().zip(&again) {
            assert_eq!(e.as_ref().unwrap(), g.as_ref().unwrap());
        }
        let m = engine.metrics();
        assert!(m.cache_hits > 0, "second pass must hit the view cache");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mapped_engine_rejects_deltas_as_read_only() {
        use crate::SnapshotFormat;
        let t = tree_of(40, 90, 31);
        let snap = Snapshot::build(&t, SepFieldCodec::EliasGamma);
        let path = tmp_path("mapped-readonly");
        snap.write_file_format(&path, SnapshotFormat::V2).unwrap();
        let mapped = Snapshot::open_mmap(&path).unwrap();

        // A legitimate one-edge reweight delta; the mapped engine must
        // reject it before touching any label.
        let mut parents: Vec<Option<(NodeId, Weight)>> = (0..40u32)
            .map(|i| {
                let v = NodeId(i);
                t.parent(v).map(|p| (p, t.parent_weight(v)))
            })
            .collect();
        let (victim, bumped) = (NodeId(7), Weight(89_999));
        parents[victim.index()] = Some((parents[victim.index()].unwrap().0, bumped));
        let t_new = RootedTree::from_parents(NodeId(0), parents).unwrap();
        let snap_new = Snapshot::build(&t_new, SepFieldCodec::EliasGamma);
        let mutation = crate::JournalMutation::SetWeight {
            u: t.parent(victim).unwrap().0,
            v: victim.0,
            w: bumped.0,
        };
        let record = diff_record(1, mutation, &snap, &snap_new);

        let engine = QueryEngine::new_mapped(mapped, EngineConfig::default());
        match engine.apply_delta(&record) {
            Err(StoreError::ReadOnlySnapshot) => {}
            other => panic!("expected ReadOnlySnapshot, got {other:?}"),
        }
        assert_eq!(engine.delta_seq(), 0, "rejected delta must not advance seq");
        // The engine still serves reads after the rejected mutation.
        let ans = engine
            .query(Query::Max {
                u: NodeId(1),
                v: NodeId(2),
            })
            .unwrap();
        assert!(matches!(ans, Answer::Max(_)));
        let _ = std::fs::remove_file(&path);
    }
}
