//! Typed failures of the snapshot store and query engine.
//!
//! Everything a corrupted file, a foreign label, or an out-of-range node
//! id can do to the store surfaces as a [`StoreError`] — never a panic.
//! The variants are deliberately specific so `mstv snapshot fsck` and the
//! tests can assert *which* defence caught a given corruption.

use std::fmt;

/// A failure while writing, reading, or querying a label snapshot.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying I/O failure (file read/write).
    Io(std::io::Error),
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The container version is newer than this reader understands.
    UnsupportedVersion {
        /// The version number found in the file.
        found: u16,
    },
    /// The byte stream ended before a field could be read.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
        /// Byte offset at which the read was attempted.
        offset: usize,
    },
    /// A section's checksum does not match its payload — the file was
    /// bit-flipped (or truncated mid-payload) after it was written.
    CrcMismatch {
        /// Which section failed (`"header"`, `"tree"`, `"max"`, ...).
        section: &'static str,
        /// The CRC32 recorded in the file.
        stored: u32,
        /// The CRC32 computed over the payload as read.
        computed: u32,
    },
    /// A structurally invalid field (impossible counts, unknown section
    /// tags, non-tree parent pointers, ...).
    Malformed {
        /// Where the defect was found.
        context: &'static str,
        /// Human-readable description of the defect.
        reason: String,
    },
    /// A section required by the requested operation is absent.
    MissingSection {
        /// The absent section's name.
        section: &'static str,
    },
    /// A stored label record does not decode under the snapshot's codec.
    CorruptLabel {
        /// The section the record lives in.
        section: &'static str,
        /// The node whose record is bad.
        node: u32,
    },
    /// A query named a node this snapshot carries no label for.
    UnknownNode {
        /// The offending node id.
        node: u32,
        /// Number of labelled nodes in the snapshot.
        nodes: u32,
    },
    /// Two labels share no separator prefix: they were produced for
    /// different trees (a foreign-snapshot mix-up), so no decoder output
    /// is meaningful.
    LabelMismatch {
        /// First query endpoint.
        u: u32,
        /// Second query endpoint.
        v: u32,
    },
    /// A shard worker panicked mid-batch, so the queries it was serving
    /// have no answers. The shard itself recovers (its caches are reset
    /// on the next lock), so subsequent batches are unaffected.
    ShardPoisoned {
        /// Index of the shard whose worker panicked.
        shard: usize,
    },
    /// A mutation (delta-journal apply) was attempted against a
    /// memory-mapped snapshot, which serves its labels directly from the
    /// read-only file bytes. Reopen the snapshot as an owned
    /// [`crate::Snapshot`] to mutate it.
    ReadOnlySnapshot,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            StoreError::UnsupportedVersion { found } => {
                write!(f, "unsupported snapshot version {found}")
            }
            StoreError::Truncated { context, offset } => {
                write!(f, "truncated file: {context} at byte {offset}")
            }
            StoreError::CrcMismatch {
                section,
                stored,
                computed,
            } => write!(
                f,
                "checksum mismatch in {section} section: stored {stored:#010x}, computed {computed:#010x}"
            ),
            StoreError::Malformed { context, reason } => {
                write!(f, "malformed {context}: {reason}")
            }
            StoreError::MissingSection { section } => {
                write!(f, "snapshot has no {section} section")
            }
            StoreError::CorruptLabel { section, node } => {
                write!(f, "{section} label of node {node} does not decode")
            }
            StoreError::UnknownNode { node, nodes } => {
                write!(f, "node {node} is not labelled (snapshot holds {nodes} nodes)")
            }
            StoreError::LabelMismatch { u, v } => write!(
                f,
                "labels of {u} and {v} share no separator prefix (foreign snapshot?)"
            ),
            StoreError::ShardPoisoned { shard } => write!(
                f,
                "shard {shard} worker panicked mid-batch; its queries were dropped"
            ),
            StoreError::ReadOnlySnapshot => write!(
                f,
                "snapshot is memory-mapped (read-only); deltas need an owned snapshot"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_specific() {
        assert!(StoreError::BadMagic.to_string().contains("magic"));
        assert!(StoreError::UnsupportedVersion { found: 9 }
            .to_string()
            .contains('9'));
        assert!(StoreError::Truncated {
            context: "tree record",
            offset: 17
        }
        .to_string()
        .contains("byte 17"));
        let crc = StoreError::CrcMismatch {
            section: "max",
            stored: 1,
            computed: 2,
        };
        assert!(crc.to_string().contains("max"));
        assert!(StoreError::UnknownNode { node: 8, nodes: 4 }
            .to_string()
            .contains("8"));
        assert!(StoreError::LabelMismatch { u: 1, v: 2 }
            .to_string()
            .contains("prefix"));
        assert!(StoreError::ShardPoisoned { shard: 3 }
            .to_string()
            .contains("shard 3"));
        assert!(StoreError::ReadOnlySnapshot
            .to_string()
            .contains("read-only"));
        let io: StoreError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(std::error::Error::source(&io).is_some());
        assert!(std::error::Error::source(&StoreError::BadMagic).is_none());
    }
}
