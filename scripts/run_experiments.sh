#!/usr/bin/env bash
# Regenerates every experiment table (E1-E20) and the criterion benches.
# Usage: scripts/run_experiments.sh [output-dir]
set -euo pipefail
out="${1:-experiment-results}"
mkdir -p "$out"
# Gate on the CI checks first: fmt, clippy, tests (all offline).
"$(dirname "$0")/ci.sh"
exps=(exp_label_size exp_baseline_compare exp_gamma_small exp_pi_gamma_soundness
      exp_agreement exp_lower_bound exp_sensitivity exp_flow exp_distributed
      exp_ablation exp_extensions exp_net_faults exp_serve exp_marker_scaling
      exp_net_scaling exp_serve_net exp_compute exp_dynamic exp_label_hotpath
      exp_adversary)
for e in "${exps[@]}"; do
  echo "== $e =="
  cargo run --release -p mstv-bench --bin "$e" | tee "$out/$e.txt"
done
cargo bench --workspace 2>&1 | tee "$out/bench.txt"
echo "results in $out/"
