#!/usr/bin/env bash
# Offline CI gate: formatting, lints, and the full test suite.
# The workspace vendors its dependencies (vendor/), so everything runs
# with --offline and needs no network.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo test =="
# RUST_TEST_THREADS deliberately unpinned: the mstv-net runtime spawns
# one OS thread per node, and the suite must pass under whatever
# parallelism the host picks — serializing tests could mask races.
unset RUST_TEST_THREADS
cargo test -q --offline --workspace

echo "== mstv-net determinism smoke (16 seeds) =="
# A loom-style sweep: the lossy-convergence test asserts that whatever
# schedule the threads and the fault injector produce, the wire verdict
# equals the offline verifier's. Sixteen distinct seeds give sixteen
# different fault schedules; any nondeterministic verdict fails the run.
for seed in $(seq 0 15); do
    MSTV_NET_SEED="$seed" cargo test -q --offline -p mstv-net --test net_protocol \
        lossy_smoke_verdicts_are_schedule_independent >/dev/null \
        || { echo "ci: net smoke failed at seed $seed"; exit 1; }
done

echo "ci: all checks passed"
