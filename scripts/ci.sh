#!/usr/bin/env bash
# Offline CI gate: formatting, lints, and the full test suite.
# The workspace vendors its dependencies (vendor/), so everything runs
# with --offline and needs no network.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q --offline --workspace

echo "ci: all checks passed"
