#!/usr/bin/env bash
# Offline CI gate: formatting, lints, and the full test suite.
# The workspace vendors its dependencies (vendor/), so everything runs
# with --offline and needs no network.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo test =="
# RUST_TEST_THREADS deliberately unpinned: the mstv-net runtime spawns
# one OS thread per node, and the suite must pass under whatever
# parallelism the host picks — serializing tests could mask races.
unset RUST_TEST_THREADS
cargo test -q --offline --workspace

echo "== mstv-net engine equivalence =="
# The two execution engines (thread-per-node and event-driven pool)
# must be observably identical: same verdict, same MessageCost,
# byte-identical event logs, and replay accepts either engine's logs.
cargo test -q --offline -p mstv-net --test engine_equivalence

echo "== mstv-net determinism smoke (16 seeds, both engines) =="
# A loom-style sweep: the lossy-convergence tests assert that whatever
# schedule the workers and the fault injector produce, the wire verdict
# equals the offline verifier's. Sixteen distinct seeds give sixteen
# different fault schedules; any nondeterministic verdict fails the
# run. The lossy_smoke_ filter picks up both the thread-per-node and
# the events-engine variant of the test.
for seed in $(seq 0 15); do
    MSTV_NET_SEED="$seed" cargo test -q --offline -p mstv-net --test net_protocol \
        lossy_smoke >/dev/null \
        || { echo "ci: net smoke failed at seed $seed"; exit 1; }
done

echo "== parallel marker equivalence (pinned at 2 workers) =="
# The proptest sweep asserts centroid decompositions (and therefore the
# whole label pipeline hanging off them) are identical under explicit
# 1-, 2-, and 8-worker pools, so even a single-core CI box exercises
# the multi-worker scheduling paths. The marker-level tests repeat the
# check at the label/bit level for both π_mst and π_flow.
cargo test -q --offline -p mstv-trees --test separator_parallel_proptest
cargo test -q --offline -p mstv-core marker_parallel_is_byte_identical

echo "== label-store golden fixture (byte-for-byte) =="
# The committed fixture pins the snapshot container layout and the label
# encodings underneath it; any drift fails here rather than silently
# orphaning existing snapshot files.
cargo test -q --offline -p mstv-store --test golden

echo "== label-store serving smoke (fixed seed, verdicts only) =="
# Write a snapshot, fsck it, and serve a seeded query workload with
# every answer cross-checked against the in-memory oracle. Verdicts are
# asserted; timings are not (CI machines are noisy).
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cargo run -q --offline --bin mstv -- gen --nodes 200 --extra 400 --seed 7 > "$tmp/g.txt"
cargo run -q --offline --bin mstv -- snapshot write "$tmp/g.txt" "$tmp/g.snap" >/dev/null
cargo run -q --offline --bin mstv -- snapshot fsck "$tmp/g.snap" >/dev/null
cargo run -q --offline --bin mstv -- query "$tmp/g.snap" --bench --queries 5000 \
    --shards 4 --cache 256 --seed 7 --verify-against "$tmp/g.txt" \
    | grep -q "oracle: ok" || { echo "ci: serving smoke failed"; exit 1; }

echo "== networked serving smoke (loopback, vs in-process oracle) =="
# Start a real server on an ephemeral loopback port, push a mixed
# 1k-query batch through `mstv query --connect`, and require the wire
# answers to be byte-identical to the in-process engine's on the same
# snapshot. Then hot-swap to a second snapshot, re-compare against
# *its* local answers, and shut the server down cleanly.
cargo build -q --offline --bin mstv
mstv=target/debug/mstv
"$mstv" gen --nodes 300 --extra 600 --seed 9 > "$tmp/a.txt"
"$mstv" gen --nodes 300 --extra 600 --seed 10 > "$tmp/b.txt"
"$mstv" snapshot write "$tmp/a.txt" "$tmp/a.snap" >/dev/null
"$mstv" snapshot write "$tmp/b.txt" "$tmp/b.snap" >/dev/null
RANDOM=42
for i in $(seq 1 250); do
    u=$((RANDOM % 300)); v=$((RANDOM % 300)); w=$((RANDOM % 1000))
    printf 'max %s %s\nflow %s %s\ndist %s %s\nverify %s %s %s\n' \
        "$u" "$v" "$v" "$u" "$u" "$v" "$u" "$v" "$w"
done > "$tmp/q.txt"
"$mstv" serve --snapshot "$tmp/a.snap" --port 0 --workers 2 > "$tmp/serve.out" &
serve_pid=$!
for i in $(seq 1 100); do
    grep -q '^listening on ' "$tmp/serve.out" && break
    sleep 0.1
done
port="$(sed -n 's/^listening on 127\.0\.0\.1://p' "$tmp/serve.out")"
[ -n "$port" ] || { echo "ci: serve did not report a port"; exit 1; }
"$mstv" query --connect "127.0.0.1:$port" --batch "$tmp/q.txt" > "$tmp/net_a.txt"
"$mstv" query "$tmp/a.snap" --batch "$tmp/q.txt" | sed '$d' > "$tmp/local_a.txt"
diff "$tmp/net_a.txt" "$tmp/local_a.txt" \
    || { echo "ci: wire answers diverge from the in-process engine"; exit 1; }
"$mstv" query --connect "127.0.0.1:$port" --swap "$tmp/b.snap" \
    | grep -q 'swapped: epoch 2' || { echo "ci: hot swap failed"; exit 1; }
"$mstv" query --connect "127.0.0.1:$port" --batch "$tmp/q.txt" > "$tmp/net_b.txt"
"$mstv" query "$tmp/b.snap" --batch "$tmp/q.txt" | sed '$d' > "$tmp/local_b.txt"
diff "$tmp/net_b.txt" "$tmp/local_b.txt" \
    || { echo "ci: post-swap answers diverge from the new snapshot"; exit 1; }
"$mstv" query --connect "127.0.0.1:$port" --shutdown-server >/dev/null
wait "$serve_pid" || { echo "ci: server did not exit cleanly"; exit 1; }

echo "== distributed construction smoke (256 nodes, lossy, both engines) =="
# Build the MST and its labels on the network under a lossy link, on
# both engines, and diff everything against the centralized marker:
# the two engines must print identical verdict/cost/phase lines, the
# label sizes must match `mstv label` on the same graph, and the
# snapshot written from the construction log must be byte-identical to
# the snapshot of the locally computed MST. (The bit-exact per-node
# label diff runs in `cargo test -p mstv-net --test compute_protocol`.)
compute_flags=(--nodes 256 --extra 512 --seed 17 --drop 0.15 --dup 0.05 --delay 2)
"$mstv" net --compute "${compute_flags[@]}" --engine threads > "$tmp/compute_t.txt"
"$mstv" net --compute "${compute_flags[@]}" --engine events \
    --log "$tmp/compute.log" > "$tmp/compute_e.txt"
grep -q 'accepted by all 256 nodes' "$tmp/compute_t.txt" \
    || { echo "ci: construction run rejected"; exit 1; }
diff "$tmp/compute_t.txt" <(sed '$d' "$tmp/compute_e.txt") \
    || { echo "ci: construction engines diverge"; exit 1; }
"$mstv" gen --nodes 256 --extra 512 --seed 17 > "$tmp/c.txt"
central_bits="$("$mstv" label "$tmp/c.txt" | sed -n 's/.*max label: \([0-9]*\) bits.*/\1/p')"
grep -q "labels: max $central_bits bits" "$tmp/compute_e.txt" \
    || { echo "ci: constructed labels differ from the centralized marker's"; exit 1; }
"$mstv" net --replay "$tmp/compute.log" \
    | grep -q 'replay: matches the recorded run' \
    || { echo "ci: construction log does not replay"; exit 1; }
"$mstv" snapshot write --from-net "$tmp/compute.log" "$tmp/from_net.snap" >/dev/null
"$mstv" snapshot write "$tmp/c.txt" "$tmp/central.snap" >/dev/null
cmp "$tmp/from_net.snap" "$tmp/central.snap" \
    || { echo "ci: construction snapshot differs from the centralized one"; exit 1; }

echo "== delta-journal golden fixture (byte-for-byte) =="
# The committed journal fixture pins the MSTVJRNL container layout and
# the per-record delta framing; drift fails here rather than silently
# orphaning journals written by older builds.
cargo test -q --offline -p mstv-store --test journal_golden

echo "== dynamic mutation smoke (64-mutation stream, journal vs rebuild) =="
# Stream 64 seeded mutations through the incremental marker with every
# step asserted byte-identical to a from-scratch rebuild, fsck the
# resulting journal against its base, fold it back into a snapshot, and
# require the compacted bytes to equal `snapshot write` on the mutated
# graph — the centralized path and the incremental path must agree on
# every byte.
"$mstv" gen --nodes 256 --extra 300 --max-weight 500 --seed 21 > "$tmp/d.txt"
"$mstv" snapshot write "$tmp/d.txt" "$tmp/d.snap" >/dev/null
"$mstv" mutate "$tmp/d.txt" --gen 64 --seed 3 > "$tmp/muts.txt"
"$mstv" mutate "$tmp/d.txt" --stream "$tmp/muts.txt" --journal "$tmp/d.jrnl" \
    --emit-graph "$tmp/dm.txt" --verify-rebuild >/dev/null
"$mstv" snapshot fsck "$tmp/d.jrnl" --base "$tmp/d.snap" >/dev/null
"$mstv" mutate --compact "$tmp/d.snap" "$tmp/d.jrnl" "$tmp/compacted.snap" >/dev/null
"$mstv" snapshot write "$tmp/dm.txt" "$tmp/rebuilt.snap" >/dev/null
cmp "$tmp/compacted.snap" "$tmp/rebuilt.snap" \
    || { echo "ci: compacted journal differs from the rebuilt snapshot"; exit 1; }

echo "== columnar (v2) snapshot smoke (cross-read + zero-copy serving) =="
# The golden stage above already byte-pins both container versions and
# their cross-read; here the CLI path: write the same graph in both
# formats, require the v2 file to fsck, and serve a seeded workload
# straight from the mmap'd columnar sections with the label cache off —
# the cold-cache fused-decode path — with every answer oracle-checked.
"$mstv" snapshot write --format v2 "$tmp/g.txt" "$tmp/g2.snap" >/dev/null
"$mstv" snapshot fsck "$tmp/g2.snap" >/dev/null
"$mstv" query "$tmp/g2.snap" --bench --queries 5000 --shards 4 --cache 0 \
    --mmap --seed 7 --verify-against "$tmp/g.txt" \
    | grep -q "oracle: ok" || { echo "ci: v2 cold-cache smoke failed"; exit 1; }

echo "== adversary smoke (256 nodes, one run per fault class, replayed) =="
# One live run per adversary class on the events engine, each forged
# labeling required to be rejected, each log required to replay -- the
# forge schedule rides the log's `adversary` header, so the replay
# reconstructs the forged labeling from the spec alone. The honest
# partition/reorder/churn schedule must still converge to accept, and
# the threads engine must print the same verdict/cost lines as the
# events engine under it.
adv_flags=(--nodes 256 --extra 512 --seed 17 --drop 0.1 --dup 0.02 --delay 1)
for spec in "forge:class=root,k=2;seed=7" \
            "forge:class=omega,k=2;seed=7" \
            "forge:class=bits,k=2;seed=7"; do
    "$mstv" net "${adv_flags[@]}" --engine events --adversary "$spec" \
        --log "$tmp/adv.log" > "$tmp/adv.txt"
    grep -q 'verdict: rejected at' "$tmp/adv.txt" \
        || { echo "ci: forged labeling accepted ($spec)"; exit 1; }
    "$mstv" net --replay "$tmp/adv.log" \
        | grep -q 'replay: matches the recorded run' \
        || { echo "ci: adversary log does not replay ($spec)"; exit 1; }
done
honest="partition:start=2,heal=5;reorder:window=8;churn:rate=0.02,away=2,cap=8;seed=7"
"$mstv" net "${adv_flags[@]}" --engine events --adversary "$honest" \
    --log "$tmp/adv_h.log" > "$tmp/adv_e.txt"
grep -q 'accepted by all 256 nodes' "$tmp/adv_e.txt" \
    || { echo "ci: honest labels rejected under schedule adversary"; exit 1; }
"$mstv" net --replay "$tmp/adv_h.log" \
    | grep -q 'replay: matches the recorded run' \
    || { echo "ci: schedule-adversary log does not replay"; exit 1; }
"$mstv" net "${adv_flags[@]}" --engine threads --adversary "$honest" > "$tmp/adv_t.txt"
diff "$tmp/adv_t.txt" <(sed '$d' "$tmp/adv_e.txt") \
    || { echo "ci: adversary engines diverge"; exit 1; }

echo "ci: all checks passed"
